//! The verification engine: capture, generalize, discharge.
//!
//! [`verify_launch`] is the single entry point; [`verify_solver`],
//! [`verify_block_cr`] and [`verify_fixture`] wrap it with the repo's
//! instantiation glue ([`gpu_solvers::verify`]). The proof obligations and
//! the generalization argument are documented at the crate root and in
//! DESIGN.md §11; this module is their executable form.

use crate::affine::fit_site;
use crate::verdict::{ProofStatus, SizeVerdict, StaticFinding, StepSummary};
use gpu_sim::{BlockCtx, DeviceConfig, DiagnosticKind, ShadowLog, ShadowOp, ShadowSpace};
use gpu_solvers::{GpuAlgorithm, VerifyInstance};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;
use tridiag_core::Real;

/// Tuning knobs of one verification run.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Device the family is admitted on (block/shared limits, banking).
    pub device: DeviceConfig,
    /// Shadow event budget per captured block; exhaustion degrades the
    /// verdict to `Unproven`, never a partial proof.
    pub budget_events: usize,
    /// Base batch count for captures (a second capture runs at `count+2`
    /// to detect count-dependent skeletons). Clamped to at least 4 so the
    /// sampled blocks {first, second, last} are distinct.
    pub count: usize,
    /// The two data seeds; skeleton disagreement between them marks the
    /// kernel data-dependent.
    pub seeds: [u64; 2],
    /// Boundary-clamp outliers tolerated by the flat affine fit.
    pub max_exceptions: usize,
    /// Contiguous pieces tolerated by the piecewise fallback.
    pub max_pieces: usize,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            device: DeviceConfig::gtx280(),
            budget_events: 8_000_000,
            count: 5,
            seeds: [0x00C0_FFEE, 0x5EED],
            max_exceptions: 8,
            max_pieces: 6,
        }
    }
}

/// Runs the kernel of `inst` shadow-captured on each of `blocks`.
fn capture_blocks<T: Real>(
    opts: &VerifyOptions,
    inst: VerifyInstance<T>,
    blocks: &[usize],
) -> Result<Vec<ShadowLog>, String> {
    let VerifyInstance { mut gmem, kernel, grid_dim: _ } = inst;
    let dim = kernel.block_dim();
    if dim == 0 || dim > opts.device.max_threads_per_block {
        return Err(format!(
            "block dimension {dim} outside device limits (1..={})",
            opts.device.max_threads_per_block
        ));
    }
    catch_unwind(AssertUnwindSafe(|| {
        let mut logs = Vec::with_capacity(blocks.len());
        for &b in blocks {
            let mut ctx = BlockCtx::shadowed(&opts.device, &mut gmem, dim, b, opts.budget_events);
            kernel.run_block(b, &mut ctx);
            logs.push(ctx.finish_shadow());
        }
        logs
    }))
    .map_err(|_| "capture panicked inside the kernel".to_string())
}

/// `Some(reason)` when two captures differ in any skeleton dimension —
/// steps, phases, active ranges, access order, sites, or indices.
fn skeleton_mismatch(a: &ShadowLog, b: &ShadowLog, what: &str) -> Option<String> {
    if a.steps.len() != b.steps.len() {
        return Some(format!(
            "{what}: step count differs ({} vs {})",
            a.steps.len(),
            b.steps.len()
        ));
    }
    for (s, (sa, sb)) in a.steps.iter().zip(&b.steps).enumerate() {
        if sa.phase != sb.phase || sa.active != sb.active {
            return Some(format!("{what}: step {s} skeleton differs"));
        }
        if sa.accesses.len() != sb.accesses.len() {
            return Some(format!(
                "{what}: step {s} ({}) access count differs ({} vs {})",
                sa.phase.label(),
                sa.accesses.len(),
                sb.accesses.len()
            ));
        }
        for (aa, ab) in sa.accesses.iter().zip(&sb.accesses) {
            let site_a = a.site(aa.site);
            let site_b = b.site(ab.site);
            if aa.tid != ab.tid
                || aa.space != ab.space
                || aa.op != ab.op
                || aa.array != ab.array
                || aa.in_bounds != ab.in_bounds
                || aa.index != ab.index
                || site_a.file() != site_b.file()
                || site_a.line() != site_b.line()
            {
                return Some(format!(
                    "{what}: step {s} ({}) diverges at {}:{} (tid {}, index {} vs {})",
                    sa.phase.label(),
                    site_a.file(),
                    site_a.line(),
                    aa.tid,
                    aa.index,
                    ab.index
                ));
            }
        }
    }
    None
}

/// Compares a non-base block against block 0: identical skeleton, identical
/// shared indices (barrier/block consistency), and a single constant global
/// index delta per array. Returns the per-array total deltas.
fn block_deltas(base: &ShadowLog, other: &ShadowLog) -> Result<HashMap<u32, i64>, String> {
    if base.steps.len() != other.steps.len() {
        return Err(format!(
            "block {} executes {} steps where block {} executes {}",
            other.block_id,
            other.steps.len(),
            base.block_id,
            base.steps.len()
        ));
    }
    let mut deltas: HashMap<u32, i64> = HashMap::new();
    for (s, (sa, sb)) in base.steps.iter().zip(&other.steps).enumerate() {
        if sa.phase != sb.phase || sa.active != sb.active || sa.accesses.len() != sb.accesses.len()
        {
            return Err(format!(
                "block {} diverges from block {} at step {s} ({})",
                other.block_id,
                base.block_id,
                sa.phase.label()
            ));
        }
        for (aa, ab) in sa.accesses.iter().zip(&sb.accesses) {
            let site = base.site(aa.site);
            let same_site = {
                let sb_ = other.site(ab.site);
                site.file() == sb_.file() && site.line() == sb_.line()
            };
            if aa.tid != ab.tid
                || aa.space != ab.space
                || aa.op != ab.op
                || aa.array != ab.array
                || aa.in_bounds != ab.in_bounds
                || !same_site
            {
                return Err(format!(
                    "block {} diverges from block {} at step {s}, {}:{}",
                    other.block_id,
                    base.block_id,
                    site.file(),
                    site.line()
                ));
            }
            match aa.space {
                ShadowSpace::Shared => {
                    if aa.index != ab.index {
                        return Err(format!(
                            "block-divergent shared access at {}:{} (step {s}: index {} in \
                             block {}, {} in block {})",
                            site.file(),
                            site.line(),
                            aa.index,
                            base.block_id,
                            ab.index,
                            other.block_id
                        ));
                    }
                }
                ShadowSpace::Global => {
                    let d = ab.index as i64 - aa.index as i64;
                    match deltas.entry(aa.array) {
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(d);
                        }
                        std::collections::hash_map::Entry::Occupied(e) => {
                            if *e.get() != d {
                                return Err(format!(
                                    "global array {} has a non-uniform block offset at {}:{} \
                                     (step {s}: {} vs {})",
                                    aa.array,
                                    site.file(),
                                    site.line(),
                                    e.get(),
                                    d
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(deltas)
}

/// One step's access-site group: everything the affine fitter models
/// together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct GroupKey {
    step: usize,
    site: u32,
    space: ShadowSpace,
    op: ShadowOp,
    array: u32,
}

/// Deduplicating finding collector (one finding per kind+site+array, with
/// an occurrence count — mirroring the dynamic sanitizer's `SiteKey`).
struct Findings {
    list: Vec<StaticFinding>,
    index: HashMap<(&'static str, String, u32, Option<u32>), usize>,
}

impl Findings {
    fn new() -> Self {
        Findings { list: Vec::new(), index: HashMap::new() }
    }

    #[allow(clippy::too_many_arguments)]
    fn add(
        &mut self,
        log: &ShadowLog,
        kind: DiagnosticKind,
        site: u32,
        related: Option<u32>,
        step: usize,
        array: Option<u32>,
        elem: Option<usize>,
        message: String,
    ) {
        let loc = log.site(site);
        let key = (kind.name(), loc.file().to_string(), loc.line(), array);
        if let Some(&i) = self.index.get(&key) {
            self.list[i].occurrences += 1;
            return;
        }
        self.index.insert(key, self.list.len());
        self.list.push(StaticFinding {
            kind,
            file: loc.file().to_string(),
            line: loc.line(),
            related: related.map(|r| {
                let rl = log.site(r);
                (rl.file().to_string(), rl.line())
            }),
            step,
            phase: log.steps[step].phase.label(),
            array,
            index: elem,
            occurrences: 1,
            message,
        });
    }

    /// Merges another collector (findings from a second captured block),
    /// deduplicating on the same key.
    fn merge(&mut self, other: Findings) {
        for f in other.list {
            let key = (f.kind.name(), f.file.clone(), f.line, f.array);
            if let Some(&i) = self.index.get(&key) {
                self.list[i].occurrences += f.occurrences;
            } else {
                self.index.insert(key, self.list.len());
                self.list.push(f);
            }
        }
    }
}

/// Everything extracted from one captured block.
struct BlockAnalysis {
    findings: Findings,
    steps: Vec<StepSummary>,
    sites: usize,
    affine_sites: usize,
    nonaffine: Vec<String>,
    /// Per global array: (min, max) in-bounds element index touched.
    global_extents: HashMap<u32, (usize, usize)>,
    /// Per global array: the in-bounds store index set.
    global_stores: HashMap<u32, HashSet<usize>>,
    /// Per global array: a representative access (site id, step) for
    /// attributing family-level findings.
    global_site: HashMap<u32, (u32, usize)>,
}

/// Replays one captured block with the dynamic sanitizer's exact
/// semantics — buffered shared stores committing at the closing barrier,
/// pre-step loads, same-thread hazard scan — and fits every site group.
fn analyze_log(log: &ShadowLog, opts: &VerifyOptions, fit_models: bool) -> BlockAnalysis {
    let hw = opts.device.half_warp;
    let banks = opts.device.banks;
    let words_per_elem = log.words_per_elem.max(1);

    let mut valid: Vec<Vec<bool>> = log.shared_lens.iter().map(|&l| vec![false; l]).collect();
    let mut findings = Findings::new();
    let mut samples: BTreeMap<GroupKey, Vec<(u32, u32, i64)>> = BTreeMap::new();
    let mut ordinals: HashMap<(GroupKey, u32), u32> = HashMap::new();
    let mut steps = Vec::with_capacity(log.steps.len());
    let mut global_extents: HashMap<u32, (usize, usize)> = HashMap::new();
    let mut global_stores: HashMap<u32, HashSet<usize>> = HashMap::new();
    let mut global_site: HashMap<u32, (u32, usize)> = HashMap::new();

    for (s, step) in log.steps.iter().enumerate() {
        let mut cur_tid = u32::MAX;
        // (array, index) -> site of this thread's buffered store this step.
        let mut thread_stores: HashMap<(u32, usize), u32> = HashMap::new();
        // Per-thread shared-word slot counter (the simulator's instruction
        // slot: one per 32-bit word accessed, in program order).
        let mut slot: u32 = 0;
        // (slot, half-warp) -> distinct word addresses.
        let mut bank_groups: HashMap<(u32, u32), HashSet<u64>> = HashMap::new();
        let mut shared_stores: Vec<(u32, usize, u32, u32)> = Vec::new();
        let mut gstores: Vec<(u32, usize, u32, u32)> = Vec::new();

        for a in &step.accesses {
            if a.tid != cur_tid {
                cur_tid = a.tid;
                thread_stores.clear();
                slot = 0;
            }
            let key = GroupKey { step: s, site: a.site, space: a.space, op: a.op, array: a.array };
            let j = {
                let c = ordinals.entry((key, a.tid)).or_insert(0);
                let j = *c;
                *c += 1;
                j
            };
            if fit_models {
                samples.entry(key).or_default().push((a.tid, j, a.index as i64));
            }
            if !a.in_bounds {
                let (kind, what) = match a.space {
                    ShadowSpace::Shared if (a.array as usize) >= log.shared_lens.len() => {
                        (DiagnosticKind::InvalidHandle, "shared handle")
                    }
                    ShadowSpace::Shared => (DiagnosticKind::SharedOutOfBounds, "shared index"),
                    ShadowSpace::Global if (a.array as usize) >= log.global_lens.len() => {
                        (DiagnosticKind::InvalidHandle, "global handle")
                    }
                    ShadowSpace::Global => (DiagnosticKind::GlobalOutOfBounds, "global index"),
                };
                let len = match a.space {
                    ShadowSpace::Shared => log.shared_lens.get(a.array as usize).copied(),
                    ShadowSpace::Global => log.global_lens.get(a.array as usize).copied(),
                };
                findings.add(
                    log,
                    kind,
                    a.site,
                    None,
                    s,
                    Some(a.array),
                    Some(a.index),
                    match len {
                        Some(l) => {
                            format!("{what} {} outside array {} (len {l})", a.index, a.array)
                        }
                        None => format!("{what}: array {} was never allocated", a.array),
                    },
                );
                continue; // suppressed: the access never reaches memory
            }
            match (a.space, a.op) {
                (ShadowSpace::Shared, ShadowOp::Load) => {
                    if let Some(&store_site) = thread_stores.get(&(a.array, a.index)) {
                        findings.add(
                            log,
                            DiagnosticKind::ReadWriteHazard,
                            a.site,
                            Some(store_site),
                            s,
                            Some(a.array),
                            Some(a.index),
                            format!(
                                "load of shared[{}][{}] after the same thread buffered a store \
                                 to it this step (the store commits only at the barrier)",
                                a.array, a.index
                            ),
                        );
                    }
                    if !valid[a.array as usize][a.index] {
                        findings.add(
                            log,
                            DiagnosticKind::UninitializedRead,
                            a.site,
                            None,
                            s,
                            Some(a.array),
                            Some(a.index),
                            format!(
                                "load of shared[{}][{}] before any barrier-committed store",
                                a.array, a.index
                            ),
                        );
                    }
                }
                (ShadowSpace::Shared, ShadowOp::Store) => {
                    thread_stores.insert((a.array, a.index), a.site);
                    shared_stores.push((a.array, a.index, a.tid, a.site));
                }
                (ShadowSpace::Global, ShadowOp::Load) => {
                    global_site.entry(a.array).or_insert((a.site, s));
                    let e = global_extents.entry(a.array).or_insert((a.index, a.index));
                    e.0 = e.0.min(a.index);
                    e.1 = e.1.max(a.index);
                }
                (ShadowSpace::Global, ShadowOp::Store) => {
                    global_site.entry(a.array).or_insert((a.site, s));
                    let e = global_extents.entry(a.array).or_insert((a.index, a.index));
                    e.0 = e.0.min(a.index);
                    e.1 = e.1.max(a.index);
                    global_stores.entry(a.array).or_default().insert(a.index);
                    gstores.push((a.array, a.index, a.tid, a.site));
                }
            }
            if a.space == ShadowSpace::Shared {
                let base = log.shared_base_words.get(a.array as usize).copied().unwrap_or(0) as u64;
                for w in 0..words_per_elem {
                    let word = base + (a.index * words_per_elem + w) as u64;
                    bank_groups.entry((slot, a.tid / hw as u32)).or_default().insert(word);
                    slot += 1;
                }
            }
        }

        // Intra-step write-write races: distinct threads storing the same
        // cell in one barrier interval (same-thread double stores are a
        // last-writer-wins overwrite, which the dynamic model also allows).
        for (space_label, stores) in [("shared", &shared_stores), ("global", &gstores)] {
            let mut sorted = (*stores).clone();
            sorted.sort_unstable();
            let mut i = 0;
            while i < sorted.len() {
                let (arr, idx, tid0, site0) = sorted[i];
                let mut j = i + 1;
                while j < sorted.len() && sorted[j].0 == arr && sorted[j].1 == idx {
                    j += 1;
                }
                if let Some(&(_, _, _, site1)) =
                    sorted[i..j].iter().find(|&&(_, _, t, _)| t != tid0)
                {
                    findings.add(
                        log,
                        DiagnosticKind::WriteWriteRace,
                        site1,
                        Some(site0),
                        s,
                        Some(arr),
                        Some(idx),
                        format!(
                            "distinct threads store {space_label}[{arr}][{idx}] in the same \
                             barrier interval"
                        ),
                    );
                }
                i = j;
            }
        }

        // Barrier commit: buffered stores become visible (and initialized).
        for &(arr, idx, _, _) in &shared_stores {
            valid[arr as usize][idx] = true;
        }

        let max_bank_degree = bank_groups
            .values()
            .map(|words| {
                let mut per_bank: HashMap<u64, u32> = HashMap::new();
                for &w in words {
                    *per_bank.entry(w % banks as u64).or_insert(0) += 1;
                }
                per_bank.values().copied().max().unwrap_or(1)
            })
            .max()
            .unwrap_or(1);
        steps.push(StepSummary {
            phase: step.phase.label(),
            active: step.active.len(),
            max_bank_degree,
        });
    }

    // Affine classification of every site group.
    let mut affine_sites = 0usize;
    let mut nonaffine: Vec<String> = Vec::new();
    let sites = samples.len();
    for (key, mut group) in samples {
        group.sort_unstable_by_key(|&(t, j, _)| (t, j));
        if fits_affine(&group, opts) {
            affine_sites += 1;
        } else {
            let loc = log.site(key.site);
            let msg = format!(
                "non-affine index at {}:{} (step {}, {})",
                loc.file(),
                loc.line(),
                key.step,
                log.steps[key.step].phase.label()
            );
            if !nonaffine.contains(&msg) {
                nonaffine.push(msg);
            }
        }
    }

    BlockAnalysis {
        findings,
        steps,
        sites,
        affine_sites,
        nonaffine,
        global_extents,
        global_stores,
        global_site,
    }
}

/// `true` when a site group is (piecewise-)affine — directly, or split by
/// loop ordinal. The split covers shared helper functions (`load_blk` in
/// the block-CR kernel) whose one source line is reached with several
/// distinct index expressions per thread (`i`, `i-half`, `i+half`): the
/// combined sequence is not affine in the ordinal, but each fixed-ordinal
/// slice is affine in the thread rank.
fn fits_affine(group: &[(u32, u32, i64)], opts: &VerifyOptions) -> bool {
    if fit_site(group, opts.max_exceptions, opts.max_pieces).is_some() {
        return true;
    }
    const MAX_ORDINAL_SLICES: usize = 128;
    let mut by_j: BTreeMap<u32, Vec<(u32, u32, i64)>> = BTreeMap::new();
    for &(t, j, idx) in group {
        by_j.entry(j).or_default().push((t, 0, idx));
    }
    by_j.len() <= MAX_ORDINAL_SLICES
        && by_j
            .values()
            .all(|slice| fit_site(slice, opts.max_exceptions, opts.max_pieces).is_some())
}

/// Verifies one launch family member. `make(count, seed)` builds a concrete
/// instance; the engine captures it at two seeds, two counts and three
/// sampled blocks, generalizes, and discharges every obligation (crate
/// docs). Any failed generalization yields `Unproven` with the reason;
/// only concrete violations yield `Violated`.
pub fn verify_launch<T: Real>(
    name: &str,
    n: usize,
    make: &dyn Fn(usize, u64) -> Result<VerifyInstance<T>, String>,
    opts: &VerifyOptions,
) -> SizeVerdict {
    let start = Instant::now();
    let width = T::BYTES;
    let c1 = opts.count.max(4);
    let c2 = c1 + 2;
    let mut unproven: Vec<String> = Vec::new();

    // --- Capture ---------------------------------------------------------
    let inst = match make(c1, opts.seeds[0]) {
        Ok(i) => i,
        Err(e) => {
            return finish(
                SizeVerdict::unproven(name, n, width, format!("instantiation failed: {e}")),
                start,
            )
        }
    };
    let grid1 = inst.grid_dim;
    if grid1 == 0 {
        return finish(SizeVerdict::unproven(name, n, width, "empty grid".to_string()), start);
    }
    let mut blocks = vec![0usize];
    if grid1 > 1 {
        blocks.push(1);
    }
    if grid1 > 2 {
        blocks.push(grid1 - 1);
    }
    let logs_a = match capture_blocks(opts, inst, &blocks) {
        Ok(l) => l,
        Err(e) => {
            return finish(
                SizeVerdict::unproven(name, n, width, format!("capture failed: {e}")),
                start,
            )
        }
    };
    let logs_b = match make(c1, opts.seeds[1])
        .map_err(|e| format!("instantiation failed: {e}"))
        .and_then(|i| capture_blocks(opts, i, &blocks))
    {
        Ok(l) => l,
        Err(e) => {
            return finish(SizeVerdict::unproven(name, n, width, format!("second-seed {e}")), start)
        }
    };
    let (grid2, logs_c) = match make(c2, opts.seeds[0])
        .map_err(|e| format!("instantiation failed: {e}"))
        .and_then(|i| {
            let g = i.grid_dim;
            capture_blocks(opts, i, &[0]).map(|l| (g, l))
        }) {
        Ok(x) => x,
        Err(e) => {
            return finish(
                SizeVerdict::unproven(name, n, width, format!("second-count {e}")),
                start,
            )
        }
    };

    let events: usize = logs_a.iter().chain(&logs_b).chain(&logs_c).map(|l| l.events).sum();
    if logs_a.iter().chain(&logs_b).chain(&logs_c).any(|l| l.truncated) {
        unproven.push(format!(
            "capture budget exhausted ({} events); the log is incomplete",
            opts.budget_events
        ));
    }

    // --- Generalization --------------------------------------------------
    // Seed independence: identical skeletons (incl. indices) across data.
    for (la, lb) in logs_a.iter().zip(&logs_b) {
        if let Some(reason) = skeleton_mismatch(la, lb, "data-dependent skeleton") {
            unproven.push(reason);
            break;
        }
    }
    // Count independence of block 0.
    if let Some(reason) = skeleton_mismatch(&logs_a[0], &logs_c[0], "count-dependent skeleton") {
        unproven.push(reason);
    }

    let touches_global = logs_a
        .iter()
        .any(|l| l.steps.iter().any(|s| s.accesses.iter().any(|a| a.space == ShadowSpace::Global)));
    let grid_linear = grid1 == c1 && grid2 == c2;
    if touches_global && !grid_linear {
        unproven.push(format!(
            "grid dimension ({grid1} at count {c1}, {grid2} at count {c2}) is not the system \
             count; global extents cannot be generalized over the family"
        ));
    }

    // Global allocation model: len(count) = slope*count + offset per array.
    let lens1 = &logs_a[0].global_lens;
    let lens2 = &logs_c[0].global_lens;
    let mut alloc_model: Vec<(i64, i64)> = Vec::new();
    if lens1.len() != lens2.len() {
        if touches_global {
            unproven.push("global array set depends on the count".to_string());
        }
    } else {
        let dc = (c2 - c1) as i64;
        for (arr, (&l1, &l2)) in lens1.iter().zip(lens2).enumerate() {
            let d = l2 as i64 - l1 as i64;
            if d % dc != 0 || d < 0 {
                unproven.push(format!("global array {arr} allocation is not affine in the count"));
                alloc_model.push((0, l1 as i64));
                continue;
            }
            let slope = d / dc;
            let offset = l1 as i64 - slope * c1 as i64;
            if offset < 0 {
                unproven.push(format!(
                    "global array {arr} allocation has a negative count-1 extrapolation"
                ));
            }
            alloc_model.push((slope, offset));
        }
    }

    // Block model: constant per-array deltas, linear in the block id.
    let mut deltas: HashMap<u32, i64> = HashMap::new();
    let mut block_model_ok = true;
    for (bi, log) in logs_a.iter().enumerate().skip(1) {
        match block_deltas(&logs_a[0], log) {
            Ok(d) => {
                let bid = blocks[bi] as i64;
                for (arr, total) in d {
                    if total % bid != 0 {
                        unproven.push(format!(
                            "global array {arr} offset is not linear in the block id"
                        ));
                        block_model_ok = false;
                        continue;
                    }
                    let per = total / bid;
                    match deltas.entry(arr) {
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(per);
                        }
                        std::collections::hash_map::Entry::Occupied(e) => {
                            if *e.get() != per {
                                unproven.push(format!(
                                    "global array {arr} per-block offset differs between \
                                     sampled blocks ({} vs {per})",
                                    e.get()
                                ));
                                block_model_ok = false;
                            }
                        }
                    }
                }
            }
            Err(reason) => {
                unproven.push(reason);
                block_model_ok = false;
            }
        }
    }

    // --- Exhaustive discharge on every captured block ---------------------
    let mut analyses: Vec<BlockAnalysis> =
        logs_a.iter().enumerate().map(|(i, l)| analyze_log(l, opts, i == 0)).collect();
    let mut merged = Findings::new();
    for a in &mut analyses {
        merged.merge(std::mem::replace(&mut a.findings, Findings::new()));
    }
    let base = &analyses[0];
    unproven.extend(base.nonaffine.iter().cloned());

    // --- Family-level global obligations ---------------------------------
    if touches_global && grid_linear && block_model_ok && alloc_model.len() == lens1.len() {
        for arr in 0..lens1.len() as u32 {
            let delta = deltas.get(&arr).copied().unwrap_or(0);
            let (slope, _offset) = alloc_model[arr as usize];
            let (site, step) = match base.global_site.get(&arr) {
                Some(&x) => x,
                None => continue, // array never touched by the sampled blocks
            };
            if let Some(stores) = base.global_stores.get(&arr) {
                if !stores.is_empty() {
                    if delta == 0 && grid1 > 1 {
                        merged.add(
                            &logs_a[0],
                            DiagnosticKind::WriteWriteRace,
                            site,
                            None,
                            step,
                            Some(arr),
                            stores.iter().min().copied(),
                            format!(
                                "every block stores the same elements of global array {arr} \
                                 (per-block offset 0)"
                            ),
                        );
                    } else if delta < 0 {
                        unproven.push(format!(
                            "global array {arr} has a negative per-block offset ({delta})"
                        ));
                    } else if delta > 0 {
                        let (min0, max0) = base.global_extents[&arr];
                        let span = (max0 - min0) as i64;
                        for k in 1..=(span / delta).max(0) {
                            if stores.iter().any(|&i| stores.contains(&(i + (delta * k) as usize)))
                            {
                                merged.add(
                                    &logs_a[0],
                                    DiagnosticKind::WriteWriteRace,
                                    site,
                                    None,
                                    step,
                                    Some(arr),
                                    None,
                                    format!(
                                        "blocks {k} apart store overlapping elements of \
                                         global array {arr}"
                                    ),
                                );
                                break;
                            }
                        }
                    }
                }
            }
            // Out-of-bounds for all (count, block): the per-block advance
            // must not outrun the per-system allocation growth, and the
            // block-0 extent must fit the count-1 allocation (the corner:
            // slack (slope-delta)*count + offset - 1 + delta - max0 is
            // non-decreasing in count once delta <= slope).
            let (_min0, max0) = base.global_extents[&arr];
            if delta > slope {
                merged.add(
                    &logs_a[0],
                    DiagnosticKind::GlobalOutOfBounds,
                    site,
                    None,
                    step,
                    Some(arr),
                    Some(max0),
                    format!(
                        "per-block offset {delta} of global array {arr} outruns its \
                         allocation growth ({slope} per system): the last block goes \
                         out of bounds for large counts"
                    ),
                );
            } else if (max0 as i64) + delta * (grid1 as i64 - 1)
                >= slope * c1 as i64 + alloc_model[arr as usize].1
            {
                // Captured launch itself is out of bounds yet flagged
                // in-bounds? Defensive: cannot happen (in_bounds covers it).
                unproven.push(format!("global array {arr} extent bound could not be established"));
            } else if (max0 as i64) > slope + alloc_model[arr as usize].1 - 1 {
                unproven.push(format!(
                    "global array {arr}: block-0 extent {max0} exceeds the count-1 \
                     allocation; small-count launches cannot be covered"
                ));
            }
        }
    }

    // --- Verdict ----------------------------------------------------------
    let mut dedup = Vec::new();
    for r in unproven {
        if !dedup.contains(&r) {
            dedup.push(r);
        }
    }
    const MAX_REASONS: usize = 16;
    if dedup.len() > MAX_REASONS {
        let extra = dedup.len() - MAX_REASONS;
        dedup.truncate(MAX_REASONS);
        dedup.push(format!("... and {extra} more reasons"));
    }
    let status = if !merged.list.is_empty() {
        ProofStatus::Violated
    } else if !dedup.is_empty() {
        ProofStatus::Unproven
    } else {
        ProofStatus::Proven
    };
    let steps = analyses[0].steps.clone();
    let max_bank_degree = steps.iter().map(|s| s.max_bank_degree).max().unwrap_or(1);
    finish(
        SizeVerdict {
            name: name.to_string(),
            n,
            width,
            status,
            findings: merged.list,
            unproven: dedup,
            sites: base.sites,
            affine_sites: base.affine_sites,
            steps,
            max_bank_degree,
            events,
            wall_ms: 0.0,
        },
        start,
    )
}

/// Stamps the wall-clock on a finished verdict.
fn finish(mut v: SizeVerdict, start: Instant) -> SizeVerdict {
    v.wall_ms = start.elapsed().as_secs_f64() * 1e3;
    v
}

/// Verifies a production solver at size `n` (catalog spelling as the
/// verdict name), instantiated exactly as [`gpu_solvers::solve_batch`]
/// dispatches it.
pub fn verify_solver<T: Real>(alg: GpuAlgorithm, n: usize, opts: &VerifyOptions) -> SizeVerdict {
    let name = alg.to_string();
    verify_launch::<T>(
        &name,
        n,
        &|count, seed| {
            gpu_solvers::solver_instance(alg, n, count, seed).map_err(|e| format!("{e:?}"))
        },
        opts,
    )
}

/// Verifies the block-tridiagonal CR kernel at block-row count `n`.
pub fn verify_block_cr<T: Real>(n: usize, opts: &VerifyOptions) -> SizeVerdict {
    verify_launch::<T>(
        "block-cr",
        n,
        &|count, seed| gpu_solvers::block_instance(n, count, seed).map_err(|e| format!("{e:?}")),
        opts,
    )
}

/// Verifies one deliberately-buggy fixture kernel
/// ([`gpu_solvers::FIXTURE_NAMES`]) at size `n`.
pub fn verify_fixture<T: Real>(name: &str, n: usize, opts: &VerifyOptions) -> SizeVerdict {
    verify_launch::<T>(
        name,
        n,
        &|count, _seed| {
            gpu_solvers::fixture_instance(name, n, count)
                .ok_or_else(|| format!("unknown fixture '{name}'"))
        },
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Severity;

    #[test]
    fn cr_is_proven_at_64() {
        let v = verify_solver::<f32>(GpuAlgorithm::Cr, 64, &VerifyOptions::default());
        assert_eq!(v.status, ProofStatus::Proven, "unproven: {:?}", v.unproven);
        assert_eq!(v.sites, v.affine_sites);
        assert!(v.findings.is_empty());
    }

    #[test]
    fn pcr_window_clamps_prove_via_piecewise_fit() {
        let v = verify_solver::<f32>(GpuAlgorithm::Pcr, 128, &VerifyOptions::default());
        assert_eq!(v.status, ProofStatus::Proven, "unproven: {:?}", v.unproven);
    }

    #[test]
    fn thomas_per_thread_is_unproven_count_dependent() {
        let v = verify_solver::<f32>(GpuAlgorithm::ThomasPerThread, 64, &VerifyOptions::default());
        assert_eq!(v.status, ProofStatus::Unproven);
        assert!(
            v.unproven.iter().any(|r| r.contains("count-dependent")),
            "expected a count-dependent reason: {:?}",
            v.unproven
        );
    }

    #[test]
    fn racy_fixture_is_violated_with_a_race() {
        let v = verify_fixture::<f32>("racy-cr-step", 32, &VerifyOptions::default());
        assert_eq!(v.status, ProofStatus::Violated);
        assert!(v
            .findings
            .iter()
            .any(|f| f.kind == DiagnosticKind::WriteWriteRace && f.file.ends_with("fixtures.rs")));
        // All static finding kinds are error-severity in the dynamic
        // sanitizer's vocabulary.
        assert!(v.findings.iter().all(|f| f.kind.severity() == Severity::Error));
    }

    #[test]
    fn figure9_degrees_fall_out_of_the_capture() {
        let v = verify_solver::<f32>(GpuAlgorithm::Cr, 512, &VerifyOptions::default());
        assert_eq!(v.status, ProofStatus::Proven, "unproven: {:?}", v.unproven);
        assert_eq!(v.degrees_in_phase("CR: forward reduction"), vec![2, 4, 8, 16, 16, 8, 4, 2]);
    }
}
