//! # kernel-verify
//!
//! Static verification of the GPU solver kernels, replacing per-launch
//! dynamic sanitizing with per-*family* proofs (DESIGN.md §11).
//!
//! The paper's kernels (CR, PCR, RD, the hybrids) have purely *affine*
//! access patterns: every shared/global index is `α·tid + β·ordinal + γ`
//! (plus a per-block offset for global arrays), with a handful of clamped
//! boundary lanes. That shape makes the sanitizer's whole error class —
//! write-write races, buffered-store/read hazards, out-of-bounds,
//! uninitialized reads, barrier-phase divergence — decidable *once per
//! (solver, n, element width)* instead of observed per launch, and makes
//! the bank-conflict degree of every step derivable as a function of `n`
//! (Figure 9, analytically).
//!
//! ## How a proof is built
//!
//! 1. **Shadow capture** ([`gpu_sim::BlockCtx::shadowed`]): the kernel runs
//!    concretely a bounded number of times — two data seeds, two batch
//!    counts, three sampled blocks (first, second, last) — with every
//!    access logged as `(tid, site, array, index, in_bounds)`.
//! 2. **Generalization**: the captures must agree on a *skeleton* —
//!    identical steps, sites and indices across seeds (data independence),
//!    identical per-block shared indices (barrier-phase/block consistency),
//!    per-array constant global deltas linear in the block id, and global
//!    array lengths affine in the batch count. Each agreement turns the
//!    concrete capture into a model valid for **all** blocks and counts;
//!    any disagreement degrades the verdict to [`ProofStatus::Unproven`]
//!    with the reason — never a false proof.
//! 3. **Exhaustive discharge**: on the modeled block, every check runs
//!    over *all* threads (the block dimension is ≤ 512, so the GPUVerify
//!    two-thread abstraction's distinctness obligations are instantiated
//!    exhaustively rather than symbolically), and the global-memory
//!    obligations are closed under the block/count model by a corner
//!    argument (`delta ≤ slope` and the block-0 extent within the
//!    single-system allocation).
//! 4. **Affine classification**: every access site must fit an affine (or
//!    boundary-clamped piecewise-affine) model in `(tid, ordinal)`. A site
//!    that does not — a data-dependent or count-dependent index — makes the
//!    whole verdict `Unproven` even when the concrete checks passed: the
//!    declared soundness boundary.
//!
//! Verdicts feed the [`VerifiedCatalog`], which solver-service admission
//! consults to skip the first-flush dynamic sanitize for statically-proven
//! engines, and the `repro prove` CI gate.

#![warn(missing_docs)]

pub mod affine;
pub mod catalog;
pub mod engine;
pub mod verdict;

pub use affine::{analytic_bank_degree, SiteModel};
pub use catalog::VerifiedCatalog;
pub use engine::{verify_block_cr, verify_fixture, verify_launch, verify_solver, VerifyOptions};
pub use verdict::{ProofStatus, SizeVerdict, StaticFinding, StepSummary};
