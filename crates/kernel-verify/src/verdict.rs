//! Verdict types: what the verifier proved, failed to prove, or refuted.

use gpu_sim::DiagnosticKind;

/// Outcome of verifying one (kernel, size, element width).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofStatus {
    /// Every obligation discharged for the whole launch family at this
    /// size: race freedom, hazard freedom, bounds, initialized reads,
    /// block/count generalization, and affine classification of every site.
    Proven,
    /// No violation found, but at least one obligation could not be closed
    /// (data/count-dependent skeleton, non-affine site, capture budget,
    /// instantiation failure). The dynamic sanitizer remains the authority.
    Unproven,
    /// At least one concrete violation was found.
    Violated,
}

impl ProofStatus {
    /// Snake-case name used in tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ProofStatus::Proven => "proven",
            ProofStatus::Unproven => "unproven",
            ProofStatus::Violated => "VIOLATED",
        }
    }
}

/// One statically-derived violation, attributed to source like the dynamic
/// sanitizer's `Diagnostic` (same `DiagnosticKind` vocabulary, same
/// file/line attribution, so the two reports can be diffed).
#[derive(Debug, Clone)]
pub struct StaticFinding {
    /// The violation class.
    pub kind: DiagnosticKind,
    /// Source file of the offending access.
    pub file: String,
    /// Source line of the offending access.
    pub line: u32,
    /// Related site (the colliding store, the buffered store of a hazard).
    pub related: Option<(String, u32)>,
    /// Step index (within the captured block) where it occurs first.
    pub step: usize,
    /// Phase label of that step.
    pub phase: &'static str,
    /// Array handle index, when the violation concerns one array.
    pub array: Option<u32>,
    /// Element index of the first occurrence, when meaningful.
    pub index: Option<usize>,
    /// Number of occurrences across the modeled block.
    pub occurrences: usize,
    /// Human-readable description.
    pub message: String,
}

impl StaticFinding {
    /// `file:line` of the finding.
    pub fn site(&self) -> String {
        format!("{}:{}", self.file, self.line)
    }
}

/// Per-step summary of the modeled block (bank degrees feed the Figure 9
/// cross-check and the analytic degree-vs-`n` table).
#[derive(Debug, Clone)]
pub struct StepSummary {
    /// Phase label.
    pub phase: &'static str,
    /// Active thread count.
    pub active: usize,
    /// Worst analytic half-warp bank-conflict degree of the step (>= 1).
    pub max_bank_degree: u32,
}

/// Full verdict for one (kernel, size, element width).
#[derive(Debug, Clone)]
pub struct SizeVerdict {
    /// Kernel name (catalog spelling for solvers, fixture name otherwise).
    pub name: String,
    /// System size verified.
    pub n: usize,
    /// Element width in bytes (4 = f32, 8 = f64).
    pub width: usize,
    /// The verdict.
    pub status: ProofStatus,
    /// Concrete violations (empty unless `status == Violated`).
    pub findings: Vec<StaticFinding>,
    /// Why the proof could not be closed (empty unless `Unproven`).
    pub unproven: Vec<String>,
    /// Distinct access sites observed.
    pub sites: usize,
    /// Sites that fit the (piecewise-)affine model.
    pub affine_sites: usize,
    /// Per-step summaries of the modeled block.
    pub steps: Vec<StepSummary>,
    /// Worst analytic bank-conflict degree across all steps.
    pub max_bank_degree: u32,
    /// Shadow events captured across all runs.
    pub events: usize,
    /// Host wall-clock of capture + analysis, in milliseconds.
    pub wall_ms: f64,
}

impl SizeVerdict {
    /// Builds an `Unproven` verdict carrying a single reason (used when
    /// instantiation or capture fails before analysis).
    pub fn unproven(name: &str, n: usize, width: usize, reason: String) -> Self {
        SizeVerdict {
            name: name.to_string(),
            n,
            width,
            status: ProofStatus::Unproven,
            findings: Vec::new(),
            unproven: vec![reason],
            sites: 0,
            affine_sites: 0,
            steps: Vec::new(),
            max_bank_degree: 1,
            events: 0,
            wall_ms: 0.0,
        }
    }

    /// The error-severity findings (all `StaticFinding` kinds are errors;
    /// bank degrees are reported via [`StepSummary`], not findings).
    pub fn violation_count(&self) -> usize {
        self.findings.len()
    }

    /// Worst bank degree per step of a given phase label, in step order —
    /// the analytic Figure 9 series when asked for `ForwardReduction`.
    pub fn degrees_in_phase(&self, phase: &str) -> Vec<u32> {
        self.steps.iter().filter(|s| s.phase == phase).map(|s| s.max_bank_degree).collect()
    }

    /// One flat-JSON object (hand-rolled; the serde shim has no
    /// serializer), matching the bench gates' scanner conventions.
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    "{{\"kind\":\"{}\",\"site\":\"{}\",\"occurrences\":{}}}",
                    f.kind.name(),
                    f.site(),
                    f.occurrences
                )
            })
            .collect();
        let unproven: Vec<String> =
            self.unproven.iter().map(|r| format!("\"{}\"", r.replace('"', "'"))).collect();
        format!(
            "{{\"name\":\"{}\",\"n\":{},\"width\":{},\"status\":\"{}\",\"violations\":{},\
             \"sites\":{},\"affine_sites\":{},\"max_bank_degree\":{},\"events\":{},\
             \"wall_ms\":{:.3},\"findings\":[{}],\"unproven\":[{}]}}",
            self.name,
            self.n,
            self.width,
            self.status.name(),
            self.findings.len(),
            self.sites,
            self.affine_sites,
            self.max_bank_degree,
            self.events,
            self.wall_ms,
            findings.join(","),
            unproven.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unproven_constructor_and_json_round_trip_fields() {
        let v = SizeVerdict::unproven("cr", 64, 4, "capture \"failed\"".to_string());
        assert_eq!(v.status, ProofStatus::Unproven);
        let json = v.to_json();
        assert!(json.contains("\"name\":\"cr\""));
        assert!(json.contains("\"status\":\"unproven\""));
        assert!(!json.contains("\"failed\""), "inner quotes escaped: {json}");
    }

    #[test]
    fn status_names_are_stable() {
        assert_eq!(ProofStatus::Proven.name(), "proven");
        assert_eq!(ProofStatus::Unproven.name(), "unproven");
        assert_eq!(ProofStatus::Violated.name(), "VIOLATED");
    }
}
