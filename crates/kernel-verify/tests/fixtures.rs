//! Satellite: every deliberately-buggy fixture kernel is pinned to a
//! static verdict, and the static findings carry the *same source-line
//! attribution* as the dynamic sanitizer's diagnostics — the two reports
//! must be diffable site-by-site.

use gpu_sim::{DiagnosticKind, Launcher, SanitizeOptions, Severity};
use kernel_verify::{verify_fixture, ProofStatus, VerifyOptions};

/// Expected dominant finding kind per fixture.
const EXPECTED: [(&str, DiagnosticKind); 4] = [
    ("missing-barrier-cr", DiagnosticKind::ReadWriteHazard),
    ("racy-cr-step", DiagnosticKind::WriteWriteRace),
    ("oob-pcr", DiagnosticKind::SharedOutOfBounds),
    ("uninit-rd", DiagnosticKind::UninitializedRead),
];

#[test]
fn every_fixture_is_statically_violated_with_its_kind() {
    for (name, kind) in EXPECTED {
        for n in [16usize, 64] {
            let v = verify_fixture::<f32>(name, n, &VerifyOptions::default());
            assert_eq!(
                v.status,
                ProofStatus::Violated,
                "{name} n={n} must be VIOLATED, got {} (unproven: {:?})",
                v.status.name(),
                v.unproven
            );
            assert!(
                v.findings.iter().any(|f| f.kind == kind),
                "{name} n={n}: expected a {} finding, got {:?}",
                kind.name(),
                v.findings.iter().map(|f| f.kind.name()).collect::<Vec<_>>()
            );
            // Attribution points into the fixture source, not the engine.
            assert!(
                v.findings.iter().all(|f| f.file.ends_with("fixtures.rs")),
                "{name} n={n}: findings must attribute to fixtures.rs: {:?}",
                v.findings.iter().map(|f| f.site()).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn static_findings_attribute_the_same_lines_as_the_dynamic_sanitizer() {
    for (name, _) in EXPECTED {
        let n = 32usize;
        let v = verify_fixture::<f32>(name, n, &VerifyOptions::default());
        let inst = gpu_solvers::fixture_instance::<f32>(name, n, 4).unwrap();
        let mut gmem = inst.gmem;
        let report = Launcher::gtx280()
            .with_sanitize(SanitizeOptions::record())
            .launch(&&*inst.kernel, inst.grid_dim, &mut gmem)
            .unwrap();
        let dynamic: Vec<_> = report.sanitizer_errors().collect();
        assert!(!dynamic.is_empty(), "{name}: dynamic sanitizer must also fire");
        for d in dynamic {
            assert!(
                v.findings.iter().any(|f| {
                    f.kind == d.kind && f.file == d.location.file() && f.line == d.location.line()
                }),
                "{name}: dynamic {} at {} has no static counterpart; static: {:?}",
                d.kind.name(),
                d.site(),
                v.findings.iter().map(|f| (f.kind.name(), f.site())).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn fixture_findings_carry_step_phase_and_related_sites() {
    // The hazard fixture's finding must name both sites: the load and the
    // buffered store it observed past.
    let v = verify_fixture::<f32>("missing-barrier-cr", 32, &VerifyOptions::default());
    let hazard = v
        .findings
        .iter()
        .find(|f| f.kind == DiagnosticKind::ReadWriteHazard)
        .expect("hazard finding");
    let (rfile, _rline) = hazard.related.as_ref().expect("hazard names its buffered store");
    assert!(rfile.ends_with("fixtures.rs"));
    assert!(!hazard.phase.is_empty());
    // All fixture findings are error-severity (the proof gate treats any
    // of them as a hard failure).
    assert!(v.findings.iter().all(|f| f.kind.severity() == Severity::Error));
}
