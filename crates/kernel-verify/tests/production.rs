//! Satellites: whole-family proofs for the production solvers, and the
//! analytic bank-conflict degrees cross-checked step-by-step against the
//! dynamic simulator's measured degrees.

use gpu_sim::{DeviceConfig, Launcher};
use gpu_solvers::{verify_family, GpuAlgorithm, RdMode};
use kernel_verify::{verify_block_cr, verify_solver, ProofStatus, VerifyOptions};

/// Every production algorithm with an affine access skeleton proves over
/// its declared family (the global path sampled up to 4096 here; the
/// `repro prove` gate sweeps the full declared family).
#[test]
fn production_families_are_proven() {
    let device = DeviceConfig::gtx280();
    let opts = VerifyOptions::default();
    let algs = [
        GpuAlgorithm::Cr,
        GpuAlgorithm::Pcr,
        GpuAlgorithm::Rd(RdMode::Plain),
        GpuAlgorithm::Rd(RdMode::Rescaled),
        GpuAlgorithm::CrPcr { m: 32 },
        GpuAlgorithm::CrRd { m: 32, mode: RdMode::Plain },
        GpuAlgorithm::CrRd { m: 32, mode: RdMode::Rescaled },
        GpuAlgorithm::CrEvenOdd,
        GpuAlgorithm::CrGlobalOnly,
    ];
    for alg in algs {
        let family = verify_family(alg, 4, &device);
        assert!(!family.is_empty(), "{alg:?} family is empty");
        for n in family.into_iter().filter(|&n| n <= 4096) {
            let v = verify_solver::<f32>(alg, n, &opts);
            assert_eq!(
                v.status,
                ProofStatus::Proven,
                "{alg:?} n={n}: {} (findings {:?}, unproven {:?})",
                v.status.name(),
                v.findings.iter().map(|f| f.site()).collect::<Vec<_>>(),
                v.unproven
            );
            assert_eq!(v.sites, v.affine_sites, "{alg:?} n={n}");
        }
    }
}

/// The per-thread Thomas kernel is the documented soundness boundary: its
/// interleaved index `i*count + s` is bilinear in (thread, count), so the
/// verdict must degrade to `Unproven` with a count-dependence reason —
/// never a proof, and never a spurious violation.
#[test]
fn thomas_per_thread_is_documented_unproven_across_its_family() {
    let device = DeviceConfig::gtx280();
    for n in verify_family(GpuAlgorithm::ThomasPerThread, 4, &device) {
        let v = verify_solver::<f32>(GpuAlgorithm::ThomasPerThread, n, &VerifyOptions::default());
        assert_eq!(v.status, ProofStatus::Unproven, "n={n}");
        assert!(v.findings.is_empty(), "n={n}: no spurious violations");
        assert!(
            v.unproven.iter().any(|r| r.contains("count-dependent")),
            "n={n}: {:?}",
            v.unproven
        );
    }
}

/// f64 halves the shared-memory family but proves identically.
#[test]
fn f64_families_are_proven() {
    let device = DeviceConfig::gtx280();
    for alg in [GpuAlgorithm::Cr, GpuAlgorithm::Pcr] {
        for n in verify_family(alg, 8, &device) {
            let v = verify_solver::<f64>(alg, n, &VerifyOptions::default());
            assert_eq!(v.status, ProofStatus::Proven, "{alg:?} n={n}: {:?}", v.unproven);
        }
    }
}

/// The block-tridiagonal CR kernel proves in both widths.
#[test]
fn block_cr_is_proven() {
    for n in [4usize, 16, 64, 128] {
        let v = verify_block_cr::<f32>(n, &VerifyOptions::default());
        assert_eq!(v.status, ProofStatus::Proven, "block-cr f32 n={n}: {:?}", v.unproven);
    }
    let v = verify_block_cr::<f64>(32, &VerifyOptions::default());
    assert_eq!(v.status, ProofStatus::Proven, "block-cr f64: {:?}", v.unproven);
}

/// Satellite: the statically-derived per-step bank-conflict degrees equal
/// the simulator's *measured* degrees, step by step, for CR and PCR at
/// three sizes — the analytic Figure 9 reproduction.
#[test]
fn analytic_bank_degrees_match_measured_degrees() {
    for alg in [GpuAlgorithm::Cr, GpuAlgorithm::Pcr] {
        for n in [64usize, 256, 512] {
            let v = verify_solver::<f32>(alg, n, &VerifyOptions::default());
            assert_eq!(v.status, ProofStatus::Proven, "{alg:?} n={n}");

            let inst = gpu_solvers::solver_instance::<f32>(alg, n, 4, 7).unwrap();
            let mut gmem = inst.gmem;
            let report =
                Launcher::gtx280().launch(&&*inst.kernel, inst.grid_dim, &mut gmem).unwrap();
            let measured = &report.stats.steps;
            assert_eq!(v.steps.len(), measured.len(), "{alg:?} n={n}: step count");
            for (s, (stat, sum)) in measured.iter().zip(&v.steps).enumerate() {
                assert_eq!(stat.phase.label(), sum.phase, "{alg:?} n={n} step {s}");
                assert_eq!(
                    stat.max_conflict_degree, sum.max_bank_degree,
                    "{alg:?} n={n} step {s} ({}): measured vs analytic degree",
                    sum.phase
                );
            }
        }
    }
}

/// The CR forward-reduction degree series at n=512 is the paper's Figure 9
/// annotation, derived without running a single sanitized launch.
#[test]
fn figure9_series_is_derived_statically() {
    let v = verify_solver::<f32>(GpuAlgorithm::Cr, 512, &VerifyOptions::default());
    assert_eq!(v.degrees_in_phase("CR: forward reduction"), vec![2, 4, 8, 16, 16, 8, 4, 2]);
    assert_eq!(v.max_bank_degree, 16);
}
