//! Satellite: agreement between the dynamic sanitizer and the symbolic
//! verdict over randomized launches.
//!
//! Soundness direction ("no static false-negatives on the affine
//! subset"): any `Error`-severity diagnostic the dynamic sanitizer
//! reports on a launch must be *predicted* by the static verdict for that
//! (kernel, n, width) — same kind, same source line — or the verdict must
//! at least refuse to claim a proof (`Unproven`). A launch whose family
//! member is `Proven` must therefore sanitize clean. Disagreements dump
//! both reports.

use gpu_sim::{Launcher, SanitizeOptions};
use gpu_solvers::{GpuAlgorithm, RdMode, VerifyInstance};
use kernel_verify::{
    verify_fixture, verify_launch, verify_solver, ProofStatus, SizeVerdict, VerifyOptions,
};
use tridiag_core::Real;

/// Deterministic LCG so the "random" matrix is reproducible.
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[(self.next() as usize) % xs.len()]
    }
}

/// Runs one launch under the dynamic sanitizer (record mode, all blocks)
/// and checks every error diagnostic against the static verdict.
fn check_agreement<T: Real>(label: &str, verdict: &SizeVerdict, inst: VerifyInstance<T>) -> usize {
    let mut gmem = inst.gmem;
    let report = match Launcher::gtx280().with_sanitize(SanitizeOptions::record()).launch(
        &&*inst.kernel,
        inst.grid_dim,
        &mut gmem,
    ) {
        Ok(r) => r,
        Err(_) => return 0, // device-inadmissible launch: nothing to compare
    };
    let mut dynamic_errors = 0usize;
    for d in report.sanitizer_errors() {
        dynamic_errors += 1;
        let predicted = match verdict.status {
            // A proof would have been refuted: the static report must
            // contain the same (kind, line).
            ProofStatus::Violated => verdict.findings.iter().any(|f| {
                f.kind == d.kind && f.file == d.location.file() && f.line == d.location.line()
            }),
            // No proof claimed: the dynamic sanitizer stays the authority.
            ProofStatus::Unproven => true,
            ProofStatus::Proven => false,
        };
        if !predicted {
            eprintln!("=== static report ({label}) ===\n{}", verdict.to_json());
            eprintln!(
                "=== dynamic report ({label}) ===\n{}",
                gpu_sim::diagnostics_to_json(&report.diagnostics)
            );
            panic!(
                "{label}: dynamic {} at {} not predicted by static verdict {}",
                d.kind.name(),
                d.site(),
                verdict.status.name()
            );
        }
    }
    dynamic_errors
}

fn random_solver_matrix<T: Real>(rng: &mut Lcg, rounds: usize) {
    let algs = [
        GpuAlgorithm::Cr,
        GpuAlgorithm::Pcr,
        GpuAlgorithm::Rd(RdMode::Plain),
        GpuAlgorithm::Rd(RdMode::Rescaled),
        GpuAlgorithm::CrPcr { m: 16 },
        GpuAlgorithm::CrRd { m: 16, mode: RdMode::Plain },
        GpuAlgorithm::CrEvenOdd,
        GpuAlgorithm::CrGlobalOnly,
        GpuAlgorithm::ThomasPerThread,
    ];
    let sizes = [8usize, 16, 32, 64, 128, 256];
    for _ in 0..rounds {
        let alg = *rng.pick(&algs);
        let n = *rng.pick(&sizes);
        let count = 2 + (rng.next() as usize % 6);
        let seed = rng.next();
        let inst = match gpu_solvers::solver_instance::<T>(alg, n, count, seed) {
            Ok(i) => i,
            Err(_) => continue, // invalid configuration for this algorithm
        };
        let verdict = verify_solver::<T>(alg, n, &VerifyOptions::default());
        let errors = check_agreement(&format!("{alg:?} n={n} {}", T::NAME), &verdict, inst);
        // Production kernels sanitize clean; a proof plus dynamic errors
        // would have panicked above, but make the expectation explicit.
        if verdict.status == ProofStatus::Proven {
            assert_eq!(errors, 0, "{alg:?} n={n}: proven family member sanitized dirty");
        }
    }
}

#[test]
fn dynamic_errors_are_predicted_for_random_solver_launches() {
    let mut rng = Lcg(0x5EED_CAFE);
    random_solver_matrix::<f32>(&mut rng, 24);
    random_solver_matrix::<f64>(&mut rng, 12);
}

#[test]
fn dynamic_errors_are_predicted_for_fixture_launches() {
    let mut rng = Lcg(0xF1C7_0BAD);
    for _ in 0..12 {
        let name = *rng.pick(&gpu_solvers::FIXTURE_NAMES);
        let n = *rng.pick(&[16usize, 32, 64]);
        let count = 2 + (rng.next() as usize % 4);
        let verdict = verify_fixture::<f32>(name, n, &VerifyOptions::default());
        let inst = gpu_solvers::fixture_instance::<f32>(name, n, count).unwrap();
        let errors = check_agreement(&format!("{name} n={n}"), &verdict, inst);
        assert!(errors > 0, "{name} n={n}: fixture must sanitize dirty");
        assert_eq!(verdict.status, ProofStatus::Violated, "{name} n={n}");
    }
}

#[test]
fn block_cr_agrees_with_its_dynamic_sanitize() {
    for n in [8usize, 32, 128] {
        let verdict = verify_launch::<f32>(
            "block-cr",
            n,
            &|count, seed| {
                gpu_solvers::block_instance(n, count, seed).map_err(|e| format!("{e:?}"))
            },
            &VerifyOptions::default(),
        );
        let inst = gpu_solvers::block_instance::<f32>(n, 3, 99).unwrap();
        let errors = check_agreement(&format!("block-cr n={n}"), &verdict, inst);
        assert_eq!(verdict.status, ProofStatus::Proven, "{:?}", verdict.unproven);
        assert_eq!(errors, 0, "block-cr n={n} sanitized dirty");
    }
}
