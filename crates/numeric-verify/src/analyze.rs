//! The static analysis: class scan, machine-checked pivot propagation,
//! forward-error bound.
//!
//! ## Floating-point slack
//!
//! Every class scan compares quantities computed from `T`-precision
//! coefficients. A row whose dominance gap is smaller than a few ulps of
//! the row's magnitude could flip classes under a different rounding of
//! the same physical matrix, so each row must clear its gap by an
//! explicit slack of `4·ε_T·(|a|+|b|+|c|)` — four ulps of the row sum,
//! covering the three magnitude sums and the two subtractions of the
//! scan itself. The scan arithmetic runs in `f64`, where those five
//! operations on `T`-ranged values are exact to well under one `ε_T`.
//!
//! ## Machine-checked propagation
//!
//! The dominance lemma (see [`cpu_solvers::pivot_bounds`]) and Heller's
//! CR-level bound (see [`gpu_solvers::dominance`]) are theorems, but the
//! analyzer does not take them on faith: it re-runs the Thomas pivot
//! recurrence and every CR reduction level in `f64` and verifies the
//! certified property numerically at each level. The check is O(n) total
//! (levels halve), and a certificate is only issued when both the scan
//! *and* the propagation check pass — so even a mis-stated analytic
//! bound cannot mint an unsound certificate.

use cpu_solvers::{condition_estimate, positive_pivot_floor, thomas_pivot_floor};
use tridiag_core::{NumericCertificate, Real, TridiagonalSystem};

/// Ulps of row magnitude a class scan must clear before certifying.
const SLACK_ULPS: f64 = 4.0;

/// Result of analyzing one matrix.
#[derive(Debug, Clone, Copy)]
pub struct Analysis {
    /// The issued certificate (possibly `Uncertified`).
    pub certificate: NumericCertificate,
    /// A-priori forward-error bound `κ₁·ε_T·n` for pivot-free solves of
    /// this matrix; `+∞` when uncertified or the estimator failed.
    pub forward_error_bound: f64,
    /// Hager 1-norm condition estimate (`+∞` when unavailable).
    pub kappa1: f64,
    /// How many condition-estimator invocations the analysis performed.
    pub condest_calls: u64,
}

impl Analysis {
    fn uncertified(condest_calls: u64) -> Self {
        Analysis {
            certificate: NumericCertificate::Uncertified,
            forward_error_bound: f64::INFINITY,
            kappa1: f64::INFINITY,
            condest_calls,
        }
    }
}

/// Per-row slack: `4·ε_T` of the row magnitude.
fn row_slack(eps: f64, a: f64, b: f64, c: f64) -> f64 {
    SLACK_ULPS * eps * (a.abs() + b.abs() + c.abs())
}

/// Strict-dominance scan. Returns the worst-row gap
/// `min_i (|b_i| − |a_i| − |c_i|)` when every row clears its slack.
fn dominance_margin(a: &[f64], b: &[f64], c: &[f64], eps: f64) -> Option<f64> {
    let mut margin = f64::INFINITY;
    for i in 0..b.len() {
        let gap = b[i].abs() - a[i].abs() - c[i].abs();
        // NaN gaps (overflowing rows) must reject, not certify.
        if !gap.is_finite() || gap <= row_slack(eps, a[i], b[i], c[i]) {
            return None;
        }
        margin = margin.min(gap);
    }
    Some(margin)
}

/// SPD scan: exact symmetry, positive diagonal, and every LDLᵀ pivot
/// `p_i = b_i − c_{i−1}²/p_{i−1}` strictly positive beyond slack.
fn is_spd(a: &[f64], b: &[f64], c: &[f64], eps: f64) -> bool {
    let n = b.len();
    for i in 1..n {
        if a[i] != c[i - 1] {
            return false;
        }
    }
    let mut p = 0.0f64;
    for i in 0..n {
        p = if i == 0 { b[0] } else { b[i] - c[i - 1] * c[i - 1] / p };
        if !p.is_finite() || p <= row_slack(eps, a[i], b[i], c[i]) {
            return false;
        }
    }
    true
}

/// M-matrix scan: positive diagonal, non-positive off-diagonals, every
/// Thomas pivot strictly positive beyond slack.
fn is_m_matrix(a: &[f64], b: &[f64], c: &[f64], eps: f64) -> bool {
    let n = b.len();
    let mut max_row = 0.0f64;
    for i in 0..n {
        if b[i] <= 0.0 || a[i] > 0.0 || c[i] > 0.0 {
            return false;
        }
        max_row = max_row.max(a[i].abs() + b[i] + c[i].abs());
    }
    positive_pivot_floor(a, b, c, SLACK_ULPS * eps * max_row).is_some()
}

/// One CR forward-reduction level: keeps the odd-indexed rows, folding
/// each one's even neighbours in via the Schur complement. Returns `None`
/// on a zero or non-finite elimination pivot.
fn cr_reduce(a: &[f64], b: &[f64], c: &[f64]) -> Option<(Vec<f64>, Vec<f64>, Vec<f64>)> {
    let n = b.len();
    let mut ra = Vec::with_capacity(n / 2);
    let mut rb = Vec::with_capacity(n / 2);
    let mut rc = Vec::with_capacity(n / 2);
    let mut i = 1;
    while i < n {
        if b[i - 1] == 0.0 || !b[i - 1].is_finite() {
            return None;
        }
        let k1 = a[i] / b[i - 1];
        let (k2, a_next, c_next) = if i + 1 < n {
            if b[i + 1] == 0.0 || !b[i + 1].is_finite() {
                return None;
            }
            (c[i] / b[i + 1], a[i + 1], c[i + 1])
        } else {
            (0.0, 0.0, 0.0)
        };
        ra.push(-a[i - 1] * k1);
        rb.push(b[i] - c[i - 1] * k1 - a_next * k2);
        rc.push(-c_next * k2);
        i += 2;
    }
    (!rb.is_empty()).then_some((ra, rb, rc))
}

/// Runs CR reduction to the bottom, checking `property` on every reduced
/// level (the top level is the caller's class scan). O(n) total work.
fn cr_levels_preserve(
    a: &[f64],
    b: &[f64],
    c: &[f64],
    property: impl Fn(&[f64], &[f64], &[f64]) -> bool,
) -> bool {
    let (mut a, mut b, mut c) = (a.to_vec(), b.to_vec(), c.to_vec());
    while b.len() > 2 {
        let Some((ra, rb, rc)) = cr_reduce(&a, &b, &c) else {
            return false;
        };
        if !property(&ra, &rb, &rc) {
            return false;
        }
        (a, b, c) = (ra, rb, rc);
    }
    true
}

/// Analyzes one system and issues the strongest certificate it can prove.
///
/// Issue priority is `StrictlyDominant > Spd > MMatrix`: strict dominance
/// carries a quantitative margin the other classes lack. A certificate is
/// only returned when the class scan, the machine-checked Thomas/CR pivot
/// propagation, **and** a finite Hager forward-error bound all hold —
/// any failure yields `Uncertified` (never an error).
pub fn analyze<T: Real>(system: &TridiagonalSystem<T>) -> Analysis {
    let n = system.n();
    if n == 0 {
        return Analysis::uncertified(0);
    }
    let to64 = |v: &[T]| v.iter().map(|x| x.to_f64()).collect::<Vec<f64>>();
    let (a, b, c) = (to64(&system.a), to64(&system.b), to64(&system.c));
    if a.iter().chain(&b).chain(&c).any(|v| !v.is_finite()) {
        return Analysis::uncertified(0);
    }
    let eps = T::EPSILON.to_f64();

    // Class scan, strongest first.
    let certificate = if let Some(margin) = dominance_margin(&a, &b, &c, eps) {
        NumericCertificate::StrictlyDominant { margin }
    } else if is_spd(&a, &b, &c, eps) {
        NumericCertificate::Spd
    } else if is_m_matrix(&a, &b, &c, eps) {
        NumericCertificate::MMatrix
    } else {
        return Analysis::uncertified(0);
    };

    // Machine-checked propagation: the Thomas pivots must clear the
    // class's derived lower bound, and every CR reduction level must
    // preserve the certified property.
    let propagated = match certificate {
        NumericCertificate::StrictlyDominant { margin } => {
            thomas_pivot_floor(&a, &b, &c).is_some_and(|floor| floor >= margin * (1.0 - 1e-9))
                && cr_levels_preserve(&a, &b, &c, |ra, rb, rc| {
                    (0..rb.len()).all(|i| rb[i].abs() > ra[i].abs() + rc[i].abs())
                })
        }
        NumericCertificate::Spd | NumericCertificate::MMatrix => {
            positive_pivot_floor(&a, &b, &c, 0.0).is_some()
                && cr_levels_preserve(&a, &b, &c, |ra, rb, rc| {
                    positive_pivot_floor(ra, rb, rc, 0.0).is_some()
                })
        }
        NumericCertificate::Uncertified => false,
    };
    if !propagated {
        return Analysis::uncertified(0);
    }

    // Forward-error bound from the Hager estimator; certification
    // requires it to be finite.
    match condition_estimate(system) {
        Ok(kappa1) if kappa1.is_finite() => {
            let forward_error_bound = kappa1 * eps * n as f64;
            if !forward_error_bound.is_finite() {
                return Analysis::uncertified(1);
            }
            Analysis { certificate, forward_error_bound, kappa1, condest_calls: 1 }
        }
        _ => Analysis::uncertified(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::{Generator, Workload};

    fn system_of(a: Vec<f64>, b: Vec<f64>, c: Vec<f64>) -> TridiagonalSystem<f64> {
        let d = vec![1.0; b.len()];
        TridiagonalSystem::new(a, b, c, d).unwrap()
    }

    #[test]
    fn dominant_family_earns_the_dominant_certificate() {
        let mut g = Generator::new(42);
        for n in [8usize, 64, 256] {
            let s: TridiagonalSystem<f32> = g.system(Workload::DiagonallyDominant, n);
            let analysis = analyze(&s);
            assert!(
                matches!(analysis.certificate, NumericCertificate::StrictlyDominant { margin } if margin > 0.0),
                "n={n}: {:?}",
                analysis.certificate
            );
            assert!(analysis.forward_error_bound.is_finite());
            assert!(analysis.forward_error_bound < 1e-2, "{}", analysis.forward_error_bound);
            assert_eq!(analysis.condest_calls, 1);
        }
    }

    #[test]
    fn poisson_is_spd_not_strictly_dominant() {
        // The [-1, 2, -1] stencil has a zero dominance gap on interior
        // rows — strict dominance must refuse it, the SPD pivots accept.
        let mut g = Generator::new(7);
        let s: TridiagonalSystem<f64> = g.system(Workload::Poisson, 64);
        let analysis = analyze(&s);
        assert_eq!(analysis.certificate, NumericCertificate::Spd, "{:?}", analysis.certificate);
        assert!(analysis.kappa1 > 1.0);
    }

    #[test]
    fn asymmetric_positive_stencil_is_an_m_matrix() {
        // Weakly dominant, asymmetric, sign-patterned: not strictly
        // dominant, not symmetric, but a textbook M-matrix.
        let n = 32;
        let mut a = vec![-1.0; n];
        let mut c = vec![-0.5; n];
        a[0] = 0.0;
        c[n - 1] = 0.0;
        let b = vec![1.5; n];
        let s = system_of(a, b, c);
        assert_eq!(analyze(&s).certificate, NumericCertificate::MMatrix);
    }

    #[test]
    fn near_ties_inside_the_slack_band_stay_uncertified() {
        // Gap of 1 ulp: inside the 4-ulp slack band, must not certify as
        // strictly dominant (it is still SPD-shaped? no — asymmetric).
        let n = 8;
        let mut a = vec![-1.0f64; n];
        let mut c = vec![-1.0 - 0.5 * f64::EPSILON; n];
        a[0] = 0.0;
        c[n - 1] = 0.0;
        let b = vec![2.0 + f64::EPSILON; n];
        let s = system_of(a, b, c);
        assert!(!matches!(analyze(&s).certificate, NumericCertificate::StrictlyDominant { .. }));
    }

    #[test]
    fn random_general_and_nonfinite_inputs_are_uncertified() {
        let mut g = Generator::new(9);
        let s: TridiagonalSystem<f32> = g.system(Workload::RandomGeneral, 64);
        // Random general rows routinely break dominance; whenever the
        // analyzer does certify, GEP must agree it is pivot-free.
        let analysis = analyze(&s);
        if analysis.certificate.is_certified() {
            let mut x = vec![0.0f32; 64];
            let swaps =
                cpu_solvers::gep::solve_into_counting(&s.a, &s.b, &s.c, &s.d, &mut x).unwrap();
            assert_eq!(swaps, 0);
        }

        let mut bad: TridiagonalSystem<f64> = g.system(Workload::DiagonallyDominant, 16);
        bad.b[3] = f64::NAN;
        assert_eq!(analyze(&bad).certificate, NumericCertificate::Uncertified);
    }

    #[test]
    fn near_singular_tiny_diagonal_stays_uncertified() {
        // Signs alone look M-matrix-ish, but the diagonal sits far below
        // the slack floor — no class scan may accept it.
        let s = system_of(vec![0.0, -1.0], vec![1e-300, 1e-300], vec![-1.0, 0.0]);
        assert_eq!(analyze(&s).certificate, NumericCertificate::Uncertified);
    }
}
