//! The certified catalog: memoized analysis verdicts plus the per-key
//! sampled-verification policy the dispatch layer consults on each flush.
//!
//! ## The sampled-verification contract
//!
//! * A key is analyzed **exactly once** (on first sight); the verdict is
//!   memoized under its [`MatrixKey`].
//! * Certified keys downgrade the per-answer residual verify to 1-in-K
//!   sampling: the first flush of a certified key is always `Sampled`
//!   (an immediate end-to-end validation), then every K-th flush after
//!   that. Sampling is a deterministic function of the per-key flush
//!   counter — no randomness — so fault-injection replay still catches
//!   bit-flips at exactly the same flushes every run.
//! * `Skip`ped answers keep the O(n) NaN/Inf guard and report the
//!   certificate's a-priori forward-error bound in place of a measured
//!   residual.
//! * Any corruption caught on a verified flush of a certified key
//!   [`CertifiedCatalog::revoke`]s the certificate permanently: the key
//!   returns to `Full` verification for the life of the process.

use crate::analyze::analyze;
use parking_lot::Mutex;
use std::collections::HashMap;
use tridiag_core::{MatrixKey, NumericCertificate, Real, TridiagonalSystem};

/// How much verification one flush of one key must pay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyDecision {
    /// Full per-answer residual verify + repair (uncertified or revoked).
    Full,
    /// This flush is a deterministic 1-in-K sample: full verify, with a
    /// condition-informed acceptance threshold.
    Sampled,
    /// Residual verify skipped; only the NaN/Inf guard runs.
    Skip,
}

/// What the catalog tells dispatch about one flush of one key.
#[derive(Debug, Clone, Copy)]
pub struct Observation {
    /// The key's certificate (possibly `Uncertified`).
    pub certificate: NumericCertificate,
    /// `true` exactly when this call performed the (once-per-key)
    /// analysis — the trigger for a `CertIssued` trace event.
    pub newly_analyzed: bool,
    /// Condition-estimator invocations performed by this call (0 on a
    /// memoized hit).
    pub condest_calls: u64,
    /// Verification policy for this flush.
    pub decision: VerifyDecision,
    /// A-priori forward-error bound `κ₁·ε·n` (`+∞` when uncertified).
    pub forward_error_bound: f64,
    /// Hager condition estimate (`+∞` when unavailable).
    pub kappa1: f64,
}

#[derive(Debug)]
struct Entry {
    certificate: NumericCertificate,
    forward_error_bound: f64,
    kappa1: f64,
    flushes: u64,
    revoked: bool,
}

/// Aggregate catalog counters (for metrics and gates).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Keys analyzed (certified or not).
    pub analyzed: u64,
    /// Keys holding a live (non-revoked) certificate.
    pub certified: u64,
    /// Certificates revoked after a caught corruption.
    pub revoked: u64,
}

/// Thread-safe memoized certificate store + sampling policy.
///
/// Mirrors `kernel_verify::VerifiedCatalog`: shared via `Arc` between the
/// service configuration and every dispatch worker.
#[derive(Debug)]
pub struct CertifiedCatalog {
    entries: Mutex<HashMap<MatrixKey, Entry>>,
    sample_period: u64,
}

/// Default 1-in-K sampling period for certified keys.
pub const DEFAULT_SAMPLE_PERIOD: u64 = 8;

impl Default for CertifiedCatalog {
    fn default() -> Self {
        Self::new()
    }
}

impl CertifiedCatalog {
    /// Catalog with the default 1-in-8 sampling period.
    pub fn new() -> Self {
        Self::with_sample_period(DEFAULT_SAMPLE_PERIOD as usize)
    }

    /// Catalog sampling 1-in-`k` flushes of certified keys (`k` is
    /// clamped to at least 1; `k == 1` means every flush is verified).
    pub fn with_sample_period(k: usize) -> Self {
        CertifiedCatalog { entries: Mutex::new(HashMap::new()), sample_period: (k as u64).max(1) }
    }

    /// The 1-in-K period this catalog samples at.
    pub fn sample_period(&self) -> u64 {
        self.sample_period
    }

    /// Records one flush of `key`: analyzes the system on first sight
    /// (memoized thereafter), advances the key's deterministic flush
    /// counter, and returns the verification policy for this flush.
    pub fn observe<T: Real>(&self, key: MatrixKey, system: &TridiagonalSystem<T>) -> Observation {
        let mut entries = self.entries.lock();
        let mut newly_analyzed = false;
        let mut condest_calls = 0;
        let entry = entries.entry(key).or_insert_with(|| {
            let analysis = analyze(system);
            newly_analyzed = true;
            condest_calls = analysis.condest_calls;
            Entry {
                certificate: analysis.certificate,
                forward_error_bound: analysis.forward_error_bound,
                kappa1: analysis.kappa1,
                flushes: 0,
                revoked: false,
            }
        });
        let decision = if entry.revoked || !entry.certificate.is_certified() {
            VerifyDecision::Full
        } else {
            entry.flushes += 1;
            if (entry.flushes - 1).is_multiple_of(self.sample_period) {
                VerifyDecision::Sampled
            } else {
                VerifyDecision::Skip
            }
        };
        Observation {
            certificate: if entry.revoked {
                NumericCertificate::Uncertified
            } else {
                entry.certificate
            },
            newly_analyzed,
            condest_calls,
            decision,
            forward_error_bound: entry.forward_error_bound,
            kappa1: entry.kappa1,
        }
    }

    /// The memoized certificate for `key`, if it has been analyzed
    /// (revoked keys read as `Uncertified`).
    pub fn certificate(&self, key: &MatrixKey) -> Option<NumericCertificate> {
        let entries = self.entries.lock();
        entries.get(key).map(|e| {
            if e.revoked {
                NumericCertificate::Uncertified
            } else {
                e.certificate
            }
        })
    }

    /// Permanently revokes `key`'s certificate after a caught
    /// corruption. Returns `true` when a live certificate was actually
    /// revoked (idempotent thereafter).
    pub fn revoke(&self, key: &MatrixKey) -> bool {
        let mut entries = self.entries.lock();
        match entries.get_mut(key) {
            Some(e) if !e.revoked && e.certificate.is_certified() => {
                e.revoked = true;
                true
            }
            _ => false,
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> CatalogStats {
        let entries = self.entries.lock();
        let mut stats = CatalogStats { analyzed: entries.len() as u64, ..Default::default() };
        for e in entries.values() {
            if e.revoked {
                stats.revoked += 1;
            } else if e.certificate.is_certified() {
                stats.certified += 1;
            }
        }
        stats
    }

    /// Number of analyzed keys.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// `true` when no key has been analyzed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::{Generator, Workload};

    fn dominant(seed: u64, n: usize) -> (MatrixKey, TridiagonalSystem<f32>) {
        let s: TridiagonalSystem<f32> =
            Generator::new(seed).system(Workload::DiagonallyDominant, n);
        (MatrixKey::of_system(&s), s)
    }

    #[test]
    fn analysis_happens_exactly_once_per_key() {
        let catalog = CertifiedCatalog::new();
        let (key, s) = dominant(1, 64);
        let first = catalog.observe(key, &s);
        assert!(first.newly_analyzed);
        assert_eq!(first.condest_calls, 1);
        assert!(first.certificate.is_certified());
        let second = catalog.observe(key, &s);
        assert!(!second.newly_analyzed);
        assert_eq!(second.condest_calls, 0);
        assert_eq!(catalog.len(), 1);
    }

    #[test]
    fn sampling_is_first_flush_then_one_in_k() {
        let catalog = CertifiedCatalog::with_sample_period(4);
        let (key, s) = dominant(2, 64);
        let decisions: Vec<VerifyDecision> =
            (0..9).map(|_| catalog.observe(key, &s).decision).collect();
        use VerifyDecision::*;
        assert_eq!(decisions, vec![Sampled, Skip, Skip, Skip, Sampled, Skip, Skip, Skip, Sampled]);
    }

    #[test]
    fn uncertified_keys_always_pay_full_verification() {
        let catalog = CertifiedCatalog::new();
        let s: TridiagonalSystem<f32> = Generator::new(3).system(Workload::RandomGeneral, 64);
        let key = MatrixKey::of_system(&s);
        for _ in 0..5 {
            let obs = catalog.observe(key, &s);
            if !obs.certificate.is_certified() {
                assert_eq!(obs.decision, VerifyDecision::Full);
                assert!(obs.forward_error_bound.is_infinite());
            }
        }
    }

    #[test]
    fn revocation_is_permanent_and_idempotent() {
        let catalog = CertifiedCatalog::with_sample_period(4);
        let (key, s) = dominant(4, 64);
        assert_ne!(catalog.observe(key, &s).decision, VerifyDecision::Full);
        assert!(catalog.revoke(&key));
        assert!(!catalog.revoke(&key), "second revoke must be a no-op");
        for _ in 0..6 {
            let obs = catalog.observe(key, &s);
            assert_eq!(obs.decision, VerifyDecision::Full);
            assert_eq!(obs.certificate, NumericCertificate::Uncertified);
        }
        let stats = catalog.stats();
        assert_eq!((stats.analyzed, stats.certified, stats.revoked), (1, 0, 1));
    }

    #[test]
    fn sample_period_one_verifies_every_flush() {
        let catalog = CertifiedCatalog::with_sample_period(1);
        let (key, s) = dominant(5, 32);
        for _ in 0..4 {
            assert_eq!(catalog.observe(key, &s).decision, VerifyDecision::Sampled);
        }
    }
}
