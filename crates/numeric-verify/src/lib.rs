//! # numeric-verify
//!
//! Static numerical-safety certification for tridiagonal systems — the
//! numerics counterpart of `kernel-verify`'s memory-safety proofs.
//!
//! The paper's solvers "do not include pivoting" (§5.4), which is why the
//! serving tier pays an O(n) residual verify plus a GEP-repair net on
//! every answer. But for the diagonally dominant / SPD / M-matrix
//! families that dominate real traffic, pivoting-free elimination is
//! *provably* backward-stable: Thomas pivots are bounded below by the
//! dominance margin, and each cyclic-reduction level preserves (indeed
//! squares, Heller 1976) the dominance property. This crate turns that
//! theory into a once-per-[`MatrixKey`] static analysis:
//!
//! 1. [`analyze`] scans the matrix in O(n) — dominance/sign/symmetry
//!    checks with an explicit floating-point slack argument — and then
//!    **machine-checks** the pivot-propagation lemma by running the
//!    Thomas recurrence and every CR reduction level in `f64`;
//! 2. a forward-error bound `κ₁·ε·n` is derived from the Hager
//!    1-norm condition estimator (`cpu_solvers::condest`);
//! 3. the result is a [`NumericCertificate`] memoized in a
//!    [`CertifiedCatalog`], which the dispatch layer consults per flush:
//!    certified traffic skips the per-answer residual verify, downgrading
//!    to deterministic 1-in-K *sampled* verification, while uncertified
//!    traffic keeps the full verify + repair path.
//!
//! A caught corruption on a certified key [`CertifiedCatalog::revoke`]s
//! the certificate permanently, restoring full verification for that key.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyze;
pub mod catalog;

pub use analyze::{analyze, Analysis};
pub use catalog::{CatalogStats, CertifiedCatalog, Observation, VerifyDecision};

#[doc(no_inline)]
pub use tridiag_core::{MatrixKey, NumericCertificate};
