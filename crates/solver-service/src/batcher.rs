//! Micro-batcher: groups admitted requests into size-class batches.
//!
//! The paper's solvers get their throughput from *batching* — one kernel
//! launch solving hundreds of systems at once, a thread block per system.
//! Individual callers submit one system at a time, so the service
//! accumulates requests into per-`n` buckets (systems of different sizes
//! can never share a launch: the kernels are compiled per size class and
//! the batched layout is `n`-contiguous) and flushes a bucket when either
//!
//! * it reaches the **target batch size** (enough occupancy to saturate
//!   the simulated SMs), or
//! * the oldest request in it has waited **max linger** (bounding the
//!   latency a lone request can be held hostage for), or
//! * a member's **deadline** would not survive the remaining linger
//!   window — the bucket flushes early (minus a configurable slack that
//!   leaves time for the solve itself), trading occupancy for the
//!   deadline, or
//! * the service is shutting down (everything admitted gets served).
//!
//! The bucketing logic lives in the pure, thread-free [`BucketTable`] so
//! the edge cases (lone-request linger flush, size-class isolation, flush
//! ordering) are deterministically testable; the service wraps it in a
//! thread that sleeps exactly until the earliest linger deadline.

use crate::request::SolveRequest;
use gpu_sim::Tick;
use std::collections::BTreeMap;
use std::time::Duration;
use tridiag_core::Real;

/// Why a batch was flushed — carried through to the metrics so operators
/// can see whether the service is running full (throughput mode) or
/// lingering (latency mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The bucket reached the target batch size.
    Full,
    /// The oldest request hit the linger deadline.
    Linger,
    /// A member request's completion deadline forced an early flush
    /// (deadline − slack arrived before the linger window closed).
    Deadline,
    /// Service shutdown drained the bucket.
    Shutdown,
}

impl FlushReason {
    /// Stable lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FlushReason::Full => "full",
            FlushReason::Linger => "linger",
            FlushReason::Deadline => "deadline",
            FlushReason::Shutdown => "shutdown",
        }
    }
}

/// A group of same-size requests ready for dispatch.
#[derive(Debug)]
pub struct FlushedBatch<T: Real> {
    /// System size shared by every request in the batch.
    pub n: usize,
    /// The member requests (at least one).
    pub requests: Vec<SolveRequest<T>>,
    /// What triggered the flush.
    pub reason: FlushReason,
}

struct Bucket<T: Real> {
    requests: Vec<SolveRequest<T>>,
    /// Admission tick of the *oldest* member — linger is measured from the
    /// first request so the bound holds even under a trickle of arrivals.
    oldest: Tick,
    /// Earliest completion deadline among members carrying one.
    earliest_deadline: Option<Tick>,
}

impl<T: Real> Bucket<T> {
    /// When this bucket must flush: the linger deadline, pulled earlier by
    /// the most urgent member deadline (minus `slack` to leave time for
    /// the solve itself).
    fn flush_at(&self, max_linger: Tick, slack: Tick) -> Tick {
        let linger_at = self.oldest.saturating_add(max_linger);
        match self.earliest_deadline {
            Some(d) => {
                let deadline_at = d.saturating_sub(slack).max(self.oldest);
                linger_at.min(deadline_at)
            }
            None => linger_at,
        }
    }

    /// Attributes a flush at `now`: `Linger` when the linger window is
    /// closed anyway, `Deadline` when a member deadline forced it early.
    fn flush_reason(&self, now: Tick, max_linger: Tick) -> FlushReason {
        if now >= self.oldest.saturating_add(max_linger) {
            FlushReason::Linger
        } else {
            FlushReason::Deadline
        }
    }
}

/// Pure batching state machine: per-size buckets with target/linger flush
/// and deadline-aware early flushing.
///
/// Buckets are keyed `(n, group)` where `group` is the request's
/// matrix-key fingerprint (0 for unkeyed requests): requests sharing a
/// factored matrix coalesce into one flush the warm tier can serve with a
/// single cached factorization, while unkeyed traffic — everything, when
/// the factor cache is off — lands in `group` 0 and batches exactly as
/// before.
///
/// All time is in [`Tick`]s from the service clock, and the buckets live
/// in a `BTreeMap`: when several buckets expire on the same tick they
/// flush in ascending `(size, group)` order, every run — a `HashMap` here
/// would make the flush order (and therefore a captured decision trace)
/// depend on the process's hash seed.
pub struct BucketTable<T: Real> {
    buckets: BTreeMap<(usize, u64), Bucket<T>>,
    target_batch: usize,
    max_linger: Tick,
    deadline_slack: Tick,
}

impl<T: Real> BucketTable<T> {
    /// Creates an empty table flushing at `target_batch` requests or after
    /// `max_linger` of the oldest member's wait, whichever comes first.
    /// Deadline slack defaults to 500 µs; see
    /// [`BucketTable::with_deadline_slack`].
    pub fn new(target_batch: usize, max_linger: Duration) -> Self {
        assert!(target_batch >= 1, "target batch size must be >= 1");
        Self {
            buckets: BTreeMap::new(),
            target_batch,
            max_linger: max_linger.as_nanos().min(u64::MAX as u128) as u64,
            deadline_slack: 500_000,
        }
    }

    /// Sets how much earlier than a member's deadline its bucket flushes
    /// (headroom for the dispatch + solve itself).
    pub fn with_deadline_slack(mut self, slack: Duration) -> Self {
        self.deadline_slack = slack.as_nanos().min(u64::MAX as u128) as u64;
        self
    }

    /// Number of requests currently parked in buckets.
    pub fn pending(&self) -> usize {
        self.buckets.values().map(|b| b.requests.len()).sum()
    }

    /// Adds `request` to its `(size, matrix-group)` bucket; returns the
    /// batch when the bucket reaches the target size.
    pub fn insert(&mut self, request: SolveRequest<T>, now: Tick) -> Option<FlushedBatch<T>> {
        let n = request.system.n();
        let group = request.matrix_key.map_or(0, |k| k.fingerprint());
        let key = (n, group);
        let bucket = self.buckets.entry(key).or_insert_with(|| Bucket {
            requests: Vec::new(),
            oldest: now,
            earliest_deadline: None,
        });
        if bucket.requests.is_empty() {
            bucket.oldest = now;
            bucket.earliest_deadline = None;
        }
        if let Some(d) = request.deadline {
            bucket.earliest_deadline =
                Some(bucket.earliest_deadline.map_or(d, |existing| existing.min(d)));
        }
        bucket.requests.push(request);
        if bucket.requests.len() >= self.target_batch {
            let bucket = self.buckets.remove(&key).expect("bucket just touched");
            return Some(FlushedBatch { n, requests: bucket.requests, reason: FlushReason::Full });
        }
        None
    }

    /// The earliest flush point across all buckets (linger deadline pulled
    /// earlier by member deadlines), or `None` when everything is empty
    /// (the batcher thread sleeps on the queue alone).
    pub fn next_deadline(&self) -> Option<Tick> {
        self.buckets.values().map(|b| b.flush_at(self.max_linger, self.deadline_slack)).min()
    }

    /// Flushes every bucket whose flush point has arrived — because its
    /// oldest member has waited `max_linger`, or because a member deadline
    /// (minus slack) would not survive more lingering.
    pub fn flush_expired(&mut self, now: Tick) -> Vec<FlushedBatch<T>> {
        let expired: Vec<(usize, u64)> = self
            .buckets
            .iter()
            .filter(|(_, b)| now >= b.flush_at(self.max_linger, self.deadline_slack))
            .map(|(&key, _)| key)
            .collect();
        let mut out = Vec::with_capacity(expired.len());
        for key in expired {
            let bucket = self.buckets.remove(&key).expect("listed above");
            let reason = bucket.flush_reason(now, self.max_linger);
            out.push(FlushedBatch { n: key.0, requests: bucket.requests, reason });
        }
        out
    }

    /// Flushes everything, regardless of size or age — shutdown drain.
    pub fn flush_all(&mut self) -> Vec<FlushedBatch<T>> {
        let mut keys: Vec<(usize, u64)> = self.buckets.keys().copied().collect();
        keys.sort_unstable(); // deterministic drain order
        keys.into_iter()
            .map(|key| {
                let bucket = self.buckets.remove(&key).expect("listed above");
                FlushedBatch { n: key.0, requests: bucket.requests, reason: FlushReason::Shutdown }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::make_request;
    use tridiag_core::TridiagonalSystem;

    fn req(id: u64, n: usize) -> SolveRequest<f32> {
        let system = TridiagonalSystem::toeplitz(n, -1.0, 4.0, -1.0, 1.0).unwrap();
        make_request(id, system).0
    }

    /// Milliseconds → ticks; the tests run on a purely virtual timeline
    /// starting at tick 0, no wall clock involved.
    fn ms(v: u64) -> Tick {
        v * 1_000_000
    }

    #[test]
    fn bucket_flushes_exactly_at_target() {
        let mut table = BucketTable::new(3, Duration::from_millis(100));
        assert!(table.insert(req(0, 64), 0).is_none());
        assert!(table.insert(req(1, 64), 0).is_none());
        let flush = table.insert(req(2, 64), 0).expect("third request fills the bucket");
        assert_eq!(flush.n, 64);
        assert_eq!(flush.reason, FlushReason::Full);
        assert_eq!(flush.requests.len(), 3);
        assert_eq!(table.pending(), 0);
    }

    #[test]
    fn mixed_size_classes_are_never_co_batched() {
        let mut table = BucketTable::new(2, Duration::from_millis(100));
        assert!(table.insert(req(0, 64), 0).is_none());
        assert!(table.insert(req(1, 128), 0).is_none());
        // Each size class fills independently.
        let f64_class = table.insert(req(2, 64), 0).unwrap();
        assert_eq!(f64_class.n, 64);
        assert!(f64_class.requests.iter().all(|r| r.system.n() == 64));
        let f128 = table.insert(req(3, 128), 0).unwrap();
        assert_eq!(f128.n, 128);
        assert!(f128.requests.iter().all(|r| r.system.n() == 128));
    }

    #[test]
    fn lone_request_flushes_on_linger_deadline() {
        let mut table = BucketTable::new(64, Duration::from_millis(10));
        assert!(table.insert(req(0, 32), 0).is_none());
        // Before the deadline: nothing.
        assert!(table.flush_expired(ms(5)).is_empty());
        // At the deadline: the lone request is flushed rather than starved.
        let flushed = table.flush_expired(ms(10));
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].reason, FlushReason::Linger);
        assert_eq!(flushed[0].requests.len(), 1);
    }

    #[test]
    fn linger_clock_starts_at_the_oldest_member() {
        let mut table = BucketTable::new(64, Duration::from_millis(10));
        table.insert(req(0, 32), 0);
        // A later arrival must NOT reset the deadline.
        table.insert(req(1, 32), ms(8));
        assert_eq!(table.next_deadline(), Some(ms(10)));
        let flushed = table.flush_expired(ms(10));
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].requests.len(), 2);
    }

    #[test]
    fn deadline_is_the_minimum_across_buckets() {
        let mut table = BucketTable::new(64, Duration::from_millis(10));
        table.insert(req(0, 32), ms(3));
        table.insert(req(1, 64), 0);
        assert_eq!(table.next_deadline(), Some(ms(10)));
    }

    #[test]
    fn flush_all_drains_every_bucket_deterministically() {
        let mut table = BucketTable::new(64, Duration::from_millis(100));
        table.insert(req(0, 128), 0);
        table.insert(req(1, 32), 0);
        table.insert(req(2, 32), 0);
        let drained = table.flush_all();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].n, 32); // sorted by size
        assert_eq!(drained[0].requests.len(), 2);
        assert_eq!(drained[1].n, 128);
        assert!(drained.iter().all(|f| f.reason == FlushReason::Shutdown));
        assert_eq!(table.pending(), 0);
        assert_eq!(table.next_deadline(), None);
    }

    #[test]
    fn empty_bucket_reuse_resets_the_linger_clock() {
        let mut table = BucketTable::new(2, Duration::from_millis(10));
        table.insert(req(0, 32), 0);
        table.insert(req(1, 32), 0); // flushes (target 2)
                                     // New request in the same size class starts a fresh clock.
        table.insert(req(2, 32), ms(50));
        assert_eq!(table.next_deadline(), Some(ms(60)));
    }

    #[test]
    fn member_deadline_pulls_the_flush_forward_and_labels_it() {
        let mut table =
            BucketTable::new(64, Duration::from_millis(10)).with_deadline_slack(Duration::ZERO);
        let (req_d, _ticket) = crate::request::make_request_at(
            0,
            TridiagonalSystem::toeplitz(32, -1.0, 4.0, -1.0, 1.0).unwrap(),
            0,
            Some(ms(4)),
        );
        table.insert(req_d, 0);
        assert_eq!(table.next_deadline(), Some(ms(4)), "deadline beats the 10 ms linger");
        let flushed = table.flush_expired(ms(4));
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].reason, FlushReason::Deadline);
    }

    #[test]
    fn keyed_requests_bucket_by_matrix_not_just_size() {
        use tridiag_core::MatrixKey;
        let mut table = BucketTable::new(2, Duration::from_millis(100));
        let sys_a = TridiagonalSystem::<f32>::toeplitz(64, -1.0, 4.0, -1.0, 1.0).unwrap();
        let sys_b = TridiagonalSystem::<f32>::toeplitz(64, -1.0, 5.0, -1.0, 1.0).unwrap();
        let key_a = MatrixKey::of::<f32>(&sys_a.a, &sys_a.b, &sys_a.c);
        let key_b = MatrixKey::of::<f32>(&sys_b.a, &sys_b.b, &sys_b.c);
        assert_ne!(key_a.fingerprint(), key_b.fingerprint());
        let keyed = |id, sys: &TridiagonalSystem<f32>, key| {
            crate::request::make_request_keyed(id, sys.clone(), 0, None, Some(key)).0
        };
        // Same size class, different matrices: never co-batched.
        assert!(table.insert(keyed(0, &sys_a, key_a), 0).is_none());
        assert!(table.insert(keyed(1, &sys_b, key_b), 0).is_none());
        let flush = table.insert(keyed(2, &sys_a, key_a), 0).expect("matrix-A bucket fills");
        assert_eq!(flush.requests.len(), 2);
        assert!(flush.requests.iter().all(|r| r.matrix_key == Some(key_a)));
        // The matrix-B request still waits, and an unkeyed request lands in
        // its own group-0 bucket rather than joining either matrix.
        assert_eq!(table.pending(), 1);
        assert!(table.insert(req(3, 64), 0).is_none());
        assert_eq!(table.pending(), 2);
    }

    #[test]
    fn same_tick_expiry_flushes_in_ascending_size_order() {
        // The determinism hook: three buckets expiring together must come
        // out in one fixed order (BTreeMap), not hash order.
        let mut table = BucketTable::new(64, Duration::from_millis(1));
        table.insert(req(0, 128), 0);
        table.insert(req(1, 32), 0);
        table.insert(req(2, 512), 0);
        let flushed = table.flush_expired(ms(1));
        let sizes: Vec<usize> = flushed.iter().map(|f| f.n).collect();
        assert_eq!(sizes, vec![32, 128, 512]);
    }
}
