//! Per-engine circuit breakers: stop hammering an engine that keeps
//! faulting, probe it after a cooldown, close again on success.
//!
//! The dispatcher's retry loop handles *transient* device faults; a
//! breaker handles *persistent* ones. Each engine label (e.g.
//! `cr+pcr@256`) gets an independent state machine:
//!
//! ```text
//!            consecutive faults >= threshold
//!   Closed ───────────────────────────────────► Open
//!     ▲                                          │ cooldown elapses
//!     │ probe flush succeeds                     ▼
//!     └───────────────────────────────────── HalfOpen
//!                 (probe faults → back to Open, cooldown restarts)
//! ```
//!
//! While a breaker is `Open` (and not yet cooled down), flushes planned
//! for that engine are *denied* and demoted to the CPU GEP safety net —
//! graceful degradation instead of guaranteed-to-fail launches. The first
//! flush after the cooldown is admitted as a **probe** (`HalfOpen`): its
//! outcome decides whether the engine is trusted again.
//!
//! All transitions are counted so the degradation is observable in the
//! service metrics, never silent.

use crate::trace::{TraceEvent, TraceHandle};
use gpu_sim::{Clock, Tick};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive faults on an engine that trip its breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker waits before admitting a half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { failure_threshold: 3, cooldown: Duration::from_millis(10) }
    }
}

/// Observable state of one engine's breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: flushes dispatch normally.
    Closed,
    /// Tripped: flushes are denied (demoted to the CPU safety net) until
    /// the cooldown admits a probe.
    Open,
    /// A probe flush is in flight; its outcome closes or re-opens.
    HalfOpen,
}

impl BreakerState {
    /// Stable lower-case label for metrics/JSON.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Admission verdict for one flush on one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: dispatch normally.
    Allow,
    /// Breaker was open and cooled down: this flush is the half-open probe.
    Probe,
    /// Breaker open (or a probe already in flight): do not use this engine.
    Deny,
}

#[derive(Debug)]
enum Entry {
    Closed { consecutive_faults: u32 },
    Open { since: Tick },
    HalfOpen,
}

/// The full set of per-engine breakers for one service.
///
/// Cooldowns are measured on the service [`Clock`], so under a simulated
/// clock an open breaker's re-probe point is reached by *advancing
/// virtual time* — no real waiting, and fully deterministic. Every state
/// transition is emitted on the attached [`TraceHandle`].
pub struct CircuitBreakers {
    cfg: BreakerConfig,
    clock: Clock,
    trace: TraceHandle,
    entries: Mutex<HashMap<String, Entry>>,
    /// Closed→Open trips.
    opened: AtomicU64,
    /// HalfOpen→Closed recoveries.
    closed: AtomicU64,
    /// Flushes denied while open.
    denials: AtomicU64,
}

impl Default for CircuitBreakers {
    fn default() -> Self {
        Self::new(BreakerConfig::default())
    }
}

impl CircuitBreakers {
    /// Creates breakers with `cfg` on a real clock; every engine starts
    /// `Closed`.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self::with_clock(cfg, Clock::real())
    }

    /// Creates breakers measuring cooldowns on `clock`.
    pub fn with_clock(cfg: BreakerConfig, clock: Clock) -> Self {
        Self {
            cfg,
            clock,
            trace: TraceHandle::disabled(),
            entries: Mutex::new(HashMap::new()),
            opened: AtomicU64::new(0),
            closed: AtomicU64::new(0),
            denials: AtomicU64::new(0),
        }
    }

    /// Attaches a trace handle; state transitions are emitted on it.
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    fn emit_transition(&self, engine: &str, to: BreakerState) {
        self.trace.emit(|| TraceEvent::Breaker {
            at: self.clock.now(),
            key: engine.to_string(),
            to,
        });
    }

    /// Adjudicates one flush on `engine`. `Deny` verdicts are counted.
    pub fn admit(&self, engine: &str) -> Admission {
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        let entry =
            entries.entry(engine.to_string()).or_insert(Entry::Closed { consecutive_faults: 0 });
        let verdict = match entry {
            Entry::Closed { .. } => Admission::Allow,
            Entry::Open { since } => {
                let elapsed = self.clock.now().saturating_sub(*since);
                if elapsed >= self.cfg.cooldown.as_nanos().min(u64::MAX as u128) as u64 {
                    *entry = Entry::HalfOpen;
                    self.emit_transition(engine, BreakerState::HalfOpen);
                    Admission::Probe
                } else {
                    Admission::Deny
                }
            }
            // One probe at a time: concurrent flushes wait it out on the CPU.
            Entry::HalfOpen => Admission::Deny,
        };
        if verdict == Admission::Deny {
            self.denials.fetch_add(1, Ordering::Relaxed);
        }
        verdict
    }

    /// Records a successful (non-faulting) flush on `engine`.
    pub fn on_success(&self, engine: &str) {
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        match entries.get_mut(engine) {
            Some(entry @ Entry::HalfOpen) => {
                *entry = Entry::Closed { consecutive_faults: 0 };
                self.closed.fetch_add(1, Ordering::Relaxed);
                self.emit_transition(engine, BreakerState::Closed);
            }
            Some(Entry::Closed { consecutive_faults }) => *consecutive_faults = 0,
            _ => {}
        }
    }

    /// Records a device fault on `engine`; may trip the breaker open.
    pub fn on_fault(&self, engine: &str) {
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        let entry =
            entries.entry(engine.to_string()).or_insert(Entry::Closed { consecutive_faults: 0 });
        match entry {
            Entry::Closed { consecutive_faults } => {
                *consecutive_faults += 1;
                if *consecutive_faults >= self.cfg.failure_threshold {
                    *entry = Entry::Open { since: self.clock.now() };
                    self.opened.fetch_add(1, Ordering::Relaxed);
                    self.emit_transition(engine, BreakerState::Open);
                }
            }
            Entry::HalfOpen => {
                // The probe failed: back to open, cooldown restarts.
                *entry = Entry::Open { since: self.clock.now() };
                self.opened.fetch_add(1, Ordering::Relaxed);
                self.emit_transition(engine, BreakerState::Open);
            }
            Entry::Open { .. } => {}
        }
    }

    /// Forces `engine`'s breaker open immediately, bypassing the
    /// consecutive-fault count. Used when the *device* behind the engine
    /// is lost: counting up to the threshold would only schedule more
    /// guaranteed-to-fail launches. Counts as one Closed→Open trip unless
    /// the breaker is already open.
    pub fn trip(&self, engine: &str) {
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        let entry =
            entries.entry(engine.to_string()).or_insert(Entry::Closed { consecutive_faults: 0 });
        if !matches!(entry, Entry::Open { .. }) {
            *entry = Entry::Open { since: self.clock.now() };
            self.opened.fetch_add(1, Ordering::Relaxed);
            self.emit_transition(engine, BreakerState::Open);
        }
    }

    /// Current state of `engine`'s breaker (engines never seen are Closed).
    pub fn state(&self, engine: &str) -> BreakerState {
        match self.entries.lock().unwrap_or_else(|p| p.into_inner()).get(engine) {
            None | Some(Entry::Closed { .. }) => BreakerState::Closed,
            Some(Entry::Open { .. }) => BreakerState::Open,
            Some(Entry::HalfOpen) => BreakerState::HalfOpen,
        }
    }

    /// Engine → state label, for the metrics snapshot (only engines that
    /// have been touched appear).
    pub fn states(&self) -> BTreeMap<String, String> {
        self.entries
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(engine, entry)| {
                let state = match entry {
                    Entry::Closed { .. } => BreakerState::Closed,
                    Entry::Open { .. } => BreakerState::Open,
                    Entry::HalfOpen => BreakerState::HalfOpen,
                };
                (engine.clone(), state.label().to_string())
            })
            .collect()
    }

    /// Closed→Open trips so far.
    pub fn opened_total(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }

    /// HalfOpen→Closed recoveries so far.
    pub fn closed_total(&self) -> u64 {
        self.closed.load(Ordering::Relaxed)
    }

    /// Flushes denied by an open breaker so far.
    pub fn denials_total(&self) -> u64 {
        self.denials.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> CircuitBreakers {
        CircuitBreakers::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(5),
        })
    }

    /// The same tuning on a shared simulated clock: cooldowns elapse by
    /// advancing virtual time, not by real sleeping.
    fn fast_sim() -> (CircuitBreakers, Clock) {
        let clock = Clock::sim();
        let b = CircuitBreakers::with_clock(
            BreakerConfig { failure_threshold: 3, cooldown: Duration::from_millis(5) },
            clock.clone(),
        );
        (b, clock)
    }

    #[test]
    fn stays_closed_below_threshold() {
        let b = fast();
        b.on_fault("cr");
        b.on_fault("cr");
        assert_eq!(b.state("cr"), BreakerState::Closed);
        assert_eq!(b.admit("cr"), Admission::Allow);
        assert_eq!(b.opened_total(), 0);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let b = fast();
        b.on_fault("cr");
        b.on_fault("cr");
        b.on_success("cr");
        b.on_fault("cr");
        b.on_fault("cr");
        assert_eq!(b.state("cr"), BreakerState::Closed, "count must reset on success");
    }

    #[test]
    fn trips_open_at_threshold_and_denies() {
        let b = fast();
        for _ in 0..3 {
            b.on_fault("cr");
        }
        assert_eq!(b.state("cr"), BreakerState::Open);
        assert_eq!(b.opened_total(), 1);
        assert_eq!(b.admit("cr"), Admission::Deny);
        assert_eq!(b.denials_total(), 1);
    }

    #[test]
    fn open_close_round_trip_via_half_open_probe() {
        let (b, clock) = fast_sim();
        for _ in 0..3 {
            b.on_fault("cr");
        }
        assert_eq!(b.admit("cr"), Admission::Deny);
        clock.advance(Duration::from_millis(6));
        // Cooldown elapsed: exactly one probe is admitted.
        assert_eq!(b.admit("cr"), Admission::Probe);
        assert_eq!(b.state("cr"), BreakerState::HalfOpen);
        assert_eq!(b.admit("cr"), Admission::Deny, "only one probe in flight");
        b.on_success("cr");
        assert_eq!(b.state("cr"), BreakerState::Closed);
        assert_eq!(b.closed_total(), 1);
        assert_eq!(b.admit("cr"), Admission::Allow);
    }

    #[test]
    fn failed_probe_reopens() {
        let (b, clock) = fast_sim();
        for _ in 0..3 {
            b.on_fault("cr");
        }
        clock.advance(Duration::from_millis(6));
        assert_eq!(b.admit("cr"), Admission::Probe);
        b.on_fault("cr");
        assert_eq!(b.state("cr"), BreakerState::Open);
        assert_eq!(b.opened_total(), 2);
        assert_eq!(b.admit("cr"), Admission::Deny, "cooldown restarted");
        // The restarted cooldown also elapses virtually.
        clock.advance(Duration::from_millis(6));
        assert_eq!(b.admit("cr"), Admission::Probe, "second probe after re-cooldown");
    }

    #[test]
    fn transitions_are_emitted_on_the_trace_handle() {
        use crate::trace::{TraceEvent, TraceSink};
        use std::sync::{Arc, Mutex};
        struct Collect(Mutex<Vec<TraceEvent>>);
        impl TraceSink for Collect {
            fn record(&self, event: TraceEvent) {
                self.0.lock().unwrap().push(event);
            }
        }
        let sink = Arc::new(Collect(Mutex::new(Vec::new())));
        let clock = Clock::sim();
        let b = CircuitBreakers::with_clock(
            BreakerConfig { failure_threshold: 2, cooldown: Duration::from_millis(1) },
            clock.clone(),
        )
        .with_trace(TraceHandle::to(sink.clone()));
        b.on_fault("cr");
        b.on_fault("cr"); // trips open
        clock.advance(Duration::from_millis(2));
        assert_eq!(b.admit("cr"), Admission::Probe); // half-open
        b.on_success("cr"); // closes
        let events = sink.0.lock().unwrap();
        let states: Vec<BreakerState> = events
            .iter()
            .map(|e| match e {
                TraceEvent::Breaker { to, .. } => *to,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(states, vec![BreakerState::Open, BreakerState::HalfOpen, BreakerState::Closed]);
    }

    #[test]
    fn trip_opens_immediately_and_is_idempotent() {
        let b = fast();
        assert_eq!(b.state("dev1:cr"), BreakerState::Closed);
        b.trip("dev1:cr");
        assert_eq!(b.state("dev1:cr"), BreakerState::Open);
        assert_eq!(b.opened_total(), 1);
        b.trip("dev1:cr");
        assert_eq!(b.opened_total(), 1, "re-tripping an open breaker is a no-op");
        assert_eq!(b.admit("dev1:cr"), Admission::Deny);
    }

    #[test]
    fn breakers_are_independent_per_engine() {
        let b = fast();
        for _ in 0..3 {
            b.on_fault("cr");
        }
        assert_eq!(b.state("cr"), BreakerState::Open);
        assert_eq!(b.state("pcr"), BreakerState::Closed);
        assert_eq!(b.admit("pcr"), Admission::Allow);
        let states = b.states();
        assert_eq!(states["cr"], "open");
        assert!(!states.contains_key("pcr") || states["pcr"] == "closed");
    }
}
