//! Dispatcher: executes a flushed batch on the planned engine, verifies
//! every solution, repairs failures, and fulfils tickets.
//!
//! Routing policy, in order:
//!
//! 1. **Small flushes go to the CPU.** A linger-flushed batch of one or
//!    two systems cannot amortize a kernel launch + PCIe round trip; below
//!    `min_gpu_batch` the dispatcher overrides the cached plan with the
//!    sequential Thomas solver.
//! 2. **Otherwise the [`PlanCache`] decides** — autotuned once per size
//!    class, O(1) afterwards.
//! 3. **Every answer is verified.** GPU batches run through
//!    [`solve_batch_robust`] (the repo's verify-and-repair wrapper); CPU
//!    batches get the same residual acceptance test with per-system GEP
//!    repair. The service never returns an unverified solution — the
//!    paper's solvers are pivoting-free and may fail on general matrices,
//!    so verification is what makes this a *service* rather than a kernel.
//! 4. **The first GPU flush of each size class is sanitized.** With
//!    [`DispatchConfig::sanitize_first_flush`] set (the default), the
//!    first flush dispatched to a GPU engine for each plan-cache key runs
//!    with the kernel sanitizer recording: races, hazards, OOB, and
//!    uninitialized reads found on real serving traffic are counted into
//!    [`ServiceMetrics`], and a flush whose kernel trips an error-severity
//!    diagnostic is re-solved on the CPU GEP path rather than trusted.
//! 5. **Device faults are retried, then degraded — never surfaced.** A
//!    transient [`TridiagError::DeviceFault`] re-dispatches the same
//!    engine with exponential backoff (up to
//!    [`DispatchConfig::max_attempts_per_engine`]); an engine that keeps
//!    faulting is excluded and the next-best candidate from the autotune
//!    ranking takes over; [`TridiagError::DeviceLost`] or exhausting
//!    [`DispatchConfig::max_total_attempts`] demotes the flush to the CPU
//!    GEP safety net. An engine's per-engine **circuit breaker**
//!    (see [`CircuitBreakers`]) short-circuits this ladder while the
//!    engine is known-bad, re-probing it after a cooldown. Every retry,
//!    fault, and degradation is counted into the metrics — degradation is
//!    observable, never silent.

use crate::batcher::FlushedBatch;
use crate::breaker::{Admission, CircuitBreakers};
use crate::metrics::ServiceMetrics;
use crate::planner::{CpuEngine, Engine, PlanCache};
use crate::request::SolveRequest;
use crate::trace::{TraceEvent, TraceHandle};
use cpu_solvers::{gep, thomas};
use device_pool::DevicePool;
use factor_cache::{FactorCache, FactorEntry, SharedFactorCache};
use gpu_sim::{tick_duration, Clock, Launcher};
use gpu_solvers::{solve_batch_robust, GpuAlgorithm, RobustOptions};
use kernel_verify::VerifiedCatalog;
use numeric_verify::{CertifiedCatalog, VerifyDecision};
use std::sync::Arc;
use std::time::Duration;
use tridiag_core::residual::l2_residual;
use tridiag_core::{
    MatrixKey, NumericCertificate, Real, SolutionBatch, SystemBatch, TridiagError,
    TridiagonalSystem,
};

/// Dispatch-time knobs (a copy of the relevant service config).
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// Flushes smaller than this run on the CPU regardless of plan.
    pub min_gpu_batch: usize,
    /// Residual acceptance scale (see [`RobustOptions::threshold_scale`]).
    pub threshold_scale: f64,
    /// Probe batch size used when a plan-cache miss triggers autotune.
    pub probe_count: usize,
    /// When set, bypass the planner *and* the small-flush CPU override and
    /// run every batch on this engine (benchmarking / A-B testing knob).
    /// Verification and GEP repair still apply.
    pub pin_engine: Option<Engine>,
    /// Run the first GPU flush of each plan-cache size class with the
    /// kernel sanitizer recording (admission-time correctness check on
    /// real traffic; later flushes of the same class run unsanitized).
    pub sanitize_first_flush: bool,
    /// Static proof catalog consulted by the first-flush decision. A size
    /// class whose planned kernel the catalog proves race/OOB/barrier-safe
    /// for its whole family skips the sanitized launch (the skip is
    /// counted in `MetricsSnapshot::proof_skipped_sanitizes`); `Unproven`
    /// and `Violated` verdicts keep the dynamic sanitizer in charge.
    /// `None` (the default) sanitizes every first flush dynamically.
    pub verified: Option<Arc<VerifiedCatalog>>,
    /// Factorization cache for the warm serving tier. When set, a flush
    /// whose requests all carry the same matrix key is served from the
    /// cached elimination coefficients — back-substitution only, no
    /// elimination — with a miss factoring the matrix once and falling
    /// through to the cold path. `None` (the default) disables the warm
    /// tier entirely; every existing dispatch decision is unchanged.
    pub factor_cache: Option<Arc<SharedFactorCache>>,
    /// Numerical-safety certificate catalog. When set, a keyed flush is
    /// statically analyzed once per matrix identity; certified matrices
    /// downgrade the per-answer residual verify to deterministic 1-in-K
    /// *sampled* verification (skipped answers keep the NaN/Inf guard and
    /// report the certificate's a-priori forward-error bound), and a
    /// corruption caught on any verified flush revokes the certificate.
    /// `None` (the default) keeps full verification everywhere.
    pub certified: Option<Arc<CertifiedCatalog>>,
    /// How many times one engine is tried per flush before it is excluded
    /// (first attempt + retries). Transient device faults between attempts
    /// back off exponentially.
    pub max_attempts_per_engine: usize,
    /// Total engine dispatch attempts per flush across all candidates;
    /// exhausting this demotes the flush to the CPU GEP safety net.
    pub max_total_attempts: usize,
    /// First retry backoff; doubles per subsequent attempt (plus a small
    /// deterministic jitter so colliding workers de-synchronize).
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// The clock retry backoffs sleep on and latencies are measured with.
    /// Under a simulated clock backoffs advance virtual time instead of
    /// parking, and CPU engine time comes from a deterministic cost model
    /// instead of the wall — the whole dispatch becomes replayable.
    pub clock: Clock,
    /// Decision trace sink (disabled by default).
    pub trace: TraceHandle,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        Self {
            min_gpu_batch: 4,
            threshold_scale: 100.0,
            probe_count: 16,
            pin_engine: None,
            sanitize_first_flush: true,
            verified: None,
            factor_cache: None,
            certified: None,
            max_attempts_per_engine: 2,
            max_total_attempts: 4,
            backoff_base: Duration::from_micros(50),
            backoff_max: Duration::from_millis(2),
            clock: Clock::real(),
            trace: TraceHandle::disabled(),
        }
    }
}

/// The device a flush is served on: its launcher, its pool identity, and
/// (when the service runs on a multi-device pool) a handle back to the
/// pool so dispatch can mark the device lost and account its busy time.
///
/// Breaker keys are **per device**: engine `cr+pcr@32` on device 2 keys
/// breaker `dev2:cr+pcr@32`, so a sticky fault on one device opens only
/// that device's breakers — traffic re-routes instead of the whole
/// service demoting to the CPU.
#[derive(Debug, Clone, Copy)]
pub struct DeviceCtx<'a> {
    /// The launcher executing this flush's kernels.
    pub launcher: &'a Launcher,
    /// Pool id of the device (0 for a solo launcher).
    pub device_id: usize,
    /// The pool the device belongs to, if any. `None` for direct callers
    /// (tests, benches) running a standalone launcher.
    pub pool: Option<&'a DevicePool>,
}

impl<'a> DeviceCtx<'a> {
    /// Wraps a standalone launcher as device 0 with no pool attached.
    pub fn solo(launcher: &'a Launcher) -> Self {
        Self { launcher, device_id: 0, pool: None }
    }

    /// The per-device breaker key for `engine_label`.
    fn breaker_key(&self, engine_label: &str) -> String {
        format!("dev{}:{engine_label}", self.device_id)
    }

    /// Marks this device lost in its pool (no-op for solo devices).
    fn mark_lost(&self) {
        if let Some(pool) = self.pool {
            pool.mark_lost(self.device_id);
        }
    }

    /// Accounts one served flush's simulated busy time to this device.
    fn note_dispatched(&self, engine_ms: f64) {
        if let Some(pool) = self.pool {
            pool.device(self.device_id).note_dispatched(engine_ms);
        }
    }
}

/// Serves one flushed batch end to end: plan → execute → verify/repair →
/// fulfil tickets → record metrics. Infallible by design: any engine
/// error degrades to the per-system GEP path rather than dropping
/// requests.
pub fn serve_flush<T: Real>(
    device: DeviceCtx<'_>,
    plans: &PlanCache,
    breakers: &CircuitBreakers,
    metrics: &ServiceMetrics,
    cfg: &DispatchConfig,
    flush: FlushedBatch<T>,
) {
    let launcher = device.launcher;
    let FlushedBatch { n, requests, reason } = flush;
    let occupancy = requests.len();
    debug_assert!(occupancy > 0, "empty flush");

    // Certification: a keyed flush consults the certificate catalog
    // first. The matrix is statically analyzed exactly once per key;
    // thereafter the catalog's deterministic 1-in-K policy decides how
    // much verification this flush pays. Unkeyed flushes (and any flush
    // without a catalog) keep full verification.
    let matrix_key = (cfg.factor_cache.is_some() || cfg.certified.is_some())
        .then(|| shared_matrix_key(&requests))
        .flatten();
    let mut policy = VerifyPolicy::full(cfg.threshold_scale);
    let mut certificate = NumericCertificate::Uncertified;
    if let (Some(catalog), Some(key)) = (&cfg.certified, matrix_key) {
        let obs = catalog.observe(key, &requests[0].system);
        if obs.newly_analyzed {
            metrics.on_condest_calls(obs.condest_calls);
            if obs.certificate.is_certified() {
                metrics.on_cert_issued();
            }
            cfg.trace.emit(|| TraceEvent::CertIssued {
                at: cfg.clock.now(),
                key: key.fingerprint(),
                cert: obs.certificate.name().to_string(),
            });
        }
        certificate = obs.certificate;
        match obs.decision {
            VerifyDecision::Full => {}
            VerifyDecision::Sampled => {
                metrics.on_cert_sampled_verify();
                policy = VerifyPolicy {
                    decision: VerifyDecision::Sampled,
                    // Condition-informed acceptance (the condest wiring):
                    // a certified-but-worse-conditioned matrix widens its
                    // sampled-verify threshold instead of tripping false
                    // corruption alarms.
                    threshold_scale: RobustOptions::scaled_by_condition(
                        cfg.threshold_scale,
                        obs.kappa1,
                    )
                    .threshold_scale,
                    forward_error_bound: obs.forward_error_bound,
                };
            }
            VerifyDecision::Skip => {
                metrics.on_cert_skipped_verify();
                cfg.trace.emit(|| TraceEvent::CertSkipVerify {
                    at: cfg.clock.now(),
                    key: key.fingerprint(),
                    n: n as u64,
                });
                policy = VerifyPolicy {
                    decision: VerifyDecision::Skip,
                    threshold_scale: cfg.threshold_scale,
                    forward_error_bound: obs.forward_error_bound,
                };
            }
        }
    }

    // Warm tier: a keyed flush (every member shares one matrix identity)
    // checks the factorization cache first. A hit skips planning *and*
    // elimination — the batch is served by back-substitution alone; a
    // miss factors the matrix for next time and falls through cold.
    let mut warm_outcome: Option<Outcome<T>> = None;
    if let Some(shared) = &cfg.factor_cache {
        if let Some(key) = matrix_key {
            let cache = shared.of::<T>();
            match cache.lookup(&key) {
                Some(entry) => {
                    cfg.trace.emit(|| TraceEvent::FactorHit {
                        at: cfg.clock.now(),
                        key: key.fingerprint(),
                        n: n as u64,
                    });
                    metrics.on_factor_hit();
                    warm_outcome = Some(warm_execute(
                        &device, &cache, &key, &entry, &requests, cfg, metrics, &policy,
                    ));
                    metrics.on_warm_flush();
                }
                None => {
                    cfg.trace.emit(|| TraceEvent::FactorMiss {
                        at: cfg.clock.now(),
                        key: key.fingerprint(),
                        n: n as u64,
                    });
                    metrics.on_factor_miss();
                    let sys = &requests[0].system;
                    // Unfactorable matrices (zero pivot, non-finite) are
                    // simply not cached; the cold path's verify/repair
                    // machinery owns them. The entry carries the matrix's
                    // certificate so warm hits stay certificate-aware.
                    if let Ok((_, evicted)) = cache.factor_and_insert_with_certificate(
                        key,
                        &sys.a,
                        &sys.b,
                        &sys.c,
                        certificate,
                    ) {
                        metrics.on_factor_evictions(evicted.len() as u64);
                        for fp in evicted {
                            cfg.trace
                                .emit(|| TraceEvent::FactorEvict { at: cfg.clock.now(), key: fp });
                        }
                    }
                }
            }
        }
    }

    let outcome = if let Some(outcome) = warm_outcome {
        outcome
    } else {
        // Pinned engine wins outright; otherwise sub-critical flushes skip
        // planning entirely (they go to the CPU, and tuning a size class
        // the GPU may never see would waste the tournament).
        let engine = match cfg.pin_engine {
            Some(engine) => engine,
            None if occupancy < cfg.min_gpu_batch => Engine::Cpu(CpuEngine::Thomas),
            None => plans.plan_for_on::<T>(launcher, n, cfg.probe_count, &cfg.clock).engine,
        };
        cfg.trace.emit(|| TraceEvent::Plan {
            at: cfg.clock.now(),
            n: n as u64,
            occupancy: occupancy as u64,
            engine: engine.to_string(),
        });

        // Retry ladder: when the planned engine keeps faulting, the
        // dispatcher walks the autotune ranking to the next-best GPU
        // candidate. A pinned engine has no ladder — the pin is an
        // explicit override.
        let fallbacks: Vec<Engine> = match (cfg.pin_engine, engine) {
            (None, Engine::Gpu(_)) => {
                plans.ranking_for_on::<T>(launcher, n, cfg.probe_count, &cfg.clock)
            }
            _ => Vec::new(),
        };

        // First GPU flush of this size class? One decision point: claim
        // the one-time token and either run the dynamic sanitizer or let
        // a static proof stand in for it.
        let sanitize = match sanitize_decision::<T>(cfg, plans, launcher, engine, n) {
            SanitizeDecision::Dynamic => true,
            SanitizeDecision::ProofSkipped => {
                metrics.on_sanitize_skipped_by_proof();
                false
            }
            SanitizeDecision::NotApplicable => false,
        };

        let systems: Vec<TridiagonalSystem<T>> =
            requests.iter().map(|r| r.system.clone()).collect();
        execute(&device, engine, &fallbacks, breakers, &systems, cfg, sanitize, &policy)
    };

    // A corruption caught while serving a certified key revokes its
    // certificate: sampled verification did its job, and the key returns
    // to full per-answer verification for the life of the process.
    if outcome.corruptions > 0 && certificate.is_certified() {
        if let (Some(catalog), Some(key)) = (&cfg.certified, matrix_key) {
            if catalog.revoke(&key) {
                metrics.on_cert_revoked();
                cfg.trace.emit(|| TraceEvent::CertRevoked {
                    at: cfg.clock.now(),
                    key: key.fingerprint(),
                });
            }
        }
    }

    // Per-device accounting: GPU-served flushes accrue simulated busy time
    // on the device that ran them (CPU-demoted flushes cost the device
    // nothing).
    if !outcome.engine_label.starts_with("cpu") {
        device.note_dispatched(outcome.engine_ms);
    }

    if let Some((errors, warnings)) = outcome.sanitizer_findings {
        metrics.on_flush_sanitized(errors, warnings);
    }
    metrics.on_batch_served(
        &outcome.engine_label,
        occupancy,
        reason,
        outcome.repairs,
        outcome.engine_ms,
    );
    metrics.on_degradation(
        outcome.retries,
        outcome.device_faults,
        outcome.corruptions,
        outcome.degraded,
    );

    // Charge the engine's time to the service clock: on the real clock
    // the wall already paid it (no-op); on a simulated clock this is what
    // turns modeled device/CPU milliseconds into observed latency.
    cfg.clock.work(Duration::from_secs_f64(outcome.engine_ms.max(0.0) / 1e3));
    let engine_ns = (outcome.engine_ms.max(0.0) * 1e6).round() as u64;
    cfg.trace.emit(|| TraceEvent::Served {
        at: cfg.clock.now(),
        n: n as u64,
        occupancy: occupancy as u64,
        engine: outcome.engine_label.clone(),
        reason,
        engine_ns,
        repairs: outcome.repairs as u64,
        degraded: outcome.degraded,
    });

    let now = cfg.clock.now();
    for (i, request) in requests.into_iter().enumerate() {
        let latency = tick_duration(request.submitted_at, now);
        let deadline_missed = request.deadline.is_some_and(|d| now > d);
        if deadline_missed {
            metrics.on_deadline_miss();
        }
        let id = request.id;
        request.fulfil(crate::request::SolveResponse {
            id,
            x: outcome.solutions.system(i).to_vec(),
            residual: outcome.residuals[i],
            engine: outcome.engine_label.clone(),
            repaired: outcome.repaired_flags[i],
            batch_occupancy: occupancy,
            latency,
            deadline_missed,
        });
        metrics.on_complete(latency);
    }
}

/// What the admission check does with one flush — the single point of
/// truth for the first-flush sanitize policy (previously duplicated
/// between the token claim and the launch-path condition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SanitizeDecision {
    /// First GPU flush of its size class, no proof on file: run it under
    /// the dynamic kernel sanitizer.
    Dynamic,
    /// First GPU flush of its size class, but the proof catalog proves
    /// the planned kernel safe for the whole family: skip the sanitized
    /// launch. The one-time token is still consumed, so the skip is
    /// counted exactly once per size class.
    ProofSkipped,
    /// Not a first GPU flush (CPU engine, sanitizing disabled, or the
    /// size class was already checked).
    NotApplicable,
}

/// Decides the admission-time sanitize for one flush of size `n` planned
/// on `engine`. Claims the size class's one-time token for *both* the
/// dynamic and the proof-skipped outcome — a proof replaces the sanitize,
/// it does not defer it to the next flush.
fn sanitize_decision<T: Real>(
    cfg: &DispatchConfig,
    plans: &PlanCache,
    launcher: &Launcher,
    engine: Engine,
    n: usize,
) -> SanitizeDecision {
    let Engine::Gpu(alg) = engine else {
        return SanitizeDecision::NotApplicable;
    };
    if !cfg.sanitize_first_flush || !plans.begin_sanitize::<T>(launcher, n) {
        return SanitizeDecision::NotApplicable;
    }
    match &cfg.verified {
        Some(catalog) if catalog.is_proven::<T>(&launcher.device, alg, n) => {
            SanitizeDecision::ProofSkipped
        }
        _ => SanitizeDecision::Dynamic,
    }
}

/// How much verification one flush pays, resolved once per flush from the
/// certified catalog (defaulting to full verification for unkeyed or
/// uncertified traffic).
#[derive(Debug, Clone, Copy)]
struct VerifyPolicy {
    decision: VerifyDecision,
    /// Acceptance scale for verified flushes (condition-informed on
    /// `Sampled` flushes of certified keys).
    threshold_scale: f64,
    /// The certificate's a-priori forward-error bound, reported in place
    /// of a measured residual on `Skip` flushes.
    forward_error_bound: f64,
}

impl VerifyPolicy {
    fn full(threshold_scale: f64) -> Self {
        VerifyPolicy {
            decision: VerifyDecision::Full,
            threshold_scale,
            forward_error_bound: f64::INFINITY,
        }
    }

    fn skips(&self) -> bool {
        self.decision == VerifyDecision::Skip
    }
}

struct Outcome<T: Real> {
    solutions: SolutionBatch<T>,
    residuals: Vec<f64>,
    repaired_flags: Vec<bool>,
    repairs: usize,
    engine_label: String,
    /// Simulated device ms (GPU) or measured wall-clock ms (CPU).
    engine_ms: f64,
    /// `(error_sites, warning_sites)` when the flush ran under the
    /// sanitizer; `None` for unsanitized flushes and CPU engines.
    sanitizer_findings: Option<(u64, u64)>,
    /// Engine dispatch attempts beyond the first (fault recoveries).
    retries: u64,
    /// Device faults observed while serving this flush.
    device_faults: u64,
    /// Memory corruptions the verify step caught (and GEP repaired).
    corruptions: u64,
    /// `true` when the final answer came from an engine other than the
    /// planned one (breaker denial, retry exhaustion, or device loss).
    degraded: bool,
}

/// Deterministic exponential backoff with a small jitter derived from the
/// attempt index (no RNG on the dispatch path): `base · 2^(attempt−1)`,
/// capped at `max`, plus up to a quarter-`base` of de-synchronization.
fn backoff_delay(cfg: &DispatchConfig, attempt: usize) -> Duration {
    let doubled = cfg
        .backoff_base
        .checked_mul(1u32 << (attempt.saturating_sub(1)).min(10) as u32)
        .unwrap_or(cfg.backoff_max);
    let jitter_us =
        (attempt as u64).wrapping_mul(7919) % (cfg.backoff_base.as_micros().max(4) as u64 / 4 + 1);
    doubled.min(cfg.backoff_max) + Duration::from_micros(jitter_us)
}

/// Runs `systems` on `engine`, verifying and repairing every solution.
///
/// * With `sanitize` set, the first GPU attempt runs with the kernel
///   sanitizer recording; error-severity findings demote the flush to the
///   CPU GEP safety net (an unsound kernel's answers are not trusted,
///   even if their residuals happen to pass).
/// * GPU engines sit behind their circuit breaker: a denied engine is
///   skipped, a cooled-down one gets a half-open probe whose outcome is
///   reported back.
/// * Transient device faults retry the same engine with backoff, then
///   walk `fallbacks` (the autotune ranking) to the next-best GPU
///   candidate; device loss or attempt exhaustion lands on the CPU GEP
///   safety net. The flush is **never** dropped.
#[allow(clippy::too_many_arguments)] // internal dispatch plumbing; grouping would add a one-use struct
fn execute<T: Real>(
    device: &DeviceCtx<'_>,
    engine: Engine,
    fallbacks: &[Engine],
    breakers: &CircuitBreakers,
    systems: &[TridiagonalSystem<T>],
    cfg: &DispatchConfig,
    sanitize: bool,
    policy: &VerifyPolicy,
) -> Outcome<T> {
    let launcher = device.launcher;
    let batch = SystemBatch::from_systems(systems).expect("flush holds >=1 same-size systems");
    let threshold_scale = policy.threshold_scale;
    // Degraded paths (sanitizer demotion, the GEP safety net) always pay
    // full verification regardless of certificates — a degraded flush has
    // already shown evidence that static assumptions may not hold.
    let full_policy = VerifyPolicy::full(cfg.threshold_scale);
    let first = match engine {
        Engine::Cpu(cpu) => return cpu_execute(systems, &batch, cpu, policy, &cfg.clock),
        Engine::Gpu(alg) => alg,
    };

    // The candidate ladder: planned engine first, then every lower-ranked
    // GPU candidate from the tournament (CPU entries are implicit — the
    // ladder always ends at the GEP safety net below).
    let mut candidates: Vec<GpuAlgorithm> = vec![first];
    candidates.extend(fallbacks.iter().filter_map(|e| match e {
        Engine::Gpu(alg) if *alg != first => Some(*alg),
        _ => None,
    }));

    let mut retries = 0u64;
    let mut device_faults = 0u64;
    let mut total_attempts = 0usize;

    'ladder: for (rank, alg) in candidates.iter().enumerate() {
        let gpu_engine = Engine::Gpu(*alg);
        let label = gpu_engine.to_string();
        let key = device.breaker_key(&label);
        match breakers.admit(&key) {
            Admission::Deny => continue 'ladder, // known-bad: next candidate
            Admission::Allow | Admission::Probe => {}
        }
        let mut engine_attempts = 0usize;
        while engine_attempts < cfg.max_attempts_per_engine
            && total_attempts < cfg.max_total_attempts
        {
            engine_attempts += 1;
            total_attempts += 1;
            if total_attempts > 1 {
                retries += 1;
                // Backoff on the service clock: parks for real, advances
                // virtual time under a simulated clock.
                cfg.clock.sleep(backoff_delay(cfg, total_attempts - 1));
                cfg.trace.emit(|| TraceEvent::Retry {
                    at: cfg.clock.now(),
                    attempt: total_attempts as u64,
                });
            }
            // Sanitize exactly one kernel run: the very first attempt.
            let sanitize_this = sanitize && total_attempts == 1;
            let sanitizing_launcher;
            let attempt_launcher = if sanitize_this {
                sanitizing_launcher =
                    launcher.clone().with_sanitize(gpu_sim::SanitizeOptions::record());
                &sanitizing_launcher
            } else {
                launcher
            };
            let options = RobustOptions { threshold_scale, skip_residual_verify: policy.skips() };
            match solve_batch_robust(attempt_launcher, *alg, &batch, options) {
                Ok(report) => {
                    breakers.on_success(&key);
                    let findings = sanitize_this.then(|| {
                        (
                            report.gpu.sanitizer_error_count() as u64,
                            report.gpu.sanitizer_warning_count() as u64,
                        )
                    });
                    if let Some((errors, _)) = findings {
                        if errors > 0 {
                            // The kernel is unsound on this traffic: fall
                            // back to the CPU rather than serve its output.
                            let mut out = cpu_execute(
                                systems,
                                &batch,
                                CpuEngine::Gep,
                                &full_policy,
                                &cfg.clock,
                            );
                            out.sanitizer_findings = findings;
                            out.retries = retries;
                            out.device_faults = device_faults;
                            out.degraded = true;
                            return out;
                        }
                    }
                    let mut repaired_flags = vec![false; systems.len()];
                    for repair in &report.repaired {
                        repaired_flags[repair.system] = true;
                    }
                    // Skipped flushes report the certificate's a-priori
                    // bound instead of paying the O(n) residual read-back
                    // (repaired systems report their measured residual).
                    let residuals = if policy.skips() {
                        let mut rs = vec![policy.forward_error_bound; systems.len()];
                        for repair in &report.repaired {
                            rs[repair.system] = repair.final_residual;
                        }
                        rs
                    } else {
                        residuals_of(systems, &report.gpu.solutions)
                    };
                    let engine_ms = report.gpu.timing.total_ms();
                    let corruptions = report.gpu.corruption_count() as u64;
                    return Outcome {
                        solutions: report.gpu.solutions,
                        residuals,
                        repairs: report.repaired.len(),
                        repaired_flags,
                        engine_label: label,
                        engine_ms,
                        sanitizer_findings: findings,
                        retries,
                        device_faults,
                        corruptions,
                        degraded: rank > 0,
                    };
                }
                Err(e) if e.is_device_fault() => {
                    device_faults += 1;
                    let lost = matches!(e, TridiagError::DeviceLost);
                    cfg.trace.emit(|| TraceEvent::Fault { at: cfg.clock.now(), lost });
                    if lost {
                        // The whole device is gone: no GPU candidate on
                        // *this* device can serve the flush. Trip the
                        // breaker straight open, mark the device lost in
                        // its pool (the worker drains and re-routes its
                        // queue), and take the CPU safety net for this
                        // flush.
                        breakers.trip(&key);
                        device.mark_lost();
                        break 'ladder;
                    }
                    breakers.on_fault(&key);
                    // Transient: loop retries this engine (with backoff)
                    // until its per-engine budget runs out, then the
                    // ladder moves to the next candidate.
                }
                // Launch-configuration failure (e.g. a device swap made the
                // cached plan illegal): retrying cannot help this engine.
                Err(_) => break 'ladder,
            }
        }
        if total_attempts >= cfg.max_total_attempts {
            break 'ladder;
        }
    }

    // Every GPU avenue is exhausted (or denied): the pivoted CPU safety
    // net serves the flush. This is the graceful-degradation terminal —
    // correct answers, observable cost.
    let mut out = cpu_execute(systems, &batch, CpuEngine::Gep, &full_policy, &cfg.clock);
    out.retries = retries;
    out.device_faults = device_faults;
    out.degraded = true;
    out
}

/// Deterministic CPU engine-time model for simulated clocks, in integer
/// nanoseconds: a fixed per-row cost per engine (GEP pays pivot-search
/// and row-swap overhead on top of the elimination sweep). The constants
/// are order-of-magnitude calibrations of the real solvers; what matters
/// for replay is that the value is a pure function of `(engine, n,
/// count)` — never of the wall.
pub(crate) fn sim_cpu_ns(cpu: CpuEngine, n: usize, count: usize) -> u64 {
    let per_row: u64 = match cpu {
        CpuEngine::Thomas => 25,
        CpuEngine::Gep => 70,
    };
    (n as u64).saturating_mul(count as u64).saturating_mul(per_row)
}

/// Simulated-clock share of the per-row engine cost that pays for the
/// per-answer residual verify (`||Ax − d||` read-back + reduction). A
/// certificate-backed `Skip` flush subtracts this discount from the
/// engine constants above, which are calibrated *with* verification
/// included — existing baselines are untouched, and the certified fast
/// path's measured win is exactly the verify it no longer performs.
pub(crate) const SIM_VERIFY_NS_PER_ROW: u64 = 7;

/// Simulated-clock cost of a warm CPU back-substitution, in integer
/// nanoseconds: 16 ns/row against Thomas's 25 — the `5n`-vs-`8n` flop
/// ratio of substitution-only against eliminate-and-substitute, on the
/// same calibration scale as [`sim_cpu_ns`].
pub(crate) fn sim_cpu_warm_ns(n: usize, count: usize) -> u64 {
    (n as u64).saturating_mul(count as u64).saturating_mul(16)
}

/// The matrix key shared by *every* request in the flush, or `None` when
/// any member is unkeyed or keys disagree (the batcher groups by key
/// fingerprint, so disagreement means a fingerprint collision — rare, and
/// safely served cold).
fn shared_matrix_key<T: Real>(requests: &[SolveRequest<T>]) -> Option<MatrixKey> {
    let first = requests.first()?.matrix_key?;
    requests.iter().all(|r| r.matrix_key == Some(first)).then_some(first)
}

/// Serves one keyed flush from a cached factorization: GPU warm kernel
/// when the batch clears `min_gpu_batch` (falling back to the CPU sweep
/// on a device fault), CPU sweep otherwise. Every solution passes the
/// same residual acceptance test as the cold path — unless the key holds
/// a live [`NumericCertificate`] and the catalog's sampled-verification
/// policy says `Skip`, in which case only the NaN/Inf guard runs and the
/// reported residual is the certificate's a-priori forward-error bound.
/// A failure — a corrupted launch, or a stale/poisoned factorization —
/// is repaired per-system with GEP and **invalidates the cache entry**,
/// so the next flush refactors from scratch rather than re-trusting bad
/// coefficients.
#[allow(clippy::too_many_arguments)] // internal dispatch plumbing; grouping would add a one-use struct
fn warm_execute<T: Real>(
    device: &DeviceCtx<'_>,
    cache: &FactorCache<T>,
    key: &MatrixKey,
    entry: &FactorEntry<T>,
    requests: &[SolveRequest<T>],
    cfg: &DispatchConfig,
    metrics: &ServiceMetrics,
    policy: &VerifyPolicy,
) -> Outcome<T> {
    let n = entry.thomas.n();
    let count = requests.len();
    let mut device_faults = 0u64;
    let mut gpu_degraded = false;
    let started = std::time::Instant::now();

    // GPU attempt: one batched back-substitution launch. Faults fall back
    // to the CPU sweep below — warm flushes never ride the retry ladder
    // (there is no elimination to re-run; the substitution is cheap enough
    // that the CPU fallback is the faster recovery).
    let mut gpu_result: Option<(SolutionBatch<T>, f64)> = None;
    if count >= cfg.min_gpu_batch {
        let rhs: Vec<&[T]> = requests.iter().map(|r| r.system.d.as_slice()).collect();
        match gpu_solvers::solve_batch_warm(device.launcher, &entry.thomas, &rhs) {
            Ok(report) => {
                let ms = report.timing.total_ms();
                gpu_result = Some((report.solutions, ms));
            }
            Err(e) if e.is_device_fault() => {
                device_faults += 1;
                gpu_degraded = true;
                let lost = matches!(e, TridiagError::DeviceLost);
                cfg.trace.emit(|| TraceEvent::Fault { at: cfg.clock.now(), lost });
                if lost {
                    device.mark_lost();
                }
            }
            Err(_) => gpu_degraded = true,
        }
    }

    let (mut solutions, engine_ms, engine_label) = match gpu_result {
        Some((solutions, ms)) => (solutions, ms, "warm-gpu".to_string()),
        None => {
            let mut solutions = SolutionBatch::from_flat(n, count, vec![T::ZERO; n * count])
                .expect("flush holds >=1 same-size systems");
            for (i, req) in requests.iter().enumerate() {
                entry.thomas.solve_into(&req.system.d, solutions.system_mut(i));
            }
            let skip = policy.skips() && entry.certificate.is_certified();
            let ms = if cfg.clock.is_sim() {
                let discount = if skip {
                    (n as u64).saturating_mul(count as u64).saturating_mul(SIM_VERIFY_NS_PER_ROW)
                } else {
                    0
                };
                sim_cpu_warm_ns(n, count).saturating_sub(discount) as f64 / 1e6
            } else {
                started.elapsed().as_secs_f64() * 1e3
            };
            (solutions, ms, "cpu-warm".to_string())
        }
    };

    // Same acceptance rule as the cold paths — unless a certificate
    // licenses skipping the residual read; the NaN/Inf guard is never
    // skipped. Failures additionally condemn the cached factorization.
    let skip_verify = policy.skips() && entry.certificate.is_certified();
    let eps = T::EPSILON.to_f64();
    let mut residuals = vec![0.0f64; count];
    let mut repaired_flags = vec![false; count];
    let mut repairs = 0usize;
    let mut corruptions = 0u64;
    for (i, req) in requests.iter().enumerate() {
        let sys = &req.system;
        let x = solutions.system_mut(i);
        let finite = x.iter().all(|v| v.is_finite());
        let accepted = if skip_verify {
            finite
        } else {
            let d_norm: f64 =
                sys.d.iter().map(|&v| v.to_f64() * v.to_f64()).sum::<f64>().sqrt().max(1e-30);
            let threshold = policy.threshold_scale * d_norm * eps * n as f64;
            finite && l2_residual(sys, x).map(|r| r <= threshold).unwrap_or(false)
        };
        if !accepted {
            let _ = gep::solve_into(&sys.a, &sys.b, &sys.c, &sys.d, x);
            repaired_flags[i] = true;
            repairs += 1;
            corruptions += 1;
        }
        residuals[i] = if skip_verify && !repaired_flags[i] {
            policy.forward_error_bound
        } else {
            l2_residual(sys, x).unwrap_or(f64::INFINITY)
        };
    }
    if corruptions > 0 && cache.invalidate(key) {
        metrics.on_factor_evictions(1);
        cfg.trace.emit(|| TraceEvent::FactorEvict { at: cfg.clock.now(), key: key.fingerprint() });
    }

    Outcome {
        solutions,
        residuals,
        repairs,
        repaired_flags,
        engine_label,
        engine_ms,
        sanitizer_findings: None,
        retries: 0,
        device_faults,
        corruptions,
        degraded: gpu_degraded,
    }
}

/// CPU path with the same acceptance rule as `solve_batch_robust`: accept
/// when `||Ax − d||₂ ≤ scale · ||d||₂ · ε · n`, otherwise re-solve with
/// partial pivoting. A `Skip` policy drops the residual read (NaN/Inf
/// guard only) and reports the certificate's forward-error bound. Engine
/// time is measured off the wall on a real clock and modeled by
/// [`sim_cpu_ns`] (minus the [`SIM_VERIFY_NS_PER_ROW`] discount when
/// skipping) on a simulated one.
fn cpu_execute<T: Real>(
    systems: &[TridiagonalSystem<T>],
    batch: &SystemBatch<T>,
    cpu: CpuEngine,
    policy: &VerifyPolicy,
    clock: &Clock,
) -> Outcome<T> {
    let n = batch.n();
    let eps = T::EPSILON.to_f64();
    let skip_verify = policy.skips();
    let mut solutions = SolutionBatch::zeros_like(batch);
    let mut residuals = vec![0.0f64; systems.len()];
    let mut repaired_flags = vec![false; systems.len()];
    let mut repairs = 0usize;
    let started = std::time::Instant::now();

    for (i, sys) in systems.iter().enumerate() {
        let x = solutions.system_mut(i);
        let primary_ok = match cpu {
            CpuEngine::Thomas => thomas::solve_into(&sys.a, &sys.b, &sys.c, &sys.d, x).is_ok(),
            CpuEngine::Gep => gep::solve_into(&sys.a, &sys.b, &sys.c, &sys.d, x).is_ok(),
        };
        let finite = x.iter().all(|v| v.is_finite());
        let accepted = if skip_verify {
            primary_ok && finite
        } else {
            let d_norm: f64 =
                sys.d.iter().map(|&v| v.to_f64() * v.to_f64()).sum::<f64>().sqrt().max(1e-30);
            let threshold = policy.threshold_scale * d_norm * eps * n as f64;
            primary_ok && finite && l2_residual(sys, x).map(|r| r <= threshold).unwrap_or(false)
        };
        if !accepted && cpu != CpuEngine::Gep {
            // Same repair path as the GPU robust wrapper.
            let _ = gep::solve_into(&sys.a, &sys.b, &sys.c, &sys.d, x);
            repaired_flags[i] = true;
            repairs += 1;
        }
        residuals[i] = if skip_verify && accepted {
            policy.forward_error_bound
        } else {
            l2_residual(sys, x).unwrap_or(f64::INFINITY)
        };
    }

    let engine_ms = if clock.is_sim() {
        let base = sim_cpu_ns(cpu, n, systems.len());
        let discount = if skip_verify {
            (n as u64).saturating_mul(systems.len() as u64).saturating_mul(SIM_VERIFY_NS_PER_ROW)
        } else {
            0
        };
        base.saturating_sub(discount) as f64 / 1e6
    } else {
        started.elapsed().as_secs_f64() * 1e3
    };
    Outcome {
        solutions,
        residuals,
        repairs,
        repaired_flags,
        engine_label: Engine::Cpu(cpu).to_string(),
        engine_ms,
        sanitizer_findings: None,
        retries: 0,
        device_faults: 0,
        corruptions: 0,
        degraded: false,
    }
}

fn residuals_of<T: Real>(
    systems: &[TridiagonalSystem<T>],
    solutions: &SolutionBatch<T>,
) -> Vec<f64> {
    systems
        .iter()
        .enumerate()
        .map(|(i, sys)| l2_residual(sys, solutions.system(i)).unwrap_or(f64::INFINITY))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::FlushReason;
    use crate::request::make_request;
    use gpu_solvers::GpuAlgorithm;
    use tridiag_core::{Generator, Workload};

    fn cfg() -> DispatchConfig {
        DispatchConfig {
            min_gpu_batch: 4,
            probe_count: 4,
            backoff_base: Duration::from_micros(10), // keep tests fast
            ..DispatchConfig::default()
        }
    }

    fn flush_of(
        n: usize,
        count: usize,
        seed: u64,
    ) -> (FlushedBatch<f32>, Vec<crate::request::Ticket<f32>>) {
        let mut generator = Generator::new(seed);
        let mut requests = Vec::new();
        let mut tickets = Vec::new();
        for i in 0..count {
            let (req, ticket) =
                make_request(i as u64, generator.system(Workload::DiagonallyDominant, n));
            requests.push(req);
            tickets.push(ticket);
        }
        (FlushedBatch { n, requests, reason: FlushReason::Full }, tickets)
    }

    #[test]
    fn served_flush_fulfils_every_ticket_accurately() {
        let launcher = Launcher::gtx280();
        let plans = PlanCache::new();
        let metrics = ServiceMetrics::new();
        let (flush, tickets) = flush_of(128, 8, 11);
        serve_flush(
            DeviceCtx::solo(&launcher),
            &plans,
            &CircuitBreakers::default(),
            &metrics,
            &cfg(),
            flush,
        );
        for (i, ticket) in tickets.into_iter().enumerate() {
            let resp = ticket.try_take().expect("synchronous serve fulfils immediately");
            assert_eq!(resp.id, i as u64);
            assert_eq!(resp.x.len(), 128);
            assert_eq!(resp.batch_occupancy, 8);
            assert!(resp.residual < 1e-2, "{}", resp.residual);
        }
        let snap = metrics.snapshot(0, plans.tunes(), plans.hits());
        assert_eq!(snap.completed, 8);
        assert_eq!(snap.dispatched_total(), 8);
        assert_eq!(snap.occupancy_total(), 8);
    }

    #[test]
    fn small_flushes_are_routed_to_the_cpu() {
        let launcher = Launcher::gtx280();
        let plans = PlanCache::new();
        let metrics = ServiceMetrics::new();
        let (flush, tickets) = flush_of(128, 2, 12); // below min_gpu_batch = 4
        serve_flush(
            DeviceCtx::solo(&launcher),
            &plans,
            &CircuitBreakers::default(),
            &metrics,
            &cfg(),
            flush,
        );
        for ticket in tickets {
            assert_eq!(ticket.try_take().unwrap().engine, "cpu-thomas");
        }
    }

    #[test]
    fn zero_pivot_systems_are_repaired_on_the_cpu_path() {
        let launcher = Launcher::gtx280();
        let plans = PlanCache::new();
        let metrics = ServiceMetrics::new();
        let mut generator = Generator::new(13);
        let mut bad: TridiagonalSystem<f32> = generator.system(Workload::DiagonallyDominant, 64);
        bad.b[0] = 0.0; // Thomas dies, GEP interchanges rows
        let (req, ticket) = make_request(0, bad);
        let flush = FlushedBatch { n: 64, requests: vec![req], reason: FlushReason::Linger };
        serve_flush(
            DeviceCtx::solo(&launcher),
            &plans,
            &CircuitBreakers::default(),
            &metrics,
            &cfg(),
            flush,
        );
        let resp = ticket.try_take().unwrap();
        assert!(resp.repaired, "zero pivot must trigger GEP repair");
        assert!(resp.residual < 1e-2, "{}", resp.residual);
        assert_eq!(metrics.snapshot(0, 0, 0).repaired, 1);
    }

    #[test]
    fn pinned_engine_overrides_planner_and_small_flush_rule() {
        let launcher = Launcher::gtx280();
        let plans = PlanCache::new();
        let metrics = ServiceMetrics::new();
        let (flush, tickets) = flush_of(128, 2, 14); // small flush...
        let pinned = DispatchConfig {
            pin_engine: Some(Engine::Gpu(GpuAlgorithm::CrPcr { m: 32 })),
            ..cfg()
        };
        serve_flush(
            DeviceCtx::solo(&launcher),
            &plans,
            &CircuitBreakers::default(),
            &metrics,
            &pinned,
            flush,
        );
        for ticket in tickets {
            // ...but the pin forces the GPU engine anyway.
            assert_eq!(ticket.try_take().unwrap().engine, "cr+pcr@32");
        }
        assert_eq!(plans.tunes(), 0, "pinning must not trigger autotune");
        let snap = metrics.snapshot(0, 0, 0);
        assert!(snap.engine_ms["cr+pcr@32"] > 0.0, "simulated device ms recorded");
    }

    #[test]
    fn gpu_path_verifies_and_repairs_via_robust_wrapper() {
        // Force a GPU plan by seeding the cache artificially through a
        // large flush on a size where GPU wins is not guaranteed; instead
        // exercise `execute` directly with a known-overflowing engine.
        let launcher = Launcher::gtx280();
        let systems: Vec<TridiagonalSystem<f32>> = {
            let mut generator = Generator::new(2);
            (0..8).map(|_| generator.system(Workload::DiagonallyDominant, 512)).collect()
        };
        // Plain RD overflows at n = 512 on dominant systems (Figure 18);
        // the robust wrapper must hand back repaired, accurate answers.
        let out = execute(
            &DeviceCtx::solo(&launcher),
            Engine::Gpu(GpuAlgorithm::Rd(gpu_solvers::RdMode::Plain)),
            &[],
            &CircuitBreakers::default(),
            &systems,
            &cfg(),
            false,
            &VerifyPolicy::full(100.0),
        );
        assert!(out.repairs > 0);
        assert!(out.residuals.iter().all(|&r| r.is_finite() && r < 1e-2));
    }

    #[test]
    fn first_gpu_flush_of_each_size_class_is_sanitized_once() {
        let launcher = Launcher::gtx280();
        let plans = PlanCache::new();
        let metrics = ServiceMetrics::new();
        // Pin a GPU engine so the routing is deterministic.
        let pinned = DispatchConfig {
            pin_engine: Some(Engine::Gpu(GpuAlgorithm::CrPcr { m: 32 })),
            ..cfg()
        };
        // Three flushes: two of n = 64 (only the first is sanitized), one
        // of n = 128 (a new size class, sanitized again).
        for (n, seed) in [(64usize, 21u64), (64, 22), (128, 23)] {
            let (flush, tickets) = flush_of(n, 8, seed);
            serve_flush(
                DeviceCtx::solo(&launcher),
                &plans,
                &CircuitBreakers::default(),
                &metrics,
                &pinned,
                flush,
            );
            for ticket in tickets {
                let resp = ticket.try_take().unwrap();
                assert!(resp.residual < 1e-2, "{}", resp.residual);
                // Production kernels are clean: the sanitized flush must
                // still have been served on the pinned GPU engine.
                assert_eq!(resp.engine, "cr+pcr@32");
            }
        }
        let snap = metrics.snapshot(0, 0, 0);
        assert_eq!(snap.sanitized_flushes, 2, "one per size class");
        assert_eq!(snap.sanitizer_errors, 0, "production kernels are clean");
        assert_eq!(snap.completed, 24);
    }

    #[test]
    fn sanitize_hook_is_off_when_disabled_and_for_cpu_flushes() {
        let launcher = Launcher::gtx280();
        let metrics = ServiceMetrics::new();
        // CPU-routed small flush: no kernel runs, nothing to sanitize.
        {
            let plans = PlanCache::new();
            let (flush, _tickets) = flush_of(64, 2, 31); // below min_gpu_batch
            serve_flush(
                DeviceCtx::solo(&launcher),
                &plans,
                &CircuitBreakers::default(),
                &metrics,
                &cfg(),
                flush,
            );
        }
        // GPU-pinned flush with the hook disabled.
        {
            let plans = PlanCache::new();
            let disabled = DispatchConfig {
                pin_engine: Some(Engine::Gpu(GpuAlgorithm::CrPcr { m: 32 })),
                sanitize_first_flush: false,
                ..cfg()
            };
            let (flush, _tickets) = flush_of(64, 8, 32);
            serve_flush(
                DeviceCtx::solo(&launcher),
                &plans,
                &CircuitBreakers::default(),
                &metrics,
                &disabled,
                flush,
            );
        }
        assert_eq!(metrics.snapshot(0, 0, 0).sanitized_flushes, 0);
    }

    #[test]
    fn sanitizer_errors_demote_the_flush_to_the_cpu() {
        // Drive `execute` directly with the deliberately hazardous
        // stride-one CR timing kernel's algorithm? That variant is not a
        // `GpuAlgorithm`, so instead prove the demotion contract at the
        // `Outcome` level: a clean production kernel keeps its GPU label
        // under sanitize, i.e. the demotion branch is not taken spuriously.
        let launcher = Launcher::gtx280();
        let systems: Vec<TridiagonalSystem<f32>> = {
            let mut generator = Generator::new(33);
            (0..8).map(|_| generator.system(Workload::DiagonallyDominant, 64)).collect()
        };
        let out = execute(
            &DeviceCtx::solo(&launcher),
            Engine::Gpu(GpuAlgorithm::Cr),
            &[],
            &CircuitBreakers::default(),
            &systems,
            &cfg(),
            true,
            &VerifyPolicy::full(100.0),
        );
        assert_eq!(out.engine_label, "cr");
        let (errors, _warnings) = out.sanitizer_findings.expect("sanitized flush reports findings");
        assert_eq!(errors, 0);
    }

    #[test]
    fn proven_size_classes_skip_the_first_flush_sanitize() {
        let launcher = Launcher::gtx280();
        let plans = PlanCache::new();
        let metrics = ServiceMetrics::new();
        let catalog = Arc::new(VerifiedCatalog::new());
        let pinned = DispatchConfig {
            pin_engine: Some(Engine::Gpu(GpuAlgorithm::CrPcr { m: 32 })),
            verified: Some(Arc::clone(&catalog)),
            ..cfg()
        };
        // Two flushes of n = 64: the first consumes the size class's
        // one-time token but the proof replaces the sanitized launch; the
        // second is no longer a first flush, so nothing is counted twice.
        for seed in [51u64, 52] {
            let (flush, tickets) = flush_of(64, 8, seed);
            serve_flush(
                DeviceCtx::solo(&launcher),
                &plans,
                &CircuitBreakers::default(),
                &metrics,
                &pinned,
                flush,
            );
            for ticket in tickets {
                let resp = ticket.try_take().unwrap();
                assert_eq!(resp.engine, "cr+pcr@32", "proof skip must not reroute the flush");
                assert!(resp.residual < 1e-2, "{}", resp.residual);
            }
        }
        let snap = metrics.snapshot(0, 0, 0);
        assert_eq!(snap.proof_skipped_sanitizes, 1, "one skip per size class");
        assert_eq!(snap.sanitized_flushes, 0, "the proof replaced the dynamic sanitize");
        assert_eq!(snap.sanitizer_errors, 0);
        assert!(
            catalog.is_proven::<f32>(&launcher.device, GpuAlgorithm::CrPcr { m: 32 }, 64),
            "the skip must be backed by a memoized proof"
        );
    }

    #[test]
    fn unproven_engines_keep_the_dynamic_sanitize() {
        // The per-thread Thomas kernel is the catalog's documented
        // `Unproven` boundary: even with the catalog wired in, its first
        // flush runs under the dynamic sanitizer.
        let launcher = Launcher::gtx280();
        let plans = PlanCache::new();
        let metrics = ServiceMetrics::new();
        let pinned = DispatchConfig {
            pin_engine: Some(Engine::Gpu(GpuAlgorithm::ThomasPerThread)),
            verified: Some(Arc::new(VerifiedCatalog::new())),
            ..cfg()
        };
        let (flush, tickets) = flush_of(64, 8, 53);
        serve_flush(
            DeviceCtx::solo(&launcher),
            &plans,
            &CircuitBreakers::default(),
            &metrics,
            &pinned,
            flush,
        );
        for ticket in tickets {
            let resp = ticket.try_take().unwrap();
            assert_eq!(resp.engine, "thomas-per-thread");
            assert!(resp.residual < 1e-2, "{}", resp.residual);
        }
        let snap = metrics.snapshot(0, 0, 0);
        assert_eq!(snap.sanitized_flushes, 1, "no proof → the dynamic sanitizer stays");
        assert_eq!(snap.proof_skipped_sanitizes, 0);
    }

    #[test]
    fn sanitize_decision_is_the_single_policy_point() {
        let launcher = Launcher::gtx280();
        let catalog = Arc::new(VerifiedCatalog::new());
        let with_catalog = DispatchConfig { verified: Some(Arc::clone(&catalog)), ..cfg() };
        let cpu = Engine::Cpu(CpuEngine::Thomas);
        let gpu = Engine::Gpu(GpuAlgorithm::Cr);

        // CPU engines never sanitize, and never burn the token.
        let plans = PlanCache::new();
        assert_eq!(
            sanitize_decision::<f32>(&with_catalog, &plans, &launcher, cpu, 64),
            SanitizeDecision::NotApplicable
        );
        // First GPU flush with a proof on file: skipped...
        assert_eq!(
            sanitize_decision::<f32>(&with_catalog, &plans, &launcher, gpu, 64),
            SanitizeDecision::ProofSkipped
        );
        // ...and the token is spent: the second flush is not special.
        assert_eq!(
            sanitize_decision::<f32>(&with_catalog, &plans, &launcher, gpu, 64),
            SanitizeDecision::NotApplicable
        );

        // Without a catalog the same first flush sanitizes dynamically.
        let plans = PlanCache::new();
        assert_eq!(
            sanitize_decision::<f32>(&cfg(), &plans, &launcher, gpu, 64),
            SanitizeDecision::Dynamic
        );

        // Disabled sanitizing wins over everything and leaves the token.
        let plans = PlanCache::new();
        let off = DispatchConfig { sanitize_first_flush: false, ..cfg() };
        assert_eq!(
            sanitize_decision::<f32>(&off, &plans, &launcher, gpu, 64),
            SanitizeDecision::NotApplicable
        );
        assert!(plans.begin_sanitize::<f32>(&launcher, 64), "token untouched while disabled");
    }

    // ── warm tier: factor-cache hits, misses, invalidation ───────────

    /// A keyed flush of `count` RHS against one shared matrix.
    fn keyed_flush(
        system: &TridiagonalSystem<f32>,
        count: usize,
        seed: u64,
    ) -> (FlushedBatch<f32>, Vec<crate::request::Ticket<f32>>) {
        let key = tridiag_core::MatrixKey::of_system(system);
        let n = system.n();
        let mut requests = Vec::new();
        let mut tickets = Vec::new();
        for i in 0..count {
            let mut sys = system.clone();
            sys.d =
                (0..n).map(|j| ((j as u64 * 13 + i as u64 * 7 + seed) % 19) as f32 - 9.0).collect();
            let (req, ticket) =
                crate::request::make_request_keyed(i as u64, sys, 0, None, Some(key));
            requests.push(req);
            tickets.push(ticket);
        }
        (FlushedBatch { n, requests, reason: FlushReason::Full }, tickets)
    }

    #[test]
    fn warm_tier_misses_cold_then_hits_warm() {
        let launcher = Launcher::gtx280();
        let plans = PlanCache::new();
        let metrics = ServiceMetrics::new();
        let cache = Arc::new(SharedFactorCache::new(8));
        let warm_cfg = DispatchConfig { factor_cache: Some(Arc::clone(&cache)), ..cfg() };
        let mut generator = Generator::new(61);
        let system: TridiagonalSystem<f32> = generator.system(Workload::DiagonallyDominant, 128);

        // First flush: cache miss → factored → served cold.
        let (flush, tickets) = keyed_flush(&system, 8, 1);
        serve_flush(
            DeviceCtx::solo(&launcher),
            &plans,
            &CircuitBreakers::default(),
            &metrics,
            &warm_cfg,
            flush,
        );
        for ticket in tickets {
            let resp = ticket.try_take().unwrap();
            assert!(resp.residual < 1e-2, "{}", resp.residual);
            assert!(!resp.engine.contains("warm"), "first flush is cold: {}", resp.engine);
        }

        // Second flush, same matrix: hit → GPU warm back-substitution
        // (8 ≥ min_gpu_batch), verified answers.
        let (flush, tickets) = keyed_flush(&system, 8, 2);
        serve_flush(
            DeviceCtx::solo(&launcher),
            &plans,
            &CircuitBreakers::default(),
            &metrics,
            &warm_cfg,
            flush,
        );
        for ticket in tickets {
            let resp = ticket.try_take().unwrap();
            assert_eq!(resp.engine, "warm-gpu");
            assert!(!resp.repaired, "a healthy warm flush needs no repair");
            assert!(resp.residual < 1e-2, "{}", resp.residual);
        }

        // Third flush, two RHS: below min_gpu_batch, CPU warm sweep.
        let (flush, tickets) = keyed_flush(&system, 2, 3);
        serve_flush(
            DeviceCtx::solo(&launcher),
            &plans,
            &CircuitBreakers::default(),
            &metrics,
            &warm_cfg,
            flush,
        );
        for ticket in tickets {
            let resp = ticket.try_take().unwrap();
            assert_eq!(resp.engine, "cpu-warm");
            assert!(resp.residual < 1e-2, "{}", resp.residual);
        }

        let snap = metrics.snapshot(0, 0, 0);
        assert_eq!(snap.factor_misses, 1);
        assert_eq!(snap.factor_hits, 2);
        assert_eq!(snap.warm_flushes, 2);
        assert_eq!(snap.factor_evictions, 0);
        assert!(snap.degradation.is_quiet(), "warm traffic is not degradation");
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn unkeyed_flushes_never_touch_the_cache() {
        let launcher = Launcher::gtx280();
        let plans = PlanCache::new();
        let metrics = ServiceMetrics::new();
        let cache = Arc::new(SharedFactorCache::new(8));
        let warm_cfg = DispatchConfig { factor_cache: Some(Arc::clone(&cache)), ..cfg() };
        let (flush, tickets) = flush_of(64, 8, 62); // make_request: no key
        serve_flush(
            DeviceCtx::solo(&launcher),
            &plans,
            &CircuitBreakers::default(),
            &metrics,
            &warm_cfg,
            flush,
        );
        for ticket in tickets {
            assert!(ticket.try_take().unwrap().residual < 1e-2);
        }
        let snap = metrics.snapshot(0, 0, 0);
        assert_eq!(snap.factor_hits + snap.factor_misses + snap.warm_flushes, 0);
        assert!(cache.stats().entries == 0);
    }

    // ── certification: sampled verification, skip, revocation ────────

    use numeric_verify::CertifiedCatalog;

    #[test]
    fn certified_key_downgrades_to_sampled_verification() {
        let launcher = Launcher::gtx280();
        let plans = PlanCache::new();
        let metrics = ServiceMetrics::new();
        let catalog = Arc::new(CertifiedCatalog::with_sample_period(4));
        let cert_cfg = DispatchConfig {
            certified: Some(Arc::clone(&catalog)),
            pin_engine: Some(Engine::Cpu(CpuEngine::Thomas)),
            ..cfg()
        };
        let mut generator = Generator::new(71);
        let system: TridiagonalSystem<f32> = generator.system(Workload::DiagonallyDominant, 128);

        // Five flushes of the same certified matrix: verify pattern is
        // Sampled, Skip, Skip, Skip, Sampled.
        for round in 0..5 {
            let (flush, tickets) = keyed_flush(&system, 8, round);
            serve_flush(
                DeviceCtx::solo(&launcher),
                &plans,
                &CircuitBreakers::default(),
                &metrics,
                &cert_cfg,
                flush,
            );
            for ticket in tickets {
                let resp = ticket.try_take().unwrap();
                assert!(!resp.repaired, "certified dominant traffic needs no repair");
                assert!(
                    resp.residual.is_finite() && resp.residual < 1e-2,
                    "round {round}: {}",
                    resp.residual
                );
            }
        }

        let snap = metrics.snapshot(0, 0, 0);
        assert_eq!(snap.condest_calls, 1, "analysis is once-per-key");
        assert_eq!(snap.certs_issued, 1);
        assert_eq!(snap.cert_sampled_verifies, 2);
        assert_eq!(snap.cert_skipped_verifies, 3);
        assert_eq!(snap.certs_revoked, 0);
        assert!(snap.degradation.is_quiet(), "certification is not degradation");
        let stats = catalog.stats();
        assert_eq!((stats.analyzed, stats.certified, stats.revoked), (1, 1, 0));
    }

    #[test]
    fn uncertified_key_keeps_full_verification() {
        let launcher = Launcher::gtx280();
        let plans = PlanCache::new();
        let metrics = ServiceMetrics::new();
        let catalog = Arc::new(CertifiedCatalog::new());
        let cert_cfg = DispatchConfig {
            certified: Some(Arc::clone(&catalog)),
            pin_engine: Some(Engine::Cpu(CpuEngine::Thomas)),
            ..cfg()
        };
        // Not dominant (|a|+|c| > |b|), not SPD (an LDLᵀ pivot goes
        // negative), not an M-matrix (positive off-diagonals): no
        // certificate class fits.
        let n = 64;
        let mut a = vec![1.0f32; n];
        let mut c = vec![1.0f32; n];
        a[0] = 0.0;
        c[n - 1] = 0.0;
        let system = TridiagonalSystem::<f32>::new(a, vec![0.5; n], c, vec![1.0; n]).unwrap();
        for round in 0..4 {
            let (flush, tickets) = keyed_flush(&system, 8, round);
            serve_flush(
                DeviceCtx::solo(&launcher),
                &plans,
                &CircuitBreakers::default(),
                &metrics,
                &cert_cfg,
                flush,
            );
            for ticket in tickets {
                let resp = ticket.try_take().unwrap();
                assert!(resp.residual.is_finite() && resp.residual < 1e-2, "{}", resp.residual);
            }
        }
        let snap = metrics.snapshot(0, 0, 0);
        // The class scan rejects before the condition estimator runs, so
        // no condest call is spent on this key.
        assert_eq!(snap.condest_calls, 0);
        assert_eq!(snap.certs_issued, 0);
        assert_eq!(snap.cert_sampled_verifies + snap.cert_skipped_verifies, 0);
        let stats = catalog.stats();
        assert_eq!((stats.analyzed, stats.certified), (1, 0));
    }

    #[test]
    fn corruption_on_sampled_warm_flush_revokes_the_certificate() {
        // Every warm GPU launch flips bits; with K = 1 every certified
        // flush is sampled, so the very first warm corruption is caught,
        // repaired, and the certificate revoked.
        let (launcher, _plan) = faulty_launcher(FaultConfig {
            seed: 0xCE27,
            bit_flip_rate: 1.0,
            flips_per_event: 4,
            ..FaultConfig::default()
        });
        let plans = PlanCache::new();
        let metrics = ServiceMetrics::new();
        let cache = Arc::new(SharedFactorCache::new(4));
        let catalog = Arc::new(CertifiedCatalog::with_sample_period(1));
        let cert_cfg = DispatchConfig {
            factor_cache: Some(Arc::clone(&cache)),
            certified: Some(Arc::clone(&catalog)),
            pin_engine: Some(Engine::Cpu(CpuEngine::Thomas)),
            ..cfg()
        };
        let mut generator = Generator::new(72);
        let system: TridiagonalSystem<f32> = generator.system(Workload::DiagonallyDominant, 64);
        let key = tridiag_core::MatrixKey::of_system(&system);

        // Flush 1: factor miss, served cold on the (fault-immune) CPU.
        let (flush, _t1) = keyed_flush(&system, 8, 1);
        serve_flush(
            DeviceCtx::solo(&launcher),
            &plans,
            &CircuitBreakers::default(),
            &metrics,
            &cert_cfg,
            flush,
        );
        assert!(catalog.certificate(&key).unwrap().is_certified());

        // Flush 2: warm GPU back-substitution, bit-flipped. The sampled
        // verify catches it, GEP repairs every answer, and the
        // certificate dies with the poisoned cache entry.
        let (flush, tickets) = keyed_flush(&system, 8, 2);
        serve_flush(
            DeviceCtx::solo(&launcher),
            &plans,
            &CircuitBreakers::default(),
            &metrics,
            &cert_cfg,
            flush,
        );
        for ticket in tickets {
            let resp = ticket.try_take().unwrap();
            assert!(resp.residual < 1e-2, "repaired answers stay right: {}", resp.residual);
        }
        let snap = metrics.snapshot(0, 0, 0);
        assert_eq!(snap.certs_revoked, 1);
        assert!(snap.degradation.corruptions_caught > 0);
        assert_eq!(
            catalog.certificate(&key),
            Some(tridiag_core::NumericCertificate::Uncertified),
            "revoked keys read as uncertified"
        );

        // Flush 3: back to full verification — no further sampling
        // counters move for this key.
        let sampled_before = snap.cert_sampled_verifies;
        let (flush, _t3) = keyed_flush(&system, 8, 3);
        serve_flush(
            DeviceCtx::solo(&launcher),
            &plans,
            &CircuitBreakers::default(),
            &metrics,
            &cert_cfg,
            flush,
        );
        let snap = metrics.snapshot(0, 0, 0);
        assert_eq!(snap.cert_sampled_verifies, sampled_before);
        assert_eq!(snap.cert_skipped_verifies, 0, "K = 1 never skips");
    }

    // ── resilience: retries, breakers, graceful degradation ──────────

    use gpu_sim::{FaultConfig, FaultPlan};

    fn faulty_launcher(cfg: FaultConfig) -> (Launcher, Arc<FaultPlan>) {
        let plan = Arc::new(FaultPlan::new(cfg));
        (Launcher::gtx280().with_fault_plan(Arc::clone(&plan)), plan)
    }

    #[test]
    fn transient_fault_is_retried_on_the_same_engine() {
        // Launch 0 faults (burst of 1); the retry (launch 1) succeeds.
        let (launcher, plan) =
            faulty_launcher(FaultConfig { launch_fault_burst: 1, ..FaultConfig::quiet(7) });
        let plans = PlanCache::new();
        let breakers = CircuitBreakers::default();
        let metrics = ServiceMetrics::new();
        let pinned = DispatchConfig {
            pin_engine: Some(Engine::Gpu(GpuAlgorithm::CrPcr { m: 32 })),
            ..cfg()
        };
        let (flush, tickets) = flush_of(64, 8, 41);
        serve_flush(DeviceCtx::solo(&launcher), &plans, &breakers, &metrics, &pinned, flush);
        for ticket in tickets {
            let resp = ticket.try_take().expect("retry must still answer");
            assert_eq!(resp.engine, "cr+pcr@32", "retry stays on the planned engine");
            assert!(resp.residual < 1e-2, "{}", resp.residual);
        }
        let d = metrics.snapshot(0, 0, 0).degradation;
        assert_eq!(d.device_faults, 1);
        assert_eq!(d.retries, 1);
        assert_eq!(d.degraded_flushes, 0, "a successful retry is not degradation");
        assert_eq!(plan.stats().launch_failures, 1);
        assert_eq!(breakers.state("dev0:cr+pcr@32"), crate::breaker::BreakerState::Closed);
    }

    #[test]
    fn device_loss_degrades_to_the_cpu_safety_net() {
        let (launcher, _plan) = faulty_launcher(FaultConfig {
            device_lost_after: Some(0), // every launch: device lost
            ..FaultConfig::quiet(8)
        });
        let plans = PlanCache::new();
        let breakers = CircuitBreakers::default();
        let metrics = ServiceMetrics::new();
        let pinned = DispatchConfig {
            pin_engine: Some(Engine::Gpu(GpuAlgorithm::CrPcr { m: 32 })),
            ..cfg()
        };
        let (flush, tickets) = flush_of(64, 8, 42);
        serve_flush(DeviceCtx::solo(&launcher), &plans, &breakers, &metrics, &pinned, flush);
        for ticket in tickets {
            let resp = ticket.try_take().expect("degradation must still answer");
            assert_eq!(resp.engine, "cpu-gep", "device loss lands on the safety net");
            assert!(resp.residual < 1e-2, "{}", resp.residual);
        }
        let d = metrics.snapshot(0, 0, 0).degradation;
        assert_eq!(d.device_faults, 1, "device loss aborts the ladder immediately");
        assert_eq!(d.degraded_flushes, 1);
    }

    #[test]
    fn persistent_faults_walk_the_ranking_to_the_next_candidate() {
        // Every launch faults transiently: the planned engine exhausts its
        // per-engine budget, the ladder walks the fallback, and with
        // max_total_attempts = 4 everything runs out → CPU GEP.
        let (launcher, plan) =
            faulty_launcher(FaultConfig { launch_fault_burst: u64::MAX, ..FaultConfig::quiet(9) });
        let breakers = CircuitBreakers::default();
        let systems: Vec<TridiagonalSystem<f32>> = {
            let mut generator = Generator::new(43);
            (0..8).map(|_| generator.system(Workload::DiagonallyDominant, 64)).collect()
        };
        let fallbacks =
            vec![Engine::Gpu(GpuAlgorithm::CrPcr { m: 32 }), Engine::Gpu(GpuAlgorithm::Pcr)];
        let out = execute(
            &DeviceCtx::solo(&launcher),
            Engine::Gpu(GpuAlgorithm::CrPcr { m: 32 }),
            &fallbacks,
            &breakers,
            &systems,
            &cfg(),
            false,
            &VerifyPolicy::full(100.0),
        );
        assert_eq!(out.engine_label, "cpu-gep");
        assert!(out.degraded);
        assert_eq!(out.device_faults, 4, "max_total_attempts bounds the faults");
        assert_eq!(out.retries, 3);
        assert!(out.residuals.iter().all(|&r| r.is_finite() && r < 1e-2));
        // Two faults each on two engines (per-engine budget = 2).
        assert_eq!(plan.stats().launch_failures, 4);
    }

    #[test]
    fn open_breaker_demotes_the_flush_without_touching_the_engine() {
        let launcher = Launcher::gtx280(); // healthy device
        let plans = PlanCache::new();
        let breakers = CircuitBreakers::default();
        let metrics = ServiceMetrics::new();
        // Trip the breaker for the pinned engine by hand.
        for _ in 0..3 {
            breakers.on_fault("dev0:cr+pcr@32");
        }
        let pinned = DispatchConfig {
            pin_engine: Some(Engine::Gpu(GpuAlgorithm::CrPcr { m: 32 })),
            ..cfg()
        };
        let (flush, tickets) = flush_of(64, 8, 44);
        serve_flush(DeviceCtx::solo(&launcher), &plans, &breakers, &metrics, &pinned, flush);
        for ticket in tickets {
            let resp = ticket.try_take().unwrap();
            assert_eq!(resp.engine, "cpu-gep", "open breaker demotes to the safety net");
            assert!(resp.residual < 1e-2, "{}", resp.residual);
        }
        assert!(breakers.denials_total() >= 1);
        let d = metrics.snapshot(0, 0, 0).degradation;
        assert_eq!(d.degraded_flushes, 1);
        assert_eq!(d.device_faults, 0, "the engine was never launched");
    }

    #[test]
    fn deadline_misses_are_flagged_and_counted() {
        let launcher = Launcher::gtx280();
        let plans = PlanCache::new();
        let breakers = CircuitBreakers::default();
        let metrics = ServiceMetrics::new();
        let mut generator = Generator::new(45);
        // A deadline of tick 1 on the config's clock is long past by the
        // time the flush is served: flagged as missed, still answered.
        let system: TridiagonalSystem<f32> = generator.system(Workload::DiagonallyDominant, 64);
        let (req, ticket) = crate::request::make_request_with_deadline(0, system, Some(1));
        let flush = FlushedBatch { n: 64, requests: vec![req], reason: FlushReason::Deadline };
        serve_flush(DeviceCtx::solo(&launcher), &plans, &breakers, &metrics, &cfg(), flush);
        let resp = ticket.try_take().expect("missed deadlines still get answers");
        assert!(resp.deadline_missed);
        assert!(resp.residual < 1e-2, "{}", resp.residual);
        let snap = metrics.snapshot(0, 0, 0);
        assert_eq!(snap.degradation.deadline_misses, 1);
        assert_eq!(snap.flushes_deadline, 1);
    }
}
