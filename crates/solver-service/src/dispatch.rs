//! Dispatcher: executes a flushed batch on the planned engine, verifies
//! every solution, repairs failures, and fulfils tickets.
//!
//! Routing policy, in order:
//!
//! 1. **Small flushes go to the CPU.** A linger-flushed batch of one or
//!    two systems cannot amortize a kernel launch + PCIe round trip; below
//!    `min_gpu_batch` the dispatcher overrides the cached plan with the
//!    sequential Thomas solver.
//! 2. **Otherwise the [`PlanCache`] decides** — autotuned once per size
//!    class, O(1) afterwards.
//! 3. **Every answer is verified.** GPU batches run through
//!    [`solve_batch_robust`] (the repo's verify-and-repair wrapper); CPU
//!    batches get the same residual acceptance test with per-system GEP
//!    repair. The service never returns an unverified solution — the
//!    paper's solvers are pivoting-free and may fail on general matrices,
//!    so verification is what makes this a *service* rather than a kernel.
//! 4. **The first GPU flush of each size class is sanitized.** With
//!    [`DispatchConfig::sanitize_first_flush`] set (the default), the
//!    first flush dispatched to a GPU engine for each plan-cache key runs
//!    with the kernel sanitizer recording: races, hazards, OOB, and
//!    uninitialized reads found on real serving traffic are counted into
//!    [`ServiceMetrics`], and a flush whose kernel trips an error-severity
//!    diagnostic is re-solved on the CPU GEP path rather than trusted.

use crate::batcher::FlushedBatch;
use crate::metrics::ServiceMetrics;
use crate::planner::{CpuEngine, Engine, PlanCache};
use cpu_solvers::{gep, thomas};
use gpu_sim::Launcher;
use gpu_solvers::{solve_batch_robust, RobustOptions};
use std::time::Instant;
use tridiag_core::residual::l2_residual;
use tridiag_core::{Real, SolutionBatch, SystemBatch, TridiagonalSystem};

/// Dispatch-time knobs (a copy of the relevant service config).
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// Flushes smaller than this run on the CPU regardless of plan.
    pub min_gpu_batch: usize,
    /// Residual acceptance scale (see [`RobustOptions::threshold_scale`]).
    pub threshold_scale: f64,
    /// Probe batch size used when a plan-cache miss triggers autotune.
    pub probe_count: usize,
    /// When set, bypass the planner *and* the small-flush CPU override and
    /// run every batch on this engine (benchmarking / A-B testing knob).
    /// Verification and GEP repair still apply.
    pub pin_engine: Option<Engine>,
    /// Run the first GPU flush of each plan-cache size class with the
    /// kernel sanitizer recording (admission-time correctness check on
    /// real traffic; later flushes of the same class run unsanitized).
    pub sanitize_first_flush: bool,
}

/// Serves one flushed batch end to end: plan → execute → verify/repair →
/// fulfil tickets → record metrics. Infallible by design: any engine
/// error degrades to the per-system GEP path rather than dropping
/// requests.
pub fn serve_flush<T: Real>(
    launcher: &Launcher,
    plans: &PlanCache,
    metrics: &ServiceMetrics,
    cfg: &DispatchConfig,
    flush: FlushedBatch<T>,
) {
    let FlushedBatch { n, requests, reason } = flush;
    let occupancy = requests.len();
    debug_assert!(occupancy > 0, "empty flush");

    // Pinned engine wins outright; otherwise sub-critical flushes skip
    // planning entirely (they go to the CPU, and tuning a size class the
    // GPU may never see would waste the tournament).
    let engine = match cfg.pin_engine {
        Some(engine) => engine,
        None if occupancy < cfg.min_gpu_batch => Engine::Cpu(CpuEngine::Thomas),
        None => plans.plan_for::<T>(launcher, n, cfg.probe_count).engine,
    };

    // First GPU flush of this size class? Claim the one-time token and run
    // it under the sanitizer — the admission correctness check.
    let sanitize = cfg.sanitize_first_flush
        && matches!(engine, Engine::Gpu(_))
        && plans.begin_sanitize::<T>(launcher, n);

    let systems: Vec<TridiagonalSystem<T>> = requests.iter().map(|r| r.system.clone()).collect();
    let outcome = execute(launcher, engine, &systems, cfg.threshold_scale, sanitize);

    if let Some((errors, warnings)) = outcome.sanitizer_findings {
        metrics.on_flush_sanitized(errors, warnings);
    }
    metrics.on_batch_served(
        &outcome.engine_label,
        occupancy,
        reason,
        outcome.repairs,
        outcome.engine_ms,
    );

    let now = Instant::now();
    for (i, request) in requests.into_iter().enumerate() {
        let latency = now.saturating_duration_since(request.submitted_at);
        let id = request.id;
        request.fulfil(crate::request::SolveResponse {
            id,
            x: outcome.solutions.system(i).to_vec(),
            residual: outcome.residuals[i],
            engine: outcome.engine_label.clone(),
            repaired: outcome.repaired_flags[i],
            batch_occupancy: occupancy,
            latency,
        });
        metrics.on_complete(latency);
    }
}

struct Outcome<T: Real> {
    solutions: SolutionBatch<T>,
    residuals: Vec<f64>,
    repaired_flags: Vec<bool>,
    repairs: usize,
    engine_label: String,
    /// Simulated device ms (GPU) or measured wall-clock ms (CPU).
    engine_ms: f64,
    /// `(error_sites, warning_sites)` when the flush ran under the
    /// sanitizer; `None` for unsanitized flushes and CPU engines.
    sanitizer_findings: Option<(u64, u64)>,
}

/// Runs `systems` on `engine`, verifying and repairing every solution.
/// With `sanitize` set, GPU engines run with the kernel sanitizer
/// recording; error-severity findings demote the flush to the CPU GEP
/// safety net (an unsound kernel's answers are not trusted, even if their
/// residuals happen to pass).
fn execute<T: Real>(
    launcher: &Launcher,
    engine: Engine,
    systems: &[TridiagonalSystem<T>],
    threshold_scale: f64,
    sanitize: bool,
) -> Outcome<T> {
    let batch = SystemBatch::from_systems(systems).expect("flush holds >=1 same-size systems");
    match engine {
        Engine::Gpu(alg) => {
            let sanitizing_launcher;
            let launcher = if sanitize {
                sanitizing_launcher =
                    launcher.clone().with_sanitize(gpu_sim::SanitizeOptions::record());
                &sanitizing_launcher
            } else {
                launcher
            };
            let options = RobustOptions { threshold_scale };
            match solve_batch_robust(launcher, alg, &batch, options) {
                Ok(report) => {
                    let findings = sanitize.then(|| {
                        (
                            report.gpu.sanitizer_error_count() as u64,
                            report.gpu.sanitizer_warning_count() as u64,
                        )
                    });
                    if let Some((errors, _)) = findings {
                        if errors > 0 {
                            // The kernel is unsound on this traffic: fall
                            // back to the CPU rather than serve its output.
                            let mut out =
                                cpu_execute(systems, &batch, CpuEngine::Gep, threshold_scale);
                            out.sanitizer_findings = findings;
                            return out;
                        }
                    }
                    let mut repaired_flags = vec![false; systems.len()];
                    for repair in &report.repaired {
                        repaired_flags[repair.system] = true;
                    }
                    let residuals = residuals_of(systems, &report.gpu.solutions);
                    let engine_ms = report.gpu.timing.total_ms();
                    Outcome {
                        solutions: report.gpu.solutions,
                        residuals,
                        repairs: report.repaired.len(),
                        repaired_flags,
                        engine_label: engine.to_string(),
                        engine_ms,
                        sanitizer_findings: findings,
                    }
                }
                // Launch-configuration failure (e.g. a device swap made the
                // cached plan illegal): degrade to the CPU safety net.
                Err(_) => cpu_execute(systems, &batch, CpuEngine::Gep, threshold_scale),
            }
        }
        Engine::Cpu(cpu) => cpu_execute(systems, &batch, cpu, threshold_scale),
    }
}

/// CPU path with the same acceptance rule as `solve_batch_robust`: accept
/// when `||Ax − d||₂ ≤ scale · ||d||₂ · ε · n`, otherwise re-solve with
/// partial pivoting.
fn cpu_execute<T: Real>(
    systems: &[TridiagonalSystem<T>],
    batch: &SystemBatch<T>,
    cpu: CpuEngine,
    threshold_scale: f64,
) -> Outcome<T> {
    let n = batch.n();
    let eps = T::EPSILON.to_f64();
    let mut solutions = SolutionBatch::zeros_like(batch);
    let mut residuals = vec![0.0f64; systems.len()];
    let mut repaired_flags = vec![false; systems.len()];
    let mut repairs = 0usize;
    let started = std::time::Instant::now();

    for (i, sys) in systems.iter().enumerate() {
        let x = solutions.system_mut(i);
        let primary_ok = match cpu {
            CpuEngine::Thomas => thomas::solve_into(&sys.a, &sys.b, &sys.c, &sys.d, x).is_ok(),
            CpuEngine::Gep => gep::solve_into(&sys.a, &sys.b, &sys.c, &sys.d, x).is_ok(),
        };
        let d_norm: f64 =
            sys.d.iter().map(|&v| v.to_f64() * v.to_f64()).sum::<f64>().sqrt().max(1e-30);
        let threshold = threshold_scale * d_norm * eps * n as f64;
        let accepted = primary_ok
            && x.iter().all(|v| v.is_finite())
            && l2_residual(sys, x).map(|r| r <= threshold).unwrap_or(false);
        if !accepted && cpu != CpuEngine::Gep {
            // Same repair path as the GPU robust wrapper.
            let _ = gep::solve_into(&sys.a, &sys.b, &sys.c, &sys.d, x);
            repaired_flags[i] = true;
            repairs += 1;
        }
        residuals[i] = l2_residual(sys, x).unwrap_or(f64::INFINITY);
    }

    Outcome {
        solutions,
        residuals,
        repairs,
        repaired_flags,
        engine_label: Engine::Cpu(cpu).to_string(),
        engine_ms: started.elapsed().as_secs_f64() * 1e3,
        sanitizer_findings: None,
    }
}

fn residuals_of<T: Real>(
    systems: &[TridiagonalSystem<T>],
    solutions: &SolutionBatch<T>,
) -> Vec<f64> {
    systems
        .iter()
        .enumerate()
        .map(|(i, sys)| l2_residual(sys, solutions.system(i)).unwrap_or(f64::INFINITY))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::FlushReason;
    use crate::request::make_request;
    use gpu_solvers::GpuAlgorithm;
    use tridiag_core::{Generator, Workload};

    fn cfg() -> DispatchConfig {
        DispatchConfig {
            min_gpu_batch: 4,
            threshold_scale: 100.0,
            probe_count: 4,
            pin_engine: None,
            sanitize_first_flush: true,
        }
    }

    fn flush_of(
        n: usize,
        count: usize,
        seed: u64,
    ) -> (FlushedBatch<f32>, Vec<crate::request::Ticket<f32>>) {
        let mut generator = Generator::new(seed);
        let mut requests = Vec::new();
        let mut tickets = Vec::new();
        for i in 0..count {
            let (req, ticket) =
                make_request(i as u64, generator.system(Workload::DiagonallyDominant, n));
            requests.push(req);
            tickets.push(ticket);
        }
        (FlushedBatch { n, requests, reason: FlushReason::Full }, tickets)
    }

    #[test]
    fn served_flush_fulfils_every_ticket_accurately() {
        let launcher = Launcher::gtx280();
        let plans = PlanCache::new();
        let metrics = ServiceMetrics::new();
        let (flush, tickets) = flush_of(128, 8, 11);
        serve_flush(&launcher, &plans, &metrics, &cfg(), flush);
        for (i, ticket) in tickets.into_iter().enumerate() {
            let resp = ticket.try_take().expect("synchronous serve fulfils immediately");
            assert_eq!(resp.id, i as u64);
            assert_eq!(resp.x.len(), 128);
            assert_eq!(resp.batch_occupancy, 8);
            assert!(resp.residual < 1e-2, "{}", resp.residual);
        }
        let snap = metrics.snapshot(0, plans.tunes(), plans.hits());
        assert_eq!(snap.completed, 8);
        assert_eq!(snap.dispatched_total(), 8);
        assert_eq!(snap.occupancy_total(), 8);
    }

    #[test]
    fn small_flushes_are_routed_to_the_cpu() {
        let launcher = Launcher::gtx280();
        let plans = PlanCache::new();
        let metrics = ServiceMetrics::new();
        let (flush, tickets) = flush_of(128, 2, 12); // below min_gpu_batch = 4
        serve_flush(&launcher, &plans, &metrics, &cfg(), flush);
        for ticket in tickets {
            assert_eq!(ticket.try_take().unwrap().engine, "cpu-thomas");
        }
    }

    #[test]
    fn zero_pivot_systems_are_repaired_on_the_cpu_path() {
        let launcher = Launcher::gtx280();
        let plans = PlanCache::new();
        let metrics = ServiceMetrics::new();
        let mut generator = Generator::new(13);
        let mut bad: TridiagonalSystem<f32> = generator.system(Workload::DiagonallyDominant, 64);
        bad.b[0] = 0.0; // Thomas dies, GEP interchanges rows
        let (req, ticket) = make_request(0, bad);
        let flush = FlushedBatch { n: 64, requests: vec![req], reason: FlushReason::Linger };
        serve_flush(&launcher, &plans, &metrics, &cfg(), flush);
        let resp = ticket.try_take().unwrap();
        assert!(resp.repaired, "zero pivot must trigger GEP repair");
        assert!(resp.residual < 1e-2, "{}", resp.residual);
        assert_eq!(metrics.snapshot(0, 0, 0).repaired, 1);
    }

    #[test]
    fn pinned_engine_overrides_planner_and_small_flush_rule() {
        let launcher = Launcher::gtx280();
        let plans = PlanCache::new();
        let metrics = ServiceMetrics::new();
        let (flush, tickets) = flush_of(128, 2, 14); // small flush...
        let pinned = DispatchConfig {
            pin_engine: Some(Engine::Gpu(GpuAlgorithm::CrPcr { m: 32 })),
            ..cfg()
        };
        serve_flush(&launcher, &plans, &metrics, &pinned, flush);
        for ticket in tickets {
            // ...but the pin forces the GPU engine anyway.
            assert_eq!(ticket.try_take().unwrap().engine, "cr+pcr@32");
        }
        assert_eq!(plans.tunes(), 0, "pinning must not trigger autotune");
        let snap = metrics.snapshot(0, 0, 0);
        assert!(snap.engine_ms["cr+pcr@32"] > 0.0, "simulated device ms recorded");
    }

    #[test]
    fn gpu_path_verifies_and_repairs_via_robust_wrapper() {
        // Force a GPU plan by seeding the cache artificially through a
        // large flush on a size where GPU wins is not guaranteed; instead
        // exercise `execute` directly with a known-overflowing engine.
        let launcher = Launcher::gtx280();
        let systems: Vec<TridiagonalSystem<f32>> = {
            let mut generator = Generator::new(2);
            (0..8).map(|_| generator.system(Workload::DiagonallyDominant, 512)).collect()
        };
        // Plain RD overflows at n = 512 on dominant systems (Figure 18);
        // the robust wrapper must hand back repaired, accurate answers.
        let out = execute(
            &launcher,
            Engine::Gpu(GpuAlgorithm::Rd(gpu_solvers::RdMode::Plain)),
            &systems,
            100.0,
            false,
        );
        assert!(out.repairs > 0);
        assert!(out.residuals.iter().all(|&r| r.is_finite() && r < 1e-2));
    }

    #[test]
    fn first_gpu_flush_of_each_size_class_is_sanitized_once() {
        let launcher = Launcher::gtx280();
        let plans = PlanCache::new();
        let metrics = ServiceMetrics::new();
        // Pin a GPU engine so the routing is deterministic.
        let pinned = DispatchConfig {
            pin_engine: Some(Engine::Gpu(GpuAlgorithm::CrPcr { m: 32 })),
            ..cfg()
        };
        // Three flushes: two of n = 64 (only the first is sanitized), one
        // of n = 128 (a new size class, sanitized again).
        for (n, seed) in [(64usize, 21u64), (64, 22), (128, 23)] {
            let (flush, tickets) = flush_of(n, 8, seed);
            serve_flush(&launcher, &plans, &metrics, &pinned, flush);
            for ticket in tickets {
                let resp = ticket.try_take().unwrap();
                assert!(resp.residual < 1e-2, "{}", resp.residual);
                // Production kernels are clean: the sanitized flush must
                // still have been served on the pinned GPU engine.
                assert_eq!(resp.engine, "cr+pcr@32");
            }
        }
        let snap = metrics.snapshot(0, 0, 0);
        assert_eq!(snap.sanitized_flushes, 2, "one per size class");
        assert_eq!(snap.sanitizer_errors, 0, "production kernels are clean");
        assert_eq!(snap.completed, 24);
    }

    #[test]
    fn sanitize_hook_is_off_when_disabled_and_for_cpu_flushes() {
        let launcher = Launcher::gtx280();
        let metrics = ServiceMetrics::new();
        // CPU-routed small flush: no kernel runs, nothing to sanitize.
        {
            let plans = PlanCache::new();
            let (flush, _tickets) = flush_of(64, 2, 31); // below min_gpu_batch
            serve_flush(&launcher, &plans, &metrics, &cfg(), flush);
        }
        // GPU-pinned flush with the hook disabled.
        {
            let plans = PlanCache::new();
            let disabled = DispatchConfig {
                pin_engine: Some(Engine::Gpu(GpuAlgorithm::CrPcr { m: 32 })),
                sanitize_first_flush: false,
                ..cfg()
            };
            let (flush, _tickets) = flush_of(64, 8, 32);
            serve_flush(&launcher, &plans, &metrics, &disabled, flush);
        }
        assert_eq!(metrics.snapshot(0, 0, 0).sanitized_flushes, 0);
    }

    #[test]
    fn sanitizer_errors_demote_the_flush_to_the_cpu() {
        // Drive `execute` directly with the deliberately hazardous
        // stride-one CR timing kernel's algorithm? That variant is not a
        // `GpuAlgorithm`, so instead prove the demotion contract at the
        // `Outcome` level: a clean production kernel keeps its GPU label
        // under sanitize, i.e. the demotion branch is not taken spuriously.
        let launcher = Launcher::gtx280();
        let systems: Vec<TridiagonalSystem<f32>> = {
            let mut generator = Generator::new(33);
            (0..8).map(|_| generator.system(Workload::DiagonallyDominant, 64)).collect()
        };
        let out = execute(&launcher, Engine::Gpu(GpuAlgorithm::Cr), &systems, 100.0, true);
        assert_eq!(out.engine_label, "cr");
        let (errors, _warnings) = out.sanitizer_findings.expect("sanitized flush reports findings");
        assert_eq!(errors, 0);
    }
}
