//! Typed service-level errors.
//!
//! The service distinguishes *backpressure* (queue full — retry later,
//! nothing was enqueued) from *shutdown* (the service is draining and will
//! never accept this request) from *malformed input* (the request itself is
//! wrong and retrying cannot help). Callers branch on the variant; an
//! open-loop client treats [`ServiceError::QueueFull`] as a signal to back
//! off, exactly like an HTTP 429.

use core::fmt;
use std::time::Duration;
use tridiag_core::TridiagError;

/// Why the service refused (or failed) a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The bounded admission queue is at capacity. Nothing was enqueued;
    /// the caller should back off and retry. This is load shedding, not
    /// failure — the alternative (blocking the submitter) would propagate
    /// the stall upstream.
    QueueFull {
        /// Configured queue capacity that was hit.
        capacity: usize,
        /// Suggested back-off before retrying, derived from the service's
        /// observed drain rate (`None` before any request has completed).
        /// The analogue of HTTP 429's `Retry-After` header.
        retry_after: Option<Duration>,
    },
    /// The request's deadline is already unmeetable at admission time
    /// (zero, or shorter than the time a solve could possibly take).
    /// Nothing was enqueued; retrying with the same deadline cannot help.
    DeadlineExceeded {
        /// The deadline budget the caller asked for.
        deadline: Duration,
    },
    /// The service is shutting down and no longer admits work. In-flight
    /// requests are still drained and completed.
    ShuttingDown,
    /// The request itself is invalid (e.g. a system smaller than 2
    /// unknowns). Retrying the same request can never succeed.
    InvalidRequest(TridiagError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull { capacity, retry_after } => {
                write!(f, "admission queue full (capacity {capacity}); retry ")?;
                match retry_after {
                    Some(hint) => write!(f, "in ~{} us", hint.as_micros()),
                    None => f.write_str("later"),
                }
            }
            ServiceError::DeadlineExceeded { deadline } => {
                write!(
                    f,
                    "deadline of {} us is already unmeetable at admission",
                    deadline.as_micros()
                )
            }
            ServiceError::ShuttingDown => f.write_str("service is shutting down"),
            ServiceError::InvalidRequest(e) => write!(f, "invalid request: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::InvalidRequest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TridiagError> for ServiceError {
    fn from(e: TridiagError) -> Self {
        ServiceError::InvalidRequest(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure_mode() {
        let full = ServiceError::QueueFull { capacity: 8, retry_after: None }.to_string();
        assert!(full.contains("capacity 8"), "{full}");
        assert!(full.contains("retry later"), "{full}");
        let hinted =
            ServiceError::QueueFull { capacity: 8, retry_after: Some(Duration::from_micros(250)) }
                .to_string();
        assert!(hinted.contains("250 us"), "{hinted}");
        let late =
            ServiceError::DeadlineExceeded { deadline: Duration::from_micros(5) }.to_string();
        assert!(late.contains("deadline") && late.contains("5 us"), "{late}");
        assert!(ServiceError::ShuttingDown.to_string().contains("shutting down"));
    }

    #[test]
    fn invalid_request_wraps_the_domain_error() {
        let e: ServiceError = TridiagError::NotPowerOfTwo { n: 48 }.into();
        assert!(matches!(e, ServiceError::InvalidRequest(_)));
        assert!(e.to_string().contains("invalid request"));
    }
}
