//! Typed service-level errors.
//!
//! The service distinguishes *backpressure* (queue full — retry later,
//! nothing was enqueued) from *shutdown* (the service is draining and will
//! never accept this request) from *malformed input* (the request itself is
//! wrong and retrying cannot help). Callers branch on the variant; an
//! open-loop client treats [`ServiceError::QueueFull`] as a signal to back
//! off, exactly like an HTTP 429.

use core::fmt;
use tridiag_core::TridiagError;

/// Why the service refused (or failed) a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The bounded admission queue is at capacity. Nothing was enqueued;
    /// the caller should back off and retry. This is load shedding, not
    /// failure — the alternative (blocking the submitter) would propagate
    /// the stall upstream.
    QueueFull {
        /// Configured queue capacity that was hit.
        capacity: usize,
    },
    /// The service is shutting down and no longer admits work. In-flight
    /// requests are still drained and completed.
    ShuttingDown,
    /// The request itself is invalid (e.g. a system smaller than 2
    /// unknowns). Retrying the same request can never succeed.
    InvalidRequest(TridiagError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity}); retry later")
            }
            ServiceError::ShuttingDown => f.write_str("service is shutting down"),
            ServiceError::InvalidRequest(e) => write!(f, "invalid request: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::InvalidRequest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TridiagError> for ServiceError {
    fn from(e: TridiagError) -> Self {
        ServiceError::InvalidRequest(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure_mode() {
        let full = ServiceError::QueueFull { capacity: 8 }.to_string();
        assert!(full.contains("capacity 8"), "{full}");
        assert!(ServiceError::ShuttingDown.to_string().contains("shutting down"));
    }

    #[test]
    fn invalid_request_wraps_the_domain_error() {
        let e: ServiceError = TridiagError::NotPowerOfTwo { n: 48 }.into();
        assert!(matches!(e, ServiceError::InvalidRequest(_)));
        assert!(e.to_string().contains("invalid request"));
    }
}
