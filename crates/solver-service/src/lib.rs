//! # solver-service
//!
//! A dynamic-batching tridiagonal solve **service** on top of the repo's
//! solvers — the serving layer the paper's library would need in
//! production, structured like an inference server:
//!
//! 1. **Admission & backpressure** ([`queue`]): a bounded queue that
//!    *rejects* when full ([`ServiceError::QueueFull`]) instead of
//!    blocking submitters — load is shed at the edge.
//! 2. **Micro-batching** ([`batcher`]): requests accumulate in per-size
//!    buckets (systems of different `n` never share a kernel launch) and
//!    flush at a target batch size or a max-linger deadline, whichever
//!    comes first.
//! 3. **Planning & dispatch** ([`planner`], [`dispatch`]): the first
//!    flush of each `(n, element width, device)` key runs an autotune
//!    tournament over [`gpu_solvers::GpuAlgorithm::paper_five`], the
//!    global-memory fallback, and the CPU baseline; the winner is cached
//!    in a [`PlanCache`] and reused in O(1). Every solution is verified
//!    against a residual bound and repaired with pivoted Gaussian
//!    elimination when needed — the service never returns an unverified
//!    answer.
//! 4. **Observability** ([`metrics`]): lock-cheap counters, a log2
//!    latency histogram with p50/p95/p99, per-engine dispatch counts and
//!    a batch-occupancy histogram, snapshot-able as JSON.
//! 5. **Resilience** ([`breaker`], plus deadline/retry plumbing in
//!    [`batcher`] and [`dispatch`]): per-request completion deadlines pull
//!    bucket flushes forward; transient device faults retry with
//!    exponential backoff and walk the autotune ranking to the next-best
//!    engine; per-engine circuit breakers stop hammering a persistently
//!    faulting engine and demote its traffic to the pivoted CPU safety
//!    net until a half-open probe succeeds. Every answer is still
//!    verified; every degradation is visible in
//!    [`metrics::DegradationState`].
//! 6. **Warm serving tier** ([`dispatch`] + the `factor-cache` crate):
//!    with [`ServiceConfig::factor_cache`] set, admitted systems are
//!    identity-hashed, same-matrix requests coalesce into shared flushes,
//!    and a flush whose matrix is already factored skips elimination
//!    entirely — `O(5n)` back-substitution against the cached
//!    coefficients instead of the cold `O(8n)` solve, GPU-batched when
//!    the flush is large enough. [`SolverService::solve_many_rhs`] is the
//!    multi-RHS front door. Warm answers pass the same residual verify as
//!    cold ones; a failure repairs with GEP and invalidates the entry.
//!
//! ```
//! use solver_service::{ServiceConfig, SolverService};
//! use tridiag_core::{Generator, Workload};
//!
//! let service: SolverService<f32> = SolverService::start(ServiceConfig::default());
//! let system = Generator::new(7).system(Workload::DiagonallyDominant, 128);
//! let response = service.submit_wait(system).unwrap();
//! assert!(response.residual < 1e-2);
//! let report = service.shutdown();
//! assert_eq!(report.completed, 1);
//! ```

#![warn(missing_docs)]

pub mod batcher;
pub mod breaker;
pub mod dispatch;
pub mod error;
pub mod metrics;
pub mod planner;
pub mod queue;
pub mod request;
pub mod service;
pub mod trace;

pub use batcher::{BucketTable, FlushReason, FlushedBatch};
pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreakers};
pub use dispatch::{serve_flush, DeviceCtx, DispatchConfig};
pub use error::ServiceError;
pub use metrics::{DegradationState, DeviceSnapshot, MetricsSnapshot, ServiceMetrics};
pub use planner::{
    autotune, autotune_ranked, autotune_ranked_on, CpuEngine, Engine, Plan, PlanCache,
};
pub use queue::{BoundedQueue, Pop, PushError};
pub use request::{
    make_request, make_request_at, make_request_keyed, make_request_with_deadline, SolveRequest,
    SolveResponse, Ticket,
};
pub use service::{ServiceConfig, SolverService};
pub use trace::{RejectReason, TraceEvent, TraceHandle, TraceSink};
