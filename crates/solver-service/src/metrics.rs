//! Service observability: counters, histograms, and a serializable report.
//!
//! The hot path touches only atomics and two small maps behind short-held
//! mutexes (dispatch counts keyed by engine, occupancy keyed by batch
//! size). [`MetricsSnapshot`] is a cheap, consistent-enough copy for
//! dashboards and tests; `to_json` is hand-rolled because the build is
//! offline and the in-tree `serde` shim provides derives but no
//! serializer.
//!
//! **Conservation laws** the test suite holds the service to:
//!
//! * `sum(dispatch_counts.values()) == completed` — every completed
//!   request was dispatched on exactly one engine;
//! * `sum(occupancy.values() × key weighting) == completed` — the
//!   occupancy histogram counts *systems* (not batches) per batch size, so
//!   it partitions the same population;
//! * `submitted == completed + in flight` at quiescence, with `rejected`
//!   counted separately (rejected requests were never admitted).

use crate::batcher::FlushReason;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of log2 latency buckets: bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` microseconds; 40 buckets cover ~12 days.
const LATENCY_BUCKETS: usize = 40;

/// Shared, thread-safe metric sinks. One instance per service.
pub struct ServiceMetrics {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    repaired: AtomicU64,
    flushes_full: AtomicU64,
    flushes_linger: AtomicU64,
    flushes_deadline: AtomicU64,
    flushes_shutdown: AtomicU64,
    sanitized_flushes: AtomicU64,
    proof_skipped_sanitizes: AtomicU64,
    retries: AtomicU64,
    device_faults: AtomicU64,
    corruptions_caught: AtomicU64,
    degraded_flushes: AtomicU64,
    deadline_misses: AtomicU64,
    sanitizer_errors: AtomicU64,
    sanitizer_warnings: AtomicU64,
    factor_hits: AtomicU64,
    factor_misses: AtomicU64,
    factor_evictions: AtomicU64,
    warm_flushes: AtomicU64,
    condest_calls: AtomicU64,
    certs_issued: AtomicU64,
    cert_skipped_verifies: AtomicU64,
    cert_sampled_verifies: AtomicU64,
    certs_revoked: AtomicU64,
    latency_us: [AtomicU64; LATENCY_BUCKETS],
    /// batch size → systems served in batches of that size.
    occupancy: Mutex<BTreeMap<usize, u64>>,
    /// engine spelling → systems served on that engine.
    dispatch: Mutex<BTreeMap<String, u64>>,
    /// engine spelling → engine milliseconds consumed (simulated device
    /// time for GPU engines, wall-clock for CPU engines).
    engine_ms: Mutex<BTreeMap<String, f64>>,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            repaired: AtomicU64::new(0),
            flushes_full: AtomicU64::new(0),
            flushes_linger: AtomicU64::new(0),
            flushes_deadline: AtomicU64::new(0),
            flushes_shutdown: AtomicU64::new(0),
            sanitized_flushes: AtomicU64::new(0),
            proof_skipped_sanitizes: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            device_faults: AtomicU64::new(0),
            corruptions_caught: AtomicU64::new(0),
            degraded_flushes: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            sanitizer_errors: AtomicU64::new(0),
            sanitizer_warnings: AtomicU64::new(0),
            factor_hits: AtomicU64::new(0),
            factor_misses: AtomicU64::new(0),
            factor_evictions: AtomicU64::new(0),
            warm_flushes: AtomicU64::new(0),
            condest_calls: AtomicU64::new(0),
            certs_issued: AtomicU64::new(0),
            cert_skipped_verifies: AtomicU64::new(0),
            cert_sampled_verifies: AtomicU64::new(0),
            certs_revoked: AtomicU64::new(0),
            latency_us: core::array::from_fn(|_| AtomicU64::new(0)),
            occupancy: Mutex::new(BTreeMap::new()),
            dispatch: Mutex::new(BTreeMap::new()),
            engine_ms: Mutex::new(BTreeMap::new()),
        }
    }

    /// One request admitted.
    pub fn on_submit(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// One request rejected at admission (queue full / shutting down).
    pub fn on_reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// One batch of `occupancy` systems flushed for `reason` and served on
    /// `engine` in `engine_ms` milliseconds (simulated for GPU engines,
    /// wall-clock for CPU); `repairs` of its systems needed the GEP
    /// safety net.
    pub fn on_batch_served(
        &self,
        engine: &str,
        occupancy: usize,
        reason: FlushReason,
        repairs: usize,
        engine_ms: f64,
    ) {
        match reason {
            FlushReason::Full => &self.flushes_full,
            FlushReason::Linger => &self.flushes_linger,
            FlushReason::Deadline => &self.flushes_deadline,
            FlushReason::Shutdown => &self.flushes_shutdown,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.repaired.fetch_add(repairs as u64, Ordering::Relaxed);
        *self.occupancy.lock().unwrap_or_else(|p| p.into_inner()).entry(occupancy).or_insert(0) +=
            occupancy as u64;
        *self
            .dispatch
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entry(engine.to_string())
            .or_insert(0) += occupancy as u64;
        *self
            .engine_ms
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entry(engine.to_string())
            .or_insert(0.0) += engine_ms;
    }

    /// Degradation accounting for one served flush: `retries` engine
    /// re-dispatches, `device_faults` launches aborted by the device,
    /// `corruptions` memory corruptions caught by verification, and
    /// whether the flush was ultimately `degraded` to an engine other
    /// than the one the planner chose (CPU safety net or a lower-ranked
    /// GPU candidate).
    pub fn on_degradation(
        &self,
        retries: u64,
        device_faults: u64,
        corruptions: u64,
        degraded: bool,
    ) {
        self.retries.fetch_add(retries, Ordering::Relaxed);
        self.device_faults.fetch_add(device_faults, Ordering::Relaxed);
        self.corruptions_caught.fetch_add(corruptions, Ordering::Relaxed);
        if degraded {
            self.degraded_flushes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One request whose response was delivered after its deadline.
    pub fn on_deadline_miss(&self) {
        self.deadline_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// One flush ran under the kernel sanitizer (the first GPU flush of its
    /// plan-cache size class), finding `errors` error-severity and
    /// `warnings` warning-severity diagnostic sites.
    pub fn on_flush_sanitized(&self, errors: u64, warnings: u64) {
        self.sanitized_flushes.fetch_add(1, Ordering::Relaxed);
        self.sanitizer_errors.fetch_add(errors, Ordering::Relaxed);
        self.sanitizer_warnings.fetch_add(warnings, Ordering::Relaxed);
    }

    /// One first-flush dynamic sanitize skipped because the static proof
    /// catalog already proves the planned kernel race/OOB/barrier-safe
    /// for the whole size family (at most one skip per size class — the
    /// skip consumes the same one-time token the sanitize would have).
    pub fn on_sanitize_skipped_by_proof(&self) {
        self.proof_skipped_sanitizes.fetch_add(1, Ordering::Relaxed);
    }

    /// One flush found its factorization in the cache (warm dispatch).
    pub fn on_factor_hit(&self) {
        self.factor_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// One flush carried a matrix key the cache had not factored yet.
    pub fn on_factor_miss(&self) {
        self.factor_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// `count` cached factorizations evicted (LRU pressure) or
    /// invalidated (failed warm verify).
    pub fn on_factor_evictions(&self, count: u64) {
        self.factor_evictions.fetch_add(count, Ordering::Relaxed);
    }

    /// One flush served entirely by back-substitution (no elimination).
    pub fn on_warm_flush(&self) {
        self.warm_flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// `count` Hager condition-estimator invocations spent by the static
    /// analyzer (at most one per matrix key — analysis is memoized).
    pub fn on_condest_calls(&self, count: u64) {
        self.condest_calls.fetch_add(count, Ordering::Relaxed);
    }

    /// One matrix key earned a live numeric certificate.
    pub fn on_cert_issued(&self) {
        self.certs_issued.fetch_add(1, Ordering::Relaxed);
    }

    /// One certified flush skipped the per-answer residual verify
    /// (NaN/Inf guard only).
    pub fn on_cert_skipped_verify(&self) {
        self.cert_skipped_verifies.fetch_add(1, Ordering::Relaxed);
    }

    /// One certified flush paid the deterministic 1-in-K sampled verify.
    pub fn on_cert_sampled_verify(&self) {
        self.cert_sampled_verifies.fetch_add(1, Ordering::Relaxed);
    }

    /// One certificate permanently revoked after a caught corruption.
    pub fn on_cert_revoked(&self) {
        self.certs_revoked.fetch_add(1, Ordering::Relaxed);
    }

    /// One request completed with end-to-end `latency`.
    pub fn on_complete(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let us = latency.as_micros().max(1) as u64;
        let bucket = (63 - us.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.latency_us[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Requests completed so far (drain-rate input for the
    /// `QueueFull::retry_after` hint).
    pub fn completed_total(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Consistent-enough copy of everything, plus the caller-supplied
    /// instantaneous gauges.
    pub fn snapshot(&self, queue_depth: usize, plan_tunes: u64, plan_hits: u64) -> MetricsSnapshot {
        let latency: Vec<u64> = self.latency_us.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            repaired: self.repaired.load(Ordering::Relaxed),
            flushes_full: self.flushes_full.load(Ordering::Relaxed),
            flushes_linger: self.flushes_linger.load(Ordering::Relaxed),
            flushes_deadline: self.flushes_deadline.load(Ordering::Relaxed),
            flushes_shutdown: self.flushes_shutdown.load(Ordering::Relaxed),
            sanitized_flushes: self.sanitized_flushes.load(Ordering::Relaxed),
            proof_skipped_sanitizes: self.proof_skipped_sanitizes.load(Ordering::Relaxed),
            degradation: DegradationState {
                retries: self.retries.load(Ordering::Relaxed),
                device_faults: self.device_faults.load(Ordering::Relaxed),
                corruptions_caught: self.corruptions_caught.load(Ordering::Relaxed),
                degraded_flushes: self.degraded_flushes.load(Ordering::Relaxed),
                deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
                breaker_opened: 0,
                breaker_closed: 0,
                breaker_denials: 0,
                breaker_states: BTreeMap::new(),
            },
            sanitizer_errors: self.sanitizer_errors.load(Ordering::Relaxed),
            sanitizer_warnings: self.sanitizer_warnings.load(Ordering::Relaxed),
            factor_hits: self.factor_hits.load(Ordering::Relaxed),
            factor_misses: self.factor_misses.load(Ordering::Relaxed),
            factor_evictions: self.factor_evictions.load(Ordering::Relaxed),
            warm_flushes: self.warm_flushes.load(Ordering::Relaxed),
            condest_calls: self.condest_calls.load(Ordering::Relaxed),
            certs_issued: self.certs_issued.load(Ordering::Relaxed),
            cert_skipped_verifies: self.cert_skipped_verifies.load(Ordering::Relaxed),
            cert_sampled_verifies: self.cert_sampled_verifies.load(Ordering::Relaxed),
            certs_revoked: self.certs_revoked.load(Ordering::Relaxed),
            queue_depth,
            plan_tunes,
            plan_hits,
            latency_p50_us: percentile_us(&latency, 0.50),
            latency_p95_us: percentile_us(&latency, 0.95),
            latency_p99_us: percentile_us(&latency, 0.99),
            occupancy_systems: self.occupancy.lock().unwrap_or_else(|p| p.into_inner()).clone(),
            dispatch_systems: self.dispatch.lock().unwrap_or_else(|p| p.into_inner()).clone(),
            engine_ms: self.engine_ms.lock().unwrap_or_else(|p| p.into_inner()).clone(),
            devices: Vec::new(),
        }
    }
}

/// Upper bound (in µs) of the log2 bucket containing quantile `q`, or 0
/// when no samples were recorded.
fn percentile_us(buckets: &[u64], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64) * q).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return 1u64 << (i + 1); // bucket upper bound
        }
    }
    1u64 << buckets.len()
}

/// Point-in-time view of the service's resilience machinery: how often it
/// retried, degraded, or missed deadlines, and what the per-engine circuit
/// breakers are doing. All-zero on a healthy, fault-free service — the
/// contract the counter-neutrality tests pin down.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DegradationState {
    /// Engine re-dispatches after a transient device fault.
    pub retries: u64,
    /// Launches aborted by an (injected or real) device fault.
    pub device_faults: u64,
    /// Memory corruptions caught by verification and repaired.
    pub corruptions_caught: u64,
    /// Flushes served on a different engine than planned (CPU safety net
    /// or a lower-ranked GPU candidate).
    pub degraded_flushes: u64,
    /// Responses delivered after their caller-set deadline.
    pub deadline_misses: u64,
    /// Circuit breakers tripped Closed→Open.
    pub breaker_opened: u64,
    /// Circuit breakers recovered HalfOpen→Closed.
    pub breaker_closed: u64,
    /// Flushes denied an engine by an open breaker.
    pub breaker_denials: u64,
    /// Engine → breaker state label ("closed" / "open" / "half-open").
    pub breaker_states: BTreeMap<String, String>,
}

impl DegradationState {
    /// `true` when nothing degraded: the state a fault-free run must show.
    pub fn is_quiet(&self) -> bool {
        self.retries == 0
            && self.device_faults == 0
            && self.corruptions_caught == 0
            && self.degraded_flushes == 0
            && self.deadline_misses == 0
            && self.breaker_opened == 0
            && self.breaker_closed == 0
            && self.breaker_denials == 0
            && self.breaker_states.values().all(|s| s == "closed")
    }
}

/// Per-device gauges for the metrics snapshot: one entry per pool device,
/// id order, filled by `SolverService::metrics` from the device pool and
/// the `dev{id}:`-prefixed breaker keys.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DeviceSnapshot {
    /// Device id within the pool (also its queue index).
    pub id: usize,
    /// Batches dispatched on this device (GPU engines only).
    pub dispatched: u64,
    /// Simulated device milliseconds consumed by those batches.
    pub device_ms: f64,
    /// Batches this device's worker stole from other devices' queues.
    pub steals: u64,
    /// Whether the pool has marked the device lost (sticky).
    pub lost: bool,
    /// Worst breaker state across this device's engines
    /// ("closed" / "half-open" / "open").
    pub breaker: String,
}

/// Point-in-time copy of the service's metrics — the service's
/// machine-readable status report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests completed (ticket fulfilled).
    pub completed: u64,
    /// Requests rejected at admission (backpressure).
    pub rejected: u64,
    /// Systems re-solved by the GEP safety net.
    pub repaired: u64,
    /// Batches flushed because they reached the target size.
    pub flushes_full: u64,
    /// Batches flushed by the linger deadline.
    pub flushes_linger: u64,
    /// Batches flushed early because a member's completion deadline would
    /// not survive the remaining linger window.
    pub flushes_deadline: u64,
    /// Batches flushed by shutdown drain.
    pub flushes_shutdown: u64,
    /// Resilience counters and breaker states (all-zero when healthy).
    pub degradation: DegradationState,
    /// Flushes that ran under the kernel sanitizer (first GPU flush of
    /// each plan-cache size class).
    pub sanitized_flushes: u64,
    /// First-flush sanitizes *replaced by a static proof*: size classes
    /// whose planned kernel the `kernel-verify` proof catalog proves safe
    /// skip the sanitized launch (at most one per size class).
    pub proof_skipped_sanitizes: u64,
    /// Error-severity sanitizer diagnostic sites found on serving traffic.
    pub sanitizer_errors: u64,
    /// Warning-severity sanitizer diagnostic sites (bank conflicts,
    /// non-finite origins) found on serving traffic.
    pub sanitizer_warnings: u64,
    /// Flushes whose factorization came from the cache (warm dispatch).
    /// Factor counters are *activity*, not degradation: a quiet
    /// [`DegradationState`] stays quiet however warm the traffic runs.
    pub factor_hits: u64,
    /// Flushes that carried a matrix key the cache had not factored yet.
    pub factor_misses: u64,
    /// Cached factorizations evicted by LRU pressure or invalidated
    /// after a failed warm verify.
    pub factor_evictions: u64,
    /// Flushes served entirely by back-substitution (no elimination).
    pub warm_flushes: u64,
    /// Hager condition-estimator invocations by the static analyzer (at
    /// most one per matrix key). Certification counters, like the factor
    /// counters above, are *activity*, not degradation.
    pub condest_calls: u64,
    /// Matrix keys holding a live numeric certificate.
    pub certs_issued: u64,
    /// Certified flushes that skipped the per-answer residual verify.
    pub cert_skipped_verifies: u64,
    /// Certified flushes that paid the deterministic 1-in-K sample.
    pub cert_sampled_verifies: u64,
    /// Certificates permanently revoked after a caught corruption.
    pub certs_revoked: u64,
    /// Admission queue depth at snapshot time.
    pub queue_depth: usize,
    /// Autotune tournaments run so far.
    pub plan_tunes: u64,
    /// Plans served from cache.
    pub plan_hits: u64,
    /// Median end-to-end latency (log2-bucket upper bound, µs).
    pub latency_p50_us: u64,
    /// 95th-percentile latency (µs).
    pub latency_p95_us: u64,
    /// 99th-percentile latency (µs).
    pub latency_p99_us: u64,
    /// Batch size → systems served in batches of that size.
    pub occupancy_systems: BTreeMap<usize, u64>,
    /// Engine spelling → systems served on that engine.
    pub dispatch_systems: BTreeMap<String, u64>,
    /// Engine spelling → engine milliseconds consumed (simulated device
    /// time for GPU engines, wall-clock for CPU engines).
    pub engine_ms: BTreeMap<String, f64>,
    /// Per-device gauges, pool id order. Empty in a bare
    /// [`ServiceMetrics::snapshot`]; `SolverService::metrics` fills it
    /// from the device pool.
    pub devices: Vec<DeviceSnapshot>,
}

impl MetricsSnapshot {
    /// Total systems accounted for by the dispatch counts.
    pub fn dispatched_total(&self) -> u64 {
        self.dispatch_systems.values().sum()
    }

    /// Total systems accounted for by the occupancy histogram.
    pub fn occupancy_total(&self) -> u64 {
        self.occupancy_systems.values().sum()
    }

    /// Total batches flushed, across all flush reasons.
    pub fn flushes_total(&self) -> u64 {
        self.flushes_full + self.flushes_linger + self.flushes_deadline + self.flushes_shutdown
    }

    /// Serializes the snapshot as a JSON object (hand-rolled: the offline
    /// `serde` shim has no serializer).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        let scalars: [(&str, u64); 27] = [
            ("submitted", self.submitted),
            ("completed", self.completed),
            ("rejected", self.rejected),
            ("repaired", self.repaired),
            ("flushes_full", self.flushes_full),
            ("flushes_linger", self.flushes_linger),
            ("flushes_deadline", self.flushes_deadline),
            ("flushes_shutdown", self.flushes_shutdown),
            ("sanitized_flushes", self.sanitized_flushes),
            ("proof_skipped_sanitizes", self.proof_skipped_sanitizes),
            ("sanitizer_errors", self.sanitizer_errors),
            ("sanitizer_warnings", self.sanitizer_warnings),
            ("factor_hits", self.factor_hits),
            ("factor_misses", self.factor_misses),
            ("factor_evictions", self.factor_evictions),
            ("warm_flushes", self.warm_flushes),
            ("condest_calls", self.condest_calls),
            ("certs_issued", self.certs_issued),
            ("cert_skipped_verifies", self.cert_skipped_verifies),
            ("cert_sampled_verifies", self.cert_sampled_verifies),
            ("certs_revoked", self.certs_revoked),
            ("queue_depth", self.queue_depth as u64),
            ("plan_tunes", self.plan_tunes),
            ("plan_hits", self.plan_hits),
            ("latency_p50_us", self.latency_p50_us),
            ("latency_p95_us", self.latency_p95_us),
            ("latency_p99_us", self.latency_p99_us),
        ];
        for (key, value) in scalars {
            s.push_str(&format!("\"{key}\":{value},"));
        }
        s.push_str("\"degradation\":{");
        let d = &self.degradation;
        let degradation_scalars: [(&str, u64); 8] = [
            ("retries", d.retries),
            ("device_faults", d.device_faults),
            ("corruptions_caught", d.corruptions_caught),
            ("degraded_flushes", d.degraded_flushes),
            ("deadline_misses", d.deadline_misses),
            ("breaker_opened", d.breaker_opened),
            ("breaker_closed", d.breaker_closed),
            ("breaker_denials", d.breaker_denials),
        ];
        for (key, value) in degradation_scalars {
            s.push_str(&format!("\"{key}\":{value},"));
        }
        s.push_str("\"breaker_states\":{");
        for (i, (engine, state)) in d.breaker_states.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{engine}\":\"{state}\""));
        }
        s.push_str("}},");
        s.push_str("\"occupancy_systems\":{");
        for (i, (size, systems)) in self.occupancy_systems.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{size}\":{systems}"));
        }
        s.push_str("},\"dispatch_systems\":{");
        for (i, (engine, systems)) in self.dispatch_systems.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{engine}\":{systems}"));
        }
        s.push_str("},\"engine_ms\":{");
        for (i, (engine, ms)) in self.engine_ms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{engine}\":{ms:.3}"));
        }
        s.push_str("},\"devices\":[");
        for (i, dev) in self.devices.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"id\":{},\"dispatched\":{},\"device_ms\":{:.3},\"steals\":{},\
                 \"lost\":{},\"breaker\":\"{}\"}}",
                dev.id, dev.dispatched, dev.device_ms, dev.steals, dev.lost, dev.breaker
            ));
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_between_dispatch_and_occupancy() {
        let m = ServiceMetrics::new();
        for _ in 0..10 {
            m.on_submit();
        }
        m.on_batch_served("cr+pcr@32", 6, FlushReason::Full, 1, 0.25);
        m.on_batch_served("cpu-thomas", 3, FlushReason::Linger, 0, 0.5);
        m.on_batch_served("cpu-thomas", 1, FlushReason::Shutdown, 0, 0.25);
        for _ in 0..10 {
            m.on_complete(Duration::from_micros(300));
        }
        let snap = m.snapshot(0, 2, 1);
        assert_eq!(snap.submitted, 10);
        assert_eq!(snap.completed, 10);
        assert_eq!(snap.dispatched_total(), 10);
        assert_eq!(snap.occupancy_total(), 10);
        assert_eq!(snap.flushes_total(), 3);
        assert_eq!(snap.repaired, 1);
        // 6 systems rode a size-6 batch, 3 a size-3, 1 alone.
        assert_eq!(snap.occupancy_systems[&6], 6);
        assert_eq!(snap.occupancy_systems[&3], 3);
        assert_eq!(snap.occupancy_systems[&1], 1);
        assert_eq!(snap.dispatch_systems["cpu-thomas"], 4);
        assert_eq!(snap.engine_ms["cpu-thomas"], 0.75);
        assert_eq!(snap.engine_ms["cr+pcr@32"], 0.25);
    }

    #[test]
    fn percentiles_come_from_log2_buckets() {
        let m = ServiceMetrics::new();
        // 99 fast (≈100 µs) + 1 slow (≈100 ms).
        for _ in 0..99 {
            m.on_complete(Duration::from_micros(100));
        }
        m.on_complete(Duration::from_millis(100));
        let snap = m.snapshot(0, 0, 0);
        assert_eq!(snap.latency_p50_us, 128); // 100 µs lives in [64,128)
        assert_eq!(snap.latency_p95_us, 128);
        assert_eq!(snap.latency_p99_us, 128);
        // The tail sample only surfaces at p100-ish ranks; verify it's
        // recorded by pushing a second slow sample and checking p99 moves.
        for _ in 0..5 {
            m.on_complete(Duration::from_millis(100));
        }
        let snap = m.snapshot(0, 0, 0);
        assert!(snap.latency_p99_us >= 1 << 17, "{}", snap.latency_p99_us); // ≈131 ms bucket
    }

    #[test]
    fn empty_metrics_report_zero_percentiles() {
        let snap = ServiceMetrics::new().snapshot(3, 0, 0);
        assert_eq!(snap.latency_p50_us, 0);
        assert_eq!(snap.queue_depth, 3);
    }

    #[test]
    fn degradation_state_is_quiet_until_faults_happen() {
        let m = ServiceMetrics::new();
        assert!(m.snapshot(0, 0, 0).degradation.is_quiet(), "fresh metrics are quiet");
        m.on_degradation(2, 3, 1, true);
        m.on_degradation(0, 0, 0, false); // a clean flush adds nothing
        m.on_deadline_miss();
        m.on_batch_served("cr", 4, FlushReason::Deadline, 0, 0.1);
        let snap = m.snapshot(0, 0, 0);
        let d = &snap.degradation;
        assert!(!d.is_quiet());
        assert_eq!(d.retries, 2);
        assert_eq!(d.device_faults, 3);
        assert_eq!(d.corruptions_caught, 1);
        assert_eq!(d.degraded_flushes, 1);
        assert_eq!(d.deadline_misses, 1);
        assert_eq!(snap.flushes_deadline, 1);
        assert_eq!(snap.flushes_total(), 1);
        let json = snap.to_json();
        assert!(json.contains("\"degradation\":{\"retries\":2"), "{json}");
        assert!(json.contains("\"flushes_deadline\":1"), "{json}");
        assert!(json.contains("\"breaker_states\":{}"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn factor_counters_accumulate_without_disturbing_quiet() {
        let m = ServiceMetrics::new();
        m.on_factor_miss();
        m.on_factor_hit();
        m.on_factor_hit();
        m.on_factor_evictions(3);
        m.on_warm_flush();
        let snap = m.snapshot(0, 0, 0);
        assert_eq!(snap.factor_hits, 2);
        assert_eq!(snap.factor_misses, 1);
        assert_eq!(snap.factor_evictions, 3);
        assert_eq!(snap.warm_flushes, 1);
        // Cache traffic is activity, not degradation: warm serving on a
        // fault-free run must leave the quiet invariant intact.
        assert!(snap.degradation.is_quiet());
        let json = snap.to_json();
        assert!(json.contains("\"factor_hits\":2"), "{json}");
        assert!(json.contains("\"warm_flushes\":1"), "{json}");
    }

    #[test]
    fn certification_counters_accumulate_without_disturbing_quiet() {
        let m = ServiceMetrics::new();
        m.on_condest_calls(1);
        m.on_cert_issued();
        m.on_cert_sampled_verify();
        m.on_cert_skipped_verify();
        m.on_cert_skipped_verify();
        m.on_cert_revoked();
        let snap = m.snapshot(0, 0, 0);
        assert_eq!(snap.condest_calls, 1);
        assert_eq!(snap.certs_issued, 1);
        assert_eq!(snap.cert_sampled_verifies, 1);
        assert_eq!(snap.cert_skipped_verifies, 2);
        assert_eq!(snap.certs_revoked, 1);
        // Certification traffic is activity, not degradation.
        assert!(snap.degradation.is_quiet());
        let json = snap.to_json();
        assert!(json.contains("\"condest_calls\":1"), "{json}");
        assert!(json.contains("\"cert_skipped_verifies\":2"), "{json}");
        assert!(json.contains("\"certs_revoked\":1"), "{json}");
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let m = ServiceMetrics::new();
        m.on_submit();
        m.on_batch_served("pcr", 1, FlushReason::Linger, 0, 0.125);
        m.on_complete(Duration::from_micros(50));
        let json = m.snapshot(0, 1, 0).to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        for key in [
            "\"submitted\":1",
            "\"completed\":1",
            "\"proof_skipped_sanitizes\":0",
            "\"dispatch_systems\":{\"pcr\":1}",
            "\"occupancy_systems\":{\"1\":1}",
            "\"engine_ms\":{\"pcr\":0.125}",
            "\"plan_tunes\":1",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Balanced braces (a cheap structural check without a parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Bare snapshots carry an empty device block — the service fills it.
        assert!(json.ends_with("\"devices\":[]}"), "{json}");
    }

    #[test]
    fn devices_block_serializes_per_device_gauges() {
        let m = ServiceMetrics::new();
        m.on_batch_served("cr+pcr@32", 2, FlushReason::Full, 0, 0.5);
        let mut snap = m.snapshot(0, 0, 0);
        snap.devices = vec![
            DeviceSnapshot {
                id: 0,
                dispatched: 3,
                device_ms: 0.5,
                steals: 1,
                lost: false,
                breaker: "closed".to_string(),
            },
            DeviceSnapshot {
                id: 1,
                dispatched: 0,
                device_ms: 0.0,
                steals: 0,
                lost: true,
                breaker: "open".to_string(),
            },
        ];
        let json = snap.to_json();
        assert!(
            json.contains(
                "\"devices\":[{\"id\":0,\"dispatched\":3,\"device_ms\":0.500,\"steals\":1,\
                 \"lost\":false,\"breaker\":\"closed\"}"
            ),
            "{json}"
        );
        assert!(json.contains("{\"id\":1,"), "{json}");
        assert!(json.contains("\"lost\":true,\"breaker\":\"open\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
