//! Planner: autotune once per size class, cache the winning plan.
//!
//! The paper's headline result is that *which* solver wins depends on the
//! system size and the hardware (Figures 6–8: CR+PCR at 512, PCR at small
//! sizes, global-memory CR beyond shared capacity). A serving layer cannot
//! re-derive that choice per request, so the planner runs the tournament
//! **once** per `(n, element width, device)` key — every candidate from
//! [`GpuAlgorithm::paper_five`] that fits shared memory, the global-memory
//! fallback, and the CPU baseline — and caches the winner in a
//! [`PlanCache`]. Subsequent flushes of the same size class dispatch in
//! O(1) with a cache hit.
//!
//! Scoring follows the repo's figure methodology: GPU candidates are
//! scored by the simulator's cost model (`TimingReport::total_ms`, i.e.
//! kernel + PCIe transfer), the CPU baseline by measured wall-clock of the
//! sequential Thomas solve on the same probe batch. Non-power-of-two
//! sizes, which no GPU kernel accepts, route straight to the CPU.

use gpu_sim::{Clock, Launcher};
use gpu_solvers::{solve_batch, GpuAlgorithm};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use tridiag_core::{Generator, Real, SystemBatch, Workload};

/// CPU execution engines the planner may pick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuEngine {
    /// Sequential Thomas algorithm (the paper's "GE" baseline) with
    /// per-system GEP repair on verification failure.
    Thomas,
    /// Gaussian elimination with partial pivoting everywhere — chosen only
    /// as an explicit override, never by the tournament (it is strictly
    /// slower than Thomas on well-conditioned systems).
    Gep,
}

/// Where a batch is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// One of the simulated GPU kernels.
    Gpu(GpuAlgorithm),
    /// A CPU baseline.
    Cpu(CpuEngine),
}

impl core::fmt::Display for Engine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Engine::Gpu(alg) => write!(f, "{alg}"),
            Engine::Cpu(CpuEngine::Thomas) => f.write_str("cpu-thomas"),
            Engine::Cpu(CpuEngine::Gep) => f.write_str("cpu-gep"),
        }
    }
}

/// The cached outcome of one autotune tournament.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    /// The winning engine.
    pub engine: Engine,
    /// The winner's score: milliseconds to serve the probe batch
    /// (simulated for GPU engines, wall-clock for CPU).
    pub predicted_ms: f64,
    /// How many systems the probe batch contained.
    pub probe_count: usize,
}

/// Cache key: system size, element width, device.
type PlanKey = (usize, usize, &'static str);

/// Concurrent plan cache with hit/tune accounting.
///
/// Tuning is serialized per cache (a `Mutex` around the map): if two
/// workers miss on the same key simultaneously, the second waits and then
/// hits — each key is tuned at most once. Alongside the winning [`Plan`]
/// the cache keeps the full tournament **ranking** (every admissible
/// engine, best score first) so the dispatcher's retry loop can exclude a
/// faulting engine and fall to the next-best candidate without re-tuning.
pub struct PlanCache {
    plans: Mutex<HashMap<PlanKey, (Plan, Vec<Engine>)>>,
    /// Keys whose first GPU flush has (started) running under the kernel
    /// sanitizer — see [`PlanCache::begin_sanitize`].
    sanitized: Mutex<HashSet<PlanKey>>,
    hits: AtomicU64,
    tunes: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            plans: Mutex::new(HashMap::new()),
            sanitized: Mutex::new(HashSet::new()),
            hits: AtomicU64::new(0),
            tunes: AtomicU64::new(0),
        }
    }

    /// Claims the one-time sanitize token for the `(n, width, device)` size
    /// class: returns `true` exactly once per key. The caller that wins the
    /// token runs that flush with the kernel sanitizer recording, so every
    /// size class the service ever serves on the GPU gets checked for
    /// races/hazards/OOB at least once on real traffic.
    pub fn begin_sanitize<T: Real>(&self, launcher: &Launcher, n: usize) -> bool {
        let key: PlanKey = (n, T::BYTES, launcher.device.name);
        self.sanitized.lock().unwrap_or_else(|p| p.into_inner()).insert(key)
    }

    /// Plans served from cache without re-tuning.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Autotune tournaments actually run.
    pub fn tunes(&self) -> u64 {
        self.tunes.load(Ordering::Relaxed)
    }

    /// Returns the plan for size `n` with element type `T`, running the
    /// tournament on first use of the key.
    pub fn plan_for<T: Real>(&self, launcher: &Launcher, n: usize, probe_count: usize) -> Plan {
        self.plan_for_on::<T>(launcher, n, probe_count, &Clock::real())
    }

    /// [`PlanCache::plan_for`] with the tournament timed on `clock` — a
    /// simulated clock scores the CPU baseline with the deterministic cost
    /// model instead of the wall, so replayed tournaments pick the same
    /// winner bit-for-bit.
    pub fn plan_for_on<T: Real>(
        &self,
        launcher: &Launcher,
        n: usize,
        probe_count: usize,
        clock: &Clock,
    ) -> Plan {
        let key: PlanKey = (n, T::BYTES, launcher.device.name);
        let mut plans = self.plans.lock().unwrap_or_else(|p| p.into_inner());
        if let Some((plan, _)) = plans.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *plan;
        }
        let (plan, ranking) = autotune_ranked_on::<T>(launcher, n, probe_count, clock);
        self.tunes.fetch_add(1, Ordering::Relaxed);
        plans.insert(key, (plan, ranking));
        plan
    }

    /// The full tournament ranking (best engine first) for size `n`,
    /// tuning on first use exactly like [`PlanCache::plan_for`]. The
    /// dispatcher walks this list when an engine keeps faulting.
    pub fn ranking_for<T: Real>(
        &self,
        launcher: &Launcher,
        n: usize,
        probe_count: usize,
    ) -> Vec<Engine> {
        self.ranking_for_on::<T>(launcher, n, probe_count, &Clock::real())
    }

    /// [`PlanCache::ranking_for`] timed on `clock` (see
    /// [`PlanCache::plan_for_on`] for why replay needs this).
    pub fn ranking_for_on<T: Real>(
        &self,
        launcher: &Launcher,
        n: usize,
        probe_count: usize,
        clock: &Clock,
    ) -> Vec<Engine> {
        let key: PlanKey = (n, T::BYTES, launcher.device.name);
        let mut plans = self.plans.lock().unwrap_or_else(|p| p.into_inner());
        if let Some((_, ranking)) = plans.get(&key) {
            return ranking.clone();
        }
        let (plan, ranking) = autotune_ranked_on::<T>(launcher, n, probe_count, clock);
        self.tunes.fetch_add(1, Ordering::Relaxed);
        plans.insert(key, (plan, ranking.clone()));
        ranking
    }

    /// Read-only peek, never tunes. For tests and introspection.
    pub fn peek<T: Real>(&self, launcher: &Launcher, n: usize) -> Option<Plan> {
        let key: PlanKey = (n, T::BYTES, launcher.device.name);
        self.plans.lock().unwrap_or_else(|p| p.into_inner()).get(&key).map(|(p, _)| *p)
    }
}

/// Runs the candidate tournament for size `n` and returns the winner.
///
/// Candidates:
/// * the paper's five (with §5.3 switch points), each admitted only when
///   [`GpuAlgorithm::fits_shared`] says its footprint fits the device;
/// * [`GpuAlgorithm::CrGlobalOnly`] — always admitted for power-of-two
///   sizes (the paper's oversized-system fallback);
/// * the sequential CPU Thomas baseline, timed wall-clock.
///
/// Candidates that error on the probe (e.g. shared-memory overflow the
/// admission rule missed) or return non-finite solutions (RD overflow on
/// dominant systems, Figure 18) are disqualified rather than crowned.
pub fn autotune<T: Real>(launcher: &Launcher, n: usize, probe_count: usize) -> Plan {
    autotune_ranked::<T>(launcher, n, probe_count).0
}

/// [`autotune`], but also returning the **full ranking**: every candidate
/// that survived the tournament (no probe error, finite solutions), sorted
/// by score ascending. The CPU Thomas baseline is always present, so the
/// ranking is never empty and always ends in an engine that cannot
/// device-fault — the dispatcher's retry ladder terminates.
pub fn autotune_ranked<T: Real>(
    launcher: &Launcher,
    n: usize,
    probe_count: usize,
) -> (Plan, Vec<Engine>) {
    autotune_ranked_on::<T>(launcher, n, probe_count, &Clock::real())
}

/// [`autotune_ranked`] with the CPU baseline timed on `clock`: wall-clock
/// on a real clock (production behaviour), the deterministic per-row cost
/// model on a simulated one — a replayed tournament must score every
/// candidate identically to the captured run, and the wall never repeats.
/// GPU candidates are scored by the simulator's cost model either way,
/// which is already deterministic.
pub fn autotune_ranked_on<T: Real>(
    launcher: &Launcher,
    n: usize,
    probe_count: usize,
    clock: &Clock,
) -> (Plan, Vec<Engine>) {
    let probe_count = probe_count.max(1);
    if n < 2 || !n.is_power_of_two() {
        // No GPU kernel accepts this size; measure the CPU so the score is
        // still meaningful.
        let probe = cpu_probe::<T>(n, probe_count);
        let ms = probe.as_ref().map(|b| time_cpu_thomas(b, clock)).unwrap_or(f64::INFINITY);
        let plan = Plan { engine: Engine::Cpu(CpuEngine::Thomas), predicted_ms: ms, probe_count };
        return (plan, vec![plan.engine]);
    }

    let probe: SystemBatch<T> = Generator::new(0x5EED_CAFE)
        .batch(Workload::DiagonallyDominant, n, probe_count)
        .expect("probe batch generation cannot fail for n >= 2");

    let mut candidates: Vec<GpuAlgorithm> = GpuAlgorithm::paper_five(n)
        .into_iter()
        .filter(|alg| alg.validate(n).is_ok())
        .filter(|alg| alg.fits_shared(n, T::BYTES, &launcher.device))
        .collect();
    candidates.push(GpuAlgorithm::CrGlobalOnly);

    let mut scored: Vec<(Engine, f64)> = Vec::with_capacity(candidates.len() + 1);
    for alg in candidates {
        let Ok(report) = solve_batch(launcher, alg, &probe) else { continue };
        if report.solutions.first_non_finite().is_some() {
            continue; // overflowed on the probe — unfit to serve
        }
        scored.push((Engine::Gpu(alg), report.timing.total_ms()));
    }
    scored.push((Engine::Cpu(CpuEngine::Thomas), time_cpu_thomas(&probe, clock)));
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(core::cmp::Ordering::Equal));

    let (engine, predicted_ms) = scored[0];
    let ranking = scored.into_iter().map(|(e, _)| e).collect();
    (Plan { engine, predicted_ms, probe_count }, ranking)
}

fn cpu_probe<T: Real>(n: usize, count: usize) -> Option<SystemBatch<T>> {
    if n < 1 {
        return None;
    }
    SystemBatch::generate(count, |i| {
        Generator::new(0x5EED_CAFE ^ i as u64).system(Workload::DiagonallyDominant, n)
    })
    .ok()
}

/// Milliseconds for one sequential Thomas pass over `batch`: wall-clock
/// (median of three runs, to shrug off scheduler noise) on a real clock,
/// or the deterministic per-row model — matching the dispatcher's
/// simulated CPU engine time — on a simulated one.
fn time_cpu_thomas<T: Real>(batch: &SystemBatch<T>, clock: &Clock) -> f64 {
    if clock.is_sim() {
        return crate::dispatch::sim_cpu_ns(CpuEngine::Thomas, batch.n(), batch.count()) as f64
            / 1e6;
    }
    let mut samples = [0.0f64; 3];
    for s in samples.iter_mut() {
        let start = Instant::now();
        let out = cpu_solvers::solve_batch_seq(&cpu_solvers::Thomas, batch);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        *s = if out.is_ok() { elapsed } else { f64::INFINITY };
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_display_is_canonical() {
        assert_eq!(Engine::Gpu(GpuAlgorithm::CrPcr { m: 256 }).to_string(), "cr+pcr@256");
        assert_eq!(Engine::Cpu(CpuEngine::Thomas).to_string(), "cpu-thomas");
        assert_eq!(Engine::Cpu(CpuEngine::Gep).to_string(), "cpu-gep");
    }

    #[test]
    fn oversized_systems_avoid_shared_memory_kernels() {
        // f32, n = 4096: 5*4096*4 = 80 KiB ≫ 16 KiB shared — only the
        // global-memory path (or the CPU) may win.
        let launcher = Launcher::gtx280();
        let plan = autotune::<f32>(&launcher, 4096, 4);
        match plan.engine {
            Engine::Gpu(alg) => assert_eq!(alg, GpuAlgorithm::CrGlobalOnly),
            Engine::Cpu(_) => {}
        }
    }

    #[test]
    fn non_pow2_routes_to_cpu() {
        let launcher = Launcher::gtx280();
        let plan = autotune::<f32>(&launcher, 100, 4);
        assert_eq!(plan.engine, Engine::Cpu(CpuEngine::Thomas));
    }

    #[test]
    fn cache_tunes_once_then_hits() {
        let launcher = Launcher::gtx280();
        let cache = PlanCache::new();
        assert!(cache.peek::<f32>(&launcher, 128).is_none());
        let first = cache.plan_for::<f32>(&launcher, 128, 4);
        assert_eq!(cache.tunes(), 1);
        assert_eq!(cache.hits(), 0);
        let second = cache.plan_for::<f32>(&launcher, 128, 4);
        assert_eq!(cache.tunes(), 1, "second lookup must not re-tune");
        assert_eq!(cache.hits(), 1);
        assert_eq!(first, second);
        assert_eq!(cache.peek::<f32>(&launcher, 128), Some(first));
    }

    #[test]
    fn cache_keys_on_element_width() {
        // f64 doubles the shared footprint, so f32 and f64 plans are
        // separate cache entries.
        let launcher = Launcher::gtx280();
        let cache = PlanCache::new();
        cache.plan_for::<f32>(&launcher, 256, 4);
        cache.plan_for::<f64>(&launcher, 256, 4);
        assert_eq!(cache.tunes(), 2);
    }

    #[test]
    fn winner_fits_the_device_and_has_a_finite_score() {
        // Whatever wins the tournament (the CPU/GPU cut depends on host
        // wall-clock, which this test must not assume), the plan is always
        // executable: a GPU winner fits the device, the score is finite.
        let launcher = Launcher::gtx280();
        for n in [64usize, 512, 4096] {
            let plan = autotune::<f32>(&launcher, n, 8);
            assert!(plan.predicted_ms.is_finite(), "n={n}");
            if let Engine::Gpu(alg) = plan.engine {
                assert!(alg.fits_shared(n, 4, &launcher.device), "n={n} {alg}");
            }
        }
    }

    #[test]
    fn ranking_is_sorted_always_contains_cpu_and_shares_the_tune() {
        let launcher = Launcher::gtx280();
        let cache = PlanCache::new();
        let ranking = cache.ranking_for::<f32>(&launcher, 256, 4);
        assert_eq!(cache.tunes(), 1);
        assert!(!ranking.is_empty());
        // The winner heads the list and matches the cached plan.
        let plan = cache.plan_for::<f32>(&launcher, 256, 4);
        assert_eq!(cache.tunes(), 1, "ranking and plan share one tournament");
        assert_eq!(ranking[0], plan.engine);
        // The ladder always terminates in an engine that cannot fault.
        assert!(
            ranking.contains(&Engine::Cpu(CpuEngine::Thomas)),
            "CPU baseline must always be ranked: {ranking:?}"
        );
        // Several GPU candidates fit at n = 256, so retries have somewhere
        // to go before the CPU.
        assert!(ranking.iter().filter(|e| matches!(e, Engine::Gpu(_))).count() >= 2, "{ranking:?}");
    }

    #[test]
    fn non_pow2_ranking_is_cpu_only() {
        let launcher = Launcher::gtx280();
        let (plan, ranking) = autotune_ranked::<f32>(&launcher, 100, 4);
        assert_eq!(plan.engine, Engine::Cpu(CpuEngine::Thomas));
        assert_eq!(ranking, vec![Engine::Cpu(CpuEngine::Thomas)]);
    }

    #[test]
    fn among_gpu_candidates_shared_kernels_beat_global_only_at_512() {
        // Deterministic simulator-only check of the paper's ~3x claim:
        // the tournament would never pick CrGlobalOnly while a shared
        // kernel fits, because its simulated time is strictly worse.
        let launcher = Launcher::gtx280();
        let probe: SystemBatch<f32> =
            Generator::new(0x5EED_CAFE).batch(Workload::DiagonallyDominant, 512, 8).unwrap();
        let shared = solve_batch(&launcher, GpuAlgorithm::CrPcr { m: 256 }, &probe).unwrap();
        let global = solve_batch(&launcher, GpuAlgorithm::CrGlobalOnly, &probe).unwrap();
        assert!(
            shared.timing.total_ms() < global.timing.total_ms(),
            "{} vs {}",
            shared.timing.total_ms(),
            global.timing.total_ms()
        );
    }
}
