//! Bounded admission queue with reject-on-full backpressure.
//!
//! The front door of the service. Unlike an unbounded channel, admission is
//! capped: when the queue is at capacity [`BoundedQueue::push`] fails
//! *immediately* instead of blocking the submitter — the service sheds load
//! at the edge rather than letting latency grow without bound (the same
//! policy as any production inference server's admission controller).
//!
//! The consumer side supports deadline-bounded popping
//! ([`BoundedQueue::pop_until`]) so the batcher can sleep exactly until its
//! earliest linger deadline, whichever of "new request" or "time to flush"
//! comes first.

use gpu_sim::{Clock, Tick};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Outcome of a push attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; nothing was enqueued.
    Full,
    /// The queue has been closed; nothing was enqueued.
    Closed,
}

/// Outcome of a deadline-bounded pop.
#[derive(Debug)]
pub enum Pop<R> {
    /// An item was dequeued.
    Item(R),
    /// The deadline passed with the queue still empty.
    TimedOut,
    /// The queue is closed *and* fully drained — the consumer is done.
    Drained,
}

struct State<R> {
    items: VecDeque<R>,
    closed: bool,
}

/// A multi-producer single-consumer bounded queue (`Mutex` + `Condvar`).
pub struct BoundedQueue<R> {
    state: Mutex<State<R>>,
    nonempty: Condvar,
    capacity: usize,
}

impl<R> BoundedQueue<R> {
    /// Creates a queue admitting at most `capacity` pending items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be >= 1");
        Self {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            nonempty: Condvar::new(),
            capacity,
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (approximate the instant the lock is released).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue; never blocks.
    pub fn push(&self, item: R) -> Result<(), PushError> {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if s.closed {
            return Err(PushError::Closed);
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        s.items.push_back(item);
        drop(s);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Dequeues one item, waiting until `deadline` on `clock` (forever
    /// when `None`).
    ///
    /// Once closed, remaining items are still handed out in order;
    /// [`Pop::Drained`] is only returned when closed *and* empty, so no
    /// admitted request is ever dropped by shutdown.
    ///
    /// Under a simulated clock the wait parks in short real quanta and
    /// re-checks virtual time (see [`Clock::park_budget`]) so a deadline
    /// advanced by another thread is observed promptly; a deadline that
    /// has already virtually passed returns [`Pop::TimedOut`] without
    /// parking at all.
    pub fn pop_until(&self, deadline: Option<Tick>, clock: &Clock) -> Pop<R> {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(item) = s.items.pop_front() {
                return Pop::Item(item);
            }
            if s.closed {
                return Pop::Drained;
            }
            match deadline {
                None => {
                    s = self.nonempty.wait(s).unwrap_or_else(|p| p.into_inner());
                }
                Some(d) => match clock.park_budget(d) {
                    None => return Pop::TimedOut,
                    Some(budget) => {
                        let (guard, _timeout) = self
                            .nonempty
                            .wait_timeout(s, budget)
                            .unwrap_or_else(|p| p.into_inner());
                        s = guard;
                        // A sim clock that cannot move on its own would
                        // spin here forever: the batcher is the only
                        // thread advancing it, so push it to the deadline
                        // once the real quantum elapsed fruitlessly.
                        if clock.is_sim() && s.items.is_empty() && !s.closed {
                            clock.advance_to(d);
                        }
                    }
                },
            }
        }
    }

    /// Closes the queue: future pushes fail, the consumer drains what is
    /// left and then observes [`Pop::Drained`].
    pub fn close(&self) {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        s.closed = true;
        drop(s);
        self.nonempty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn push_rejects_instead_of_blocking_when_full() {
        let q = BoundedQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        let start = Instant::now();
        assert_eq!(q.push(3), Err(PushError::Full));
        // Rejection is immediate — the hallmark of backpressure-by-shedding.
        assert!(start.elapsed() < Duration::from_millis(50));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_honours_the_deadline_on_a_real_clock() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        let clock = Clock::real();
        let deadline = clock.tick_after(Duration::from_millis(10));
        assert!(matches!(q.pop_until(Some(deadline), &clock), Pop::TimedOut));
        assert!(clock.now() >= deadline);
    }

    #[test]
    fn pop_on_a_sim_clock_times_out_in_virtual_time() {
        // An hour-long virtual deadline: a real-clock wait would hang the
        // test; the sim clock advances through it in one polling quantum.
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        let clock = Clock::sim();
        let deadline = clock.tick_after(Duration::from_secs(3600));
        let wall = Instant::now();
        assert!(matches!(q.pop_until(Some(deadline), &clock), Pop::TimedOut));
        assert!(clock.now() >= deadline, "virtual time reached the deadline");
        assert!(wall.elapsed() < Duration::from_secs(5), "no real hour elapsed");
    }

    #[test]
    fn sim_deadline_already_passed_times_out_without_parking() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        let clock = Clock::sim();
        clock.advance(Duration::from_millis(5));
        let wall = Instant::now();
        assert!(matches!(q.pop_until(Some(1_000), &clock), Pop::TimedOut));
        assert!(wall.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn close_drains_remaining_items_before_reporting_drained() {
        let q = BoundedQueue::new(4);
        let clock = Clock::real();
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(PushError::Closed));
        assert!(matches!(q.pop_until(None, &clock), Pop::Item(1)));
        assert!(matches!(q.pop_until(None, &clock), Pop::Item(2)));
        assert!(matches!(q.pop_until(None, &clock), Pop::Drained));
    }

    #[test]
    fn producer_consumer_hand_off_across_threads() {
        let q = std::sync::Arc::new(BoundedQueue::new(8));
        let q2 = q.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..100u32 {
                loop {
                    match q2.push(i) {
                        Ok(()) => break,
                        Err(PushError::Full) => std::thread::yield_now(),
                        Err(PushError::Closed) => panic!("closed early"),
                    }
                }
            }
            q2.close();
        });
        let clock = Clock::real();
        let mut got = Vec::new();
        loop {
            match q.pop_until(None, &clock) {
                Pop::Item(i) => got.push(i),
                Pop::Drained => break,
                Pop::TimedOut => unreachable!("no deadline given"),
            }
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
