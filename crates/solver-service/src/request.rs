//! Request/response types and the one-shot completion ticket.
//!
//! A [`SolveRequest`] is one tridiagonal system plus the bookkeeping the
//! service needs to route the answer back: a monotonically increasing id
//! and a [`Ticket`] the submitter holds. The worker that eventually solves
//! the system fulfils the ticket with a [`SolveResponse`]; the submitter
//! blocks on [`Ticket::wait`] (or polls [`Ticket::try_take`]) without any
//! shared channel — each request carries its own one-shot slot, so
//! responses can never be cross-delivered or duplicated.

use gpu_sim::Tick;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use tridiag_core::{MatrixKey, Real, TridiagonalSystem};

/// A single queued solve: one system plus completion plumbing.
///
/// Timestamps are [`Tick`]s on the owning service's clock (see
/// [`gpu_sim::Clock`]): portable integers rather than process-local
/// `Instant`s, so they can ride in decision traces and replay exactly.
#[derive(Debug)]
pub struct SolveRequest<T: Real> {
    /// Service-assigned id, unique for the lifetime of the service.
    pub id: u64,
    /// The system to solve.
    pub system: TridiagonalSystem<T>,
    /// When the request was admitted (start of the latency clock).
    pub submitted_at: Tick,
    /// Absolute completion deadline on the service clock, if the caller
    /// set one. The batcher flushes a bucket early rather than linger past
    /// a member's deadline; a missed deadline is *reported* (metrics +
    /// response flag), never dropped — the answer is still delivered.
    pub deadline: Option<Tick>,
    /// Identity of the request's coefficient matrix, when the factor
    /// cache is enabled. Requests sharing a key batch together and, once
    /// the matrix is factored, skip elimination entirely; `None` requests
    /// ride the classic per-size buckets untouched.
    pub matrix_key: Option<MatrixKey>,
    pub(crate) slot: Arc<OneShot<SolveResponse<T>>>,
}

impl<T: Real> SolveRequest<T> {
    /// Fulfils the request's ticket. Called exactly once by the worker.
    pub(crate) fn fulfil(self, response: SolveResponse<T>) {
        self.slot.put(response);
    }
}

/// The answer to one [`SolveRequest`].
#[derive(Debug, Clone)]
pub struct SolveResponse<T: Real> {
    /// Echo of the request id.
    pub id: u64,
    /// The solution vector, length `n`.
    pub x: Vec<T>,
    /// Achieved `||Ax − d||₂` residual of the returned solution.
    pub residual: f64,
    /// Canonical spelling of the engine that produced the final answer
    /// (e.g. `cr+pcr@256`, `cpu-thomas`).
    pub engine: String,
    /// Whether the GEP safety net had to re-solve this system after the
    /// primary engine's answer failed verification.
    pub repaired: bool,
    /// How many systems shared the batch this request was served in.
    pub batch_occupancy: usize,
    /// Queue + batch + solve latency, admission to completion.
    pub latency: Duration,
    /// `true` when the request carried a deadline and the response was
    /// delivered after it (the answer is still correct and verified —
    /// deadline misses degrade latency, never correctness).
    pub deadline_missed: bool,
}

/// Submitter-side handle for one in-flight request.
///
/// Dropping the ticket abandons the response (the solve still happens and
/// is still counted in the metrics).
#[derive(Debug)]
pub struct Ticket<T: Real> {
    pub(crate) id: u64,
    pub(crate) slot: Arc<OneShot<SolveResponse<T>>>,
}

impl<T: Real> Ticket<T> {
    /// The id of the request this ticket tracks.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response arrives and takes it.
    pub fn wait(self) -> SolveResponse<T> {
        self.slot.take_blocking()
    }

    /// Takes the response if it has already arrived.
    pub fn try_take(&self) -> Option<SolveResponse<T>> {
        self.slot.try_take()
    }
}

/// A minimal one-shot rendezvous: one writer, one reader, built on
/// `Mutex` + `Condvar` (the build is offline; no external oneshot crate).
#[derive(Debug)]
pub(crate) struct OneShot<V> {
    value: Mutex<Option<V>>,
    ready: Condvar,
}

impl<V> OneShot<V> {
    pub(crate) fn new() -> Self {
        Self { value: Mutex::new(None), ready: Condvar::new() }
    }

    /// Stores the value and wakes the waiter. Second puts are a logic
    /// error upstream and are rejected loudly in debug builds.
    pub(crate) fn put(&self, v: V) {
        let mut slot = self.value.lock().unwrap_or_else(|p| p.into_inner());
        debug_assert!(slot.is_none(), "one-shot fulfilled twice");
        *slot = Some(v);
        drop(slot);
        self.ready.notify_all();
    }

    pub(crate) fn try_take(&self) -> Option<V> {
        self.value.lock().unwrap_or_else(|p| p.into_inner()).take()
    }

    pub(crate) fn take_blocking(&self) -> V {
        let mut slot = self.value.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(v) = slot.take() {
                return v;
            }
            slot = self.ready.wait(slot).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// Builds a paired request + ticket for `system`, submitted at tick 0
/// with no deadline.
///
/// Normally the service does this inside `submit`; it is public so
/// embedders (and tests) can drive [`serve_flush`](crate::serve_flush)
/// directly with hand-assembled flushes.
pub fn make_request<T: Real>(
    id: u64,
    system: TridiagonalSystem<T>,
) -> (SolveRequest<T>, Ticket<T>) {
    make_request_at(id, system, 0, None)
}

/// [`make_request`] with an absolute completion deadline (on the service
/// clock). The deadline is advisory: the batcher flushes early to try to
/// meet it, and the response reports whether it was met — the request is
/// never dropped.
pub fn make_request_with_deadline<T: Real>(
    id: u64,
    system: TridiagonalSystem<T>,
    deadline: Option<Tick>,
) -> (SolveRequest<T>, Ticket<T>) {
    make_request_at(id, system, 0, deadline)
}

/// Builds a paired request + ticket with an explicit submission tick and
/// optional deadline — the fully general constructor the service (and the
/// trace-lab replay harness) use.
pub fn make_request_at<T: Real>(
    id: u64,
    system: TridiagonalSystem<T>,
    submitted_at: Tick,
    deadline: Option<Tick>,
) -> (SolveRequest<T>, Ticket<T>) {
    make_request_keyed(id, system, submitted_at, deadline, None)
}

/// [`make_request_at`] with an explicit matrix identity — the constructor
/// the warm serving tier uses so every request in a multi-RHS submission
/// carries the key computed once for the shared matrix.
pub fn make_request_keyed<T: Real>(
    id: u64,
    system: TridiagonalSystem<T>,
    submitted_at: Tick,
    deadline: Option<Tick>,
    matrix_key: Option<MatrixKey>,
) -> (SolveRequest<T>, Ticket<T>) {
    let slot = Arc::new(OneShot::new());
    let request =
        SolveRequest { id, system, submitted_at, deadline, matrix_key, slot: slot.clone() };
    (request, Ticket { id, slot })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::TridiagonalSystem;

    fn sys() -> TridiagonalSystem<f32> {
        TridiagonalSystem::toeplitz(4, -1.0, 4.0, -1.0, 1.0).unwrap()
    }

    fn response(id: u64) -> SolveResponse<f32> {
        SolveResponse {
            id,
            x: vec![0.0; 4],
            residual: 0.0,
            engine: "cpu-thomas".into(),
            repaired: false,
            batch_occupancy: 1,
            latency: Duration::from_micros(10),
            deadline_missed: false,
        }
    }

    #[test]
    fn ticket_receives_the_fulfilled_response() {
        let (req, ticket) = make_request(7, sys());
        assert_eq!(ticket.id(), 7);
        assert!(ticket.try_take().is_none());
        req.fulfil(response(7));
        assert_eq!(ticket.wait().id, 7);
    }

    #[test]
    fn deadline_rides_the_request() {
        let (req, _ticket) = make_request(0, sys());
        assert!(req.deadline.is_none(), "plain requests carry no deadline");
        let (req, _ticket) = make_request_with_deadline(1, sys(), Some(3_000_000));
        assert_eq!(req.deadline, Some(3_000_000));
        let (req, _ticket) = make_request_at(2, sys(), 1_000, Some(5_000));
        assert_eq!(req.submitted_at, 1_000);
        assert_eq!(req.deadline, Some(5_000));
    }

    #[test]
    fn wait_blocks_until_a_worker_fulfils() {
        let (req, ticket) = make_request(1, sys());
        let worker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            req.fulfil(response(1));
        });
        assert_eq!(ticket.wait().id, 1);
        worker.join().unwrap();
    }
}
