//! The service itself: admission → batcher thread → sharded worker pool.
//!
//! Thread topology (all plain `std::thread`, no external runtime):
//!
//! ```text
//!  submitters ──► BoundedQueue ──► batcher ──► StealQueues ──► worker/device 0..D
//!     (many)      (reject-full)   (1 thread)  (routing +       (serve_flush on
//!                                              work stealing)    its own device)
//! ```
//!
//! * **Admission** validates the system, assigns an id, and pushes into
//!   the bounded queue — failing fast with [`ServiceError::QueueFull`]
//!   under overload.
//! * **The batcher** owns the [`BucketTable`], sleeping exactly until its
//!   earliest linger deadline, and routes each flushed batch to a device
//!   queue via the pool's [`RoutingPolicy`](device_pool::RoutingPolicy).
//! * **Workers** are pinned one-per-device (or share device 0 when the
//!   service runs single-device). An idle worker steals batches from the
//!   longest other queue; a worker whose device is lost re-routes its
//!   backlog to survivors and falls back to the CPU safety net only when
//!   no healthy device remains.
//!
//! Shutdown is a drain, not an abort: the queue closes (new submissions
//! are rejected), the batcher pops everything already admitted, flushes
//! all partial buckets with [`FlushReason::Shutdown`], and the workers
//! finish every routed batch before joining. Every admitted request is
//! always answered.

use crate::batcher::{BucketTable, FlushedBatch};
use crate::breaker::{BreakerConfig, CircuitBreakers};
use crate::dispatch::{serve_flush, DeviceCtx, DispatchConfig};
use crate::error::ServiceError;
use crate::metrics::{DeviceSnapshot, MetricsSnapshot, ServiceMetrics};
use crate::planner::PlanCache;
use crate::queue::{BoundedQueue, Pop, PushError};
use crate::request::{make_request_keyed, SolveRequest, SolveResponse, Ticket};
use crate::trace::{RejectReason, TraceEvent, TraceHandle};
use device_pool::{DevicePool, PoolConfig, Pop as DevicePop, StealQueues};
use factor_cache::SharedFactorCache;
use gpu_sim::{tick_duration, Clock, Launcher, Tick};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tridiag_core::{MatrixKey, Real, TridiagError, TridiagonalSystem};

#[cfg(doc)]
use crate::batcher::FlushReason;

/// Tunables for a [`SolverService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Admission queue capacity; pushes beyond this are rejected.
    pub queue_capacity: usize,
    /// Flush a size-class bucket when it holds this many requests.
    pub target_batch: usize,
    /// Flush a bucket when its oldest request has waited this long.
    pub max_linger: Duration,
    /// Worker threads executing flushed batches.
    pub workers: usize,
    /// Flushes smaller than this run on the CPU regardless of plan.
    pub min_gpu_batch: usize,
    /// Residual acceptance scale for verify-and-repair (see
    /// `gpu_solvers::RobustOptions`).
    pub threshold_scale: f64,
    /// Probe batch size for autotune tournaments.
    pub probe_count: usize,
    /// When set, every batch runs on this engine — planner and small-flush
    /// CPU override bypassed (A-B testing / benchmarking knob).
    pub pin_engine: Option<crate::planner::Engine>,
    /// Run the first GPU flush of each plan-cache size class with the
    /// kernel sanitizer recording; findings land in the metrics and an
    /// error-severity finding demotes that flush to the CPU safety net.
    pub sanitize_first_flush: bool,
    /// Static proof catalog for first-flush admission: a size class whose
    /// planned kernel the catalog proves safe skips the sanitized launch
    /// (counted in `MetricsSnapshot::proof_skipped_sanitizes`). `None`
    /// (the default) sanitizes every first flush dynamically. Share one
    /// `Arc` across services to amortize proofs between them.
    pub verified: Option<Arc<kernel_verify::VerifiedCatalog>>,
    /// Factorization cache for the warm serving tier. When set, every
    /// admitted system is identity-hashed (structure tag + content hash),
    /// requests sharing a matrix batch together, and a flush whose matrix
    /// is already factored skips elimination — back-substitution only.
    /// `None` (the default) leaves every request unkeyed and the service's
    /// behaviour byte-identical to the cold-only service. Share one `Arc`
    /// across services to share factorizations between them.
    pub factor_cache: Option<Arc<SharedFactorCache>>,
    /// Certified catalog for verify-skipping dispatch. When set, every
    /// admitted system is identity-hashed (like
    /// [`factor_cache`](Self::factor_cache)) and each matrix key is
    /// statically analyzed exactly once; keys earning a
    /// [`numeric_verify::NumericCertificate`] downgrade the per-answer
    /// residual verify to deterministic 1-in-K sampling (the NaN/Inf
    /// guard always runs), and a corruption caught on a sampled flush
    /// revokes the certificate permanently. `None` (the default) keeps
    /// full verification on every answer. Share one `Arc` across
    /// services to share analysis verdicts between them.
    pub certified: Option<Arc<numeric_verify::CertifiedCatalog>>,
    /// How much earlier than a member's completion deadline its bucket
    /// flushes (headroom for dispatch + solve).
    pub deadline_slack: Duration,
    /// Per-engine circuit breaker tuning.
    pub breaker: BreakerConfig,
    /// Attempts per engine before the retry ladder excludes it.
    pub max_attempts_per_engine: usize,
    /// Total engine attempts per flush before CPU GEP demotion.
    pub max_total_attempts: usize,
    /// First retry backoff (doubles per attempt, deterministic jitter).
    pub backoff_base: Duration,
    /// Retry backoff ceiling.
    pub backoff_max: Duration,
    /// When `true`, [`SolverService::submit_wait`] honors a
    /// `QueueFull::retry_after` hint with one bounded client-side retry
    /// before surfacing the rejection.
    pub client_retry: bool,
    /// The simulated device the GPU engines run on when no
    /// [`pool`](Self::pool) is configured.
    pub launcher: Launcher,
    /// Multi-device pool configuration. `None` (the default) wraps
    /// [`launcher`](Self::launcher) — fault plan and all — as a
    /// single-device pool, preserving single-GPU behaviour. `Some` builds
    /// an N-device pool with per-device seed-derived fault plans and
    /// shards flushed batches across its healthy devices.
    pub pool: Option<PoolConfig>,
    /// The clock every time-dependent decision reads: linger deadlines,
    /// retry backoff, breaker cooldowns, latency measurement. The default
    /// real clock preserves production behaviour; a [`Clock::sim`] makes
    /// time virtual — sleeps advance the clock instead of parking — which
    /// de-flakes timing-sensitive tests and (driven single-threaded, see
    /// trace-lab) makes the whole service deterministic.
    pub clock: Clock,
    /// Decision trace sink. Disabled by default; attach a sink (see
    /// [`crate::trace`]) to record every admission, flush, plan, retry,
    /// breaker transition, steal, fault, and served batch.
    pub trace: TraceHandle,
    /// When set, a lone batch stuck on one device's queue for longer than
    /// this (on the service clock) may be stolen by an idle worker even
    /// though lone jobs are normally owner-only — backup detection for a
    /// stalled or overloaded device. `None` (the default) keeps the
    /// conservative lone-job courtesy.
    pub steal_backup_age: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            target_batch: 64,
            max_linger: Duration::from_millis(2),
            workers: 4,
            min_gpu_batch: 4,
            threshold_scale: 100.0,
            probe_count: 16,
            pin_engine: None,
            sanitize_first_flush: true,
            verified: None,
            factor_cache: None,
            certified: None,
            deadline_slack: Duration::from_micros(500),
            breaker: BreakerConfig::default(),
            max_attempts_per_engine: 2,
            max_total_attempts: 4,
            backoff_base: Duration::from_micros(50),
            backoff_max: Duration::from_millis(2),
            client_retry: true,
            launcher: Launcher::gtx280(),
            pool: None,
            clock: Clock::real(),
            trace: TraceHandle::disabled(),
            steal_backup_age: None,
        }
    }
}

struct Shared<T: Real> {
    queue: BoundedQueue<SolveRequest<T>>,
    metrics: ServiceMetrics,
    plans: PlanCache,
    breakers: CircuitBreakers,
    pool: DevicePool,
    queues: StealQueues<FlushedBatch<T>>,
    dispatch_cfg: DispatchConfig,
    clock: Clock,
    trace: TraceHandle,
    started_at: Tick,
}

impl<T: Real> Shared<T> {
    /// Routes one flushed batch onto a healthy device's queue. With no
    /// healthy device left the batch still lands on queue 0: its worker
    /// serves it through the dead-device context, which the dispatch
    /// ladder demotes to the CPU safety net.
    fn route_flush(&self, flush: FlushedBatch<T>) {
        self.trace.emit(|| TraceEvent::Flush {
            at: self.clock.now(),
            n: flush.n as u64,
            occupancy: flush.requests.len() as u64,
            reason: flush.reason,
        });
        let dev = self.pool.route(flush.n).unwrap_or(0);
        self.pool.note_enqueued(dev);
        self.queues.push(dev, flush);
    }

    /// Serves one batch on `device_id`'s launcher, with the pool wired in
    /// so device loss and busy-time land in the pool's books.
    fn serve_on(&self, device_id: usize, flush: FlushedBatch<T>) {
        let ctx = DeviceCtx {
            launcher: &self.pool.device(device_id).launcher,
            device_id,
            pool: Some(&self.pool),
        };
        serve_flush(ctx, &self.plans, &self.breakers, &self.metrics, &self.dispatch_cfg, flush);
    }
}

/// A running dynamic-batching solve service. Create with
/// [`SolverService::start`], submit with [`SolverService::submit`], stop
/// with [`SolverService::shutdown`] (or drop — the drain still happens).
pub struct SolverService<T: Real> {
    shared: Arc<Shared<T>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    client_retry: bool,
}

impl<T: Real> SolverService<T> {
    /// Spawns the batcher and worker threads and opens admission.
    pub fn start(config: ServiceConfig) -> Self {
        assert!(config.workers >= 1, "need at least one worker");
        let pool = match config.pool {
            Some(pool_cfg) => DevicePool::new(pool_cfg),
            None => DevicePool::single(config.launcher.clone()),
        };
        let clock = config.clock.clone();
        let trace = config.trace.clone();
        let queues = {
            let queues = StealQueues::with_clock(pool.len(), clock.clone());
            match config.steal_backup_age {
                Some(age) => queues.with_backup_age(age),
                None => queues,
            }
        };
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            metrics: ServiceMetrics::new(),
            plans: PlanCache::new(),
            breakers: CircuitBreakers::with_clock(config.breaker, clock.clone())
                .with_trace(trace.clone()),
            pool,
            queues,
            dispatch_cfg: DispatchConfig {
                min_gpu_batch: config.min_gpu_batch,
                threshold_scale: config.threshold_scale,
                probe_count: config.probe_count,
                pin_engine: config.pin_engine,
                sanitize_first_flush: config.sanitize_first_flush,
                verified: config.verified,
                factor_cache: config.factor_cache,
                certified: config.certified,
                max_attempts_per_engine: config.max_attempts_per_engine,
                max_total_attempts: config.max_total_attempts,
                backoff_base: config.backoff_base,
                backoff_max: config.backoff_max,
                clock: clock.clone(),
                trace: trace.clone(),
            },
            started_at: clock.now(),
            clock,
            trace,
        });

        let batcher = {
            let shared = shared.clone();
            let target = config.target_batch;
            let linger = config.max_linger;
            let slack = config.deadline_slack;
            std::thread::Builder::new()
                .name("solver-service-batcher".into())
                .spawn(move || batcher_loop(shared, target, linger, slack))
                .expect("spawn batcher")
        };

        // Single-device pools keep the configured worker count (all pinned
        // to device 0, contending on its queue); multi-device pools pin one
        // worker per device so every device drains independently.
        let worker_devices: Vec<usize> = if shared.pool.len() == 1 {
            vec![0; config.workers]
        } else {
            (0..shared.pool.len()).collect()
        };
        let workers = worker_devices
            .into_iter()
            .enumerate()
            .map(|(i, device_id)| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("solver-service-worker-{i}-dev{device_id}"))
                    .spawn(move || worker_loop(shared, device_id))
                    .expect("spawn worker")
            })
            .collect();

        Self {
            shared,
            batcher: Some(batcher),
            workers,
            next_id: AtomicU64::new(0),
            client_retry: config.client_retry,
        }
    }

    /// The clock this service runs on — callers use it to build absolute
    /// [`Tick`] deadlines for [`SolverService::submit_with_deadline`].
    pub fn clock(&self) -> &Clock {
        &self.shared.clock
    }

    /// Suggested back-off before retrying a rejected submission, derived
    /// from the observed drain rate (completions per unit uptime). `None`
    /// until the first completion — there is no rate to derive from.
    fn retry_after_hint(&self) -> Option<Duration> {
        let completed = self.shared.metrics.completed_total();
        if completed == 0 {
            return None;
        }
        let uptime = tick_duration(self.shared.started_at, self.shared.clock.now());
        let per_request = uptime.div_f64(completed as f64);
        // One queue slot frees after ~one request drains; clamp to sane
        // bounds so a cold service cannot suggest minutes.
        Some(per_request.clamp(Duration::from_micros(20), Duration::from_millis(50)))
    }

    /// Submits one system; returns a [`Ticket`] to wait on, or a typed
    /// rejection ([`ServiceError::QueueFull`] under backpressure,
    /// [`ServiceError::ShuttingDown`] after shutdown began).
    pub fn submit(&self, system: TridiagonalSystem<T>) -> Result<Ticket<T>, ServiceError> {
        self.submit_with_deadline(system, None)
    }

    /// [`SolverService::submit`] with an absolute completion deadline —
    /// a [`Tick`] on the service clock (see [`SolverService::clock`] and
    /// [`Clock::tick_after`]).
    ///
    /// A deadline already in the past (or sub-slack close) is rejected at
    /// admission with [`ServiceError::DeadlineExceeded`] — retrying the
    /// same deadline cannot help. An admitted deadline is *advisory*: the
    /// batcher flushes the request's bucket early to try to meet it, and
    /// [`SolveResponse::deadline_missed`] reports the verdict. Admitted
    /// requests are never dropped.
    pub fn submit_with_deadline(
        &self,
        system: TridiagonalSystem<T>,
        deadline: Option<Tick>,
    ) -> Result<Ticket<T>, ServiceError> {
        // With the factor cache or certified catalog on, every admitted
        // system is identity-hashed so equal matrices batch together and
        // hit the warm tier / share one analysis verdict.
        let cfg = &self.shared.dispatch_cfg;
        let matrix_key = (cfg.factor_cache.is_some() || cfg.certified.is_some())
            .then(|| MatrixKey::of_system(&system));
        self.submit_keyed(system, deadline, matrix_key)
    }

    /// The fully general submission: explicit deadline and matrix key.
    /// [`SolverService::solve_many_rhs`] uses this to hash the shared
    /// matrix once instead of once per right-hand side.
    fn submit_keyed(
        &self,
        system: TridiagonalSystem<T>,
        deadline: Option<Tick>,
        matrix_key: Option<MatrixKey>,
    ) -> Result<Ticket<T>, ServiceError> {
        let n = system.n();
        let now = self.shared.clock.now();
        if n < 2 {
            self.shared.trace.emit(|| TraceEvent::Reject {
                at: now,
                n: n as u64,
                reason: RejectReason::Invalid,
            });
            return Err(ServiceError::InvalidRequest(TridiagError::SizeTooSmall { n, min: 2 }));
        }
        if let Some(d) = deadline {
            if d <= now {
                self.shared.trace.emit(|| TraceEvent::Reject {
                    at: now,
                    n: n as u64,
                    reason: RejectReason::DeadlinePast,
                });
                return Err(ServiceError::DeadlineExceeded { deadline: tick_duration(now, d) });
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (request, ticket) = make_request_keyed(id, system, now, deadline, matrix_key);
        match self.shared.queue.push(request) {
            Ok(()) => {
                self.shared.metrics.on_submit();
                self.shared.trace.emit(|| TraceEvent::Admit { at: now, id, n: n as u64 });
                Ok(ticket)
            }
            Err(PushError::Full) => {
                self.shared.metrics.on_reject();
                self.shared.trace.emit(|| TraceEvent::Reject {
                    at: now,
                    n: n as u64,
                    reason: RejectReason::QueueFull,
                });
                Err(ServiceError::QueueFull {
                    capacity: self.shared.queue.capacity(),
                    retry_after: self.retry_after_hint(),
                })
            }
            Err(PushError::Closed) => {
                self.shared.metrics.on_reject();
                self.shared.trace.emit(|| TraceEvent::Reject {
                    at: now,
                    n: n as u64,
                    reason: RejectReason::ShuttingDown,
                });
                Err(ServiceError::ShuttingDown)
            }
        }
    }

    /// Solves one matrix against many right-hand sides: the multi-RHS
    /// serving tier's front door.
    ///
    /// The matrix identity is hashed **once** (not once per RHS), every
    /// request rides the same key, so the batcher coalesces them into
    /// shared flushes and — with [`ServiceConfig::factor_cache`] set —
    /// everything after the first flush is served from the cached
    /// factorization by back-substitution alone. Without a cache the
    /// requests still co-batch; they are just served cold.
    ///
    /// Submission honours backpressure the same way [`submit_wait`]
    /// does: a `QueueFull` with a `retry_after` hint gets one bounded
    /// client-side retry per request before the rejection surfaces.
    /// Responses come back in `rhs_list` order.
    ///
    /// # Errors
    /// [`ServiceError::InvalidRequest`] for mismatched array lengths or
    /// undersized systems; admission errors from the underlying submits.
    ///
    /// [`submit_wait`]: SolverService::submit_wait
    pub fn solve_many_rhs(
        &self,
        a: &[T],
        b: &[T],
        c: &[T],
        rhs_list: &[Vec<T>],
    ) -> Result<Vec<SolveResponse<T>>, ServiceError> {
        let dispatch_cfg = &self.shared.dispatch_cfg;
        let matrix_key = (dispatch_cfg.factor_cache.is_some() || dispatch_cfg.certified.is_some())
            .then(|| MatrixKey::of::<T>(a, b, c));
        let mut tickets = Vec::with_capacity(rhs_list.len());
        for d in rhs_list {
            let system = TridiagonalSystem::new(a.to_vec(), b.to_vec(), c.to_vec(), d.clone())
                .map_err(ServiceError::InvalidRequest)?;
            let ticket = match self.submit_keyed(system, None, matrix_key) {
                Ok(ticket) => ticket,
                Err(ServiceError::QueueFull { retry_after: Some(hint), .. })
                    if self.client_retry =>
                {
                    self.shared.clock.sleep(hint);
                    let system =
                        TridiagonalSystem::new(a.to_vec(), b.to_vec(), c.to_vec(), d.clone())
                            .map_err(ServiceError::InvalidRequest)?;
                    self.submit_keyed(system, None, matrix_key)?
                }
                Err(e) => return Err(e),
            };
            tickets.push(ticket);
        }
        Ok(tickets.into_iter().map(Ticket::wait).collect())
    }

    /// Convenience: submit and block for the answer. When the queue is
    /// full and carries a `retry_after` hint (and
    /// [`ServiceConfig::client_retry`] is on), backs off once for the
    /// hinted duration and retries before surfacing the rejection —
    /// exactly one bounded retry, never a loop.
    pub fn submit_wait(
        &self,
        system: TridiagonalSystem<T>,
    ) -> Result<SolveResponse<T>, ServiceError> {
        match self.submit(system.clone()) {
            Ok(ticket) => Ok(ticket.wait()),
            Err(ServiceError::QueueFull { retry_after: Some(hint), .. }) if self.client_retry => {
                self.shared.clock.sleep(hint);
                Ok(self.submit(system)?.wait())
            }
            Err(e) => Err(e),
        }
    }

    /// Current metrics snapshot (queue depth, plan-cache stats, and
    /// breaker states are read at call time).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.shared.metrics.snapshot(
            self.shared.queue.len(),
            self.shared.plans.tunes(),
            self.shared.plans.hits(),
        );
        snap.degradation.breaker_opened = self.shared.breakers.opened_total();
        snap.degradation.breaker_closed = self.shared.breakers.closed_total();
        snap.degradation.breaker_denials = self.shared.breakers.denials_total();
        snap.degradation.breaker_states = self.shared.breakers.states();
        let states = &snap.degradation.breaker_states;
        snap.devices = self
            .shared
            .pool
            .stats()
            .into_iter()
            .map(|d| DeviceSnapshot {
                id: d.id,
                dispatched: d.dispatched,
                device_ms: d.busy_ms,
                steals: d.steals,
                lost: d.lost,
                breaker: worst_breaker_state(states, d.id).to_string(),
            })
            .collect();
        snap
    }

    /// Drains and stops the service: closes admission, serves everything
    /// already admitted, joins all threads, and returns the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_in_place();
        self.metrics()
    }

    fn shutdown_in_place(&mut self) {
        self.shared.queue.close();
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<T: Real> Drop for SolverService<T> {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Worst breaker state among `dev{id}:`-prefixed engines: any `open`
/// dominates, then `half-open`; untouched engines count as `closed`.
fn worst_breaker_state(states: &std::collections::BTreeMap<String, String>, id: usize) -> &str {
    let prefix = format!("dev{id}:");
    let mut worst = "closed";
    for (key, state) in states {
        if !key.starts_with(&prefix) {
            continue;
        }
        worst = match (worst, state.as_str()) {
            ("open", _) | (_, "open") => "open",
            ("half-open", _) | (_, "half-open") => "half-open",
            _ => "closed",
        };
    }
    worst
}

/// The batcher thread: queue → buckets → flush → routed device queue.
fn batcher_loop<T: Real>(
    shared: Arc<Shared<T>>,
    target_batch: usize,
    max_linger: Duration,
    deadline_slack: Duration,
) {
    let mut table = BucketTable::new(target_batch, max_linger).with_deadline_slack(deadline_slack);
    loop {
        let deadline = table.next_deadline();
        match shared.queue.pop_until(deadline, &shared.clock) {
            Pop::Item(request) => {
                let now = shared.clock.now();
                if let Some(flush) = table.insert(request, now) {
                    shared.route_flush(flush);
                }
                for flush in table.flush_expired(now) {
                    shared.route_flush(flush);
                }
            }
            Pop::TimedOut => {
                for flush in table.flush_expired(shared.clock.now()) {
                    shared.route_flush(flush);
                }
            }
            Pop::Drained => {
                // Shutdown: everything admitted has been popped; flush the
                // partial buckets so no request is stranded, then close the
                // device queues — workers exit once their backlog is served.
                for flush in table.flush_all() {
                    shared.route_flush(flush);
                }
                shared.queues.close();
                break;
            }
        }
    }
}

/// A worker thread pinned to one device: pop that device's queue (stealing
/// from the longest other queue when idle), serve the batch, and — if its
/// device was lost mid-batch — re-route the dead device's backlog onto
/// survivors. Exits when the queues close and its backlog drains.
fn worker_loop<T: Real>(shared: Arc<Shared<T>>, device_id: usize) {
    loop {
        // A lost device must not steal healthy devices' work — it would
        // serve every batch through the CPU safety net. It still drains
        // batches already routed to it (re-routing them below).
        let allow_steal = !shared.pool.is_lost(device_id);
        match shared.queues.pop(device_id, allow_steal) {
            DevicePop::Closed => break,
            DevicePop::Job { job, from } => {
                shared.pool.note_dequeued(from);
                if from != device_id {
                    shared.pool.device(device_id).note_steal();
                    shared.trace.emit(|| TraceEvent::Steal {
                        at: shared.clock.now(),
                        from: from as u64,
                        to: device_id as u64,
                    });
                }
                shared.serve_on(device_id, job);
                if shared.pool.is_lost(device_id) {
                    // The device died under this batch: drain its queue and
                    // re-route the stranded batches to healthy devices so
                    // they are not served through guaranteed-dead launches.
                    for stranded in shared.queues.drain(device_id) {
                        shared.pool.note_dequeued(device_id);
                        match shared.pool.route(stranded.n) {
                            Some(target) => {
                                shared.pool.note_enqueued(target);
                                shared.queues.push(target, stranded);
                            }
                            // No healthy device left: the dead context's
                            // ladder demotes straight to CPU GEP.
                            None => shared.serve_on(device_id, stranded),
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::{Generator, Workload};

    fn quick_config() -> ServiceConfig {
        ServiceConfig {
            queue_capacity: 64,
            target_batch: 8,
            max_linger: Duration::from_millis(1),
            workers: 2,
            min_gpu_batch: 4,
            probe_count: 4,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn round_trip_a_handful_of_requests() {
        let service: SolverService<f32> = SolverService::start(quick_config());
        let mut generator = Generator::new(1);
        let tickets: Vec<_> = (0..16)
            .map(|_| service.submit(generator.system(Workload::DiagonallyDominant, 64)).unwrap())
            .collect();
        for ticket in tickets {
            let resp = ticket.wait();
            assert_eq!(resp.x.len(), 64);
            assert!(resp.residual < 1e-2, "{}", resp.residual);
        }
        let snap = service.shutdown();
        assert_eq!(snap.submitted, 16);
        assert_eq!(snap.completed, 16);
        assert_eq!(snap.dispatched_total(), 16);
        assert_eq!(snap.occupancy_total(), 16);
    }

    #[test]
    fn lone_request_is_not_starved() {
        let service: SolverService<f32> = SolverService::start(quick_config());
        let system = Generator::new(2).system(Workload::Poisson, 32);
        let resp = service.submit_wait(system).unwrap();
        assert_eq!(resp.batch_occupancy, 1, "a lone request rides alone");
        assert!(resp.residual < 1e-3);
        let snap = service.shutdown();
        assert!(snap.flushes_linger + snap.flushes_shutdown >= 1);
    }

    #[test]
    fn shutdown_drains_in_flight_requests() {
        // Long linger so the requests are still parked in buckets when
        // shutdown begins — the drain must still answer them all.
        let config = ServiceConfig {
            max_linger: Duration::from_secs(60),
            target_batch: 1000,
            ..quick_config()
        };
        let service: SolverService<f32> = SolverService::start(config);
        let mut generator = Generator::new(3);
        let tickets: Vec<_> = (0..5)
            .map(|_| service.submit(generator.system(Workload::DiagonallyDominant, 32)).unwrap())
            .collect();
        let snap = service.shutdown();
        assert_eq!(snap.completed, 5);
        assert_eq!(snap.flushes_shutdown, 1);
        for ticket in tickets {
            assert!(ticket.try_take().is_some(), "shutdown must fulfil parked requests");
        }
    }

    #[test]
    fn submissions_after_shutdown_are_rejected() {
        let service: SolverService<f32> = SolverService::start(quick_config());
        service.shared.queue.close();
        let system = Generator::new(4).system(Workload::DiagonallyDominant, 32);
        assert!(matches!(service.submit(system), Err(ServiceError::ShuttingDown)));
    }

    #[test]
    fn undersized_systems_are_rejected_at_admission() {
        let service: SolverService<f32> = SolverService::start(quick_config());
        let one = TridiagonalSystem { a: vec![0.0], b: vec![2.0], c: vec![0.0], d: vec![1.0] };
        assert!(matches!(service.submit(one), Err(ServiceError::InvalidRequest(_))));
    }

    #[test]
    fn queue_full_rejects_with_typed_error() {
        // One-slot queue, long linger, and a first request that parks in
        // the batcher leaves the queue momentarily full for a burst.
        let config = ServiceConfig {
            queue_capacity: 1,
            target_batch: 1000,
            max_linger: Duration::from_secs(60),
            workers: 1,
            ..quick_config()
        };
        let service: SolverService<f32> = SolverService::start(config);
        let mut generator = Generator::new(5);
        let mut rejections = 0u64;
        let mut attempts = 0u64;
        // Burst until the 1-slot queue sheds load at least once (bounded so
        // a pathological scheduler cannot hang the test).
        while rejections == 0 && attempts < 10_000 {
            attempts += 1;
            match service.submit(generator.system(Workload::DiagonallyDominant, 32)) {
                Ok(_) => {}
                Err(ServiceError::QueueFull { capacity, retry_after }) => {
                    assert_eq!(capacity, 1);
                    if let Some(hint) = retry_after {
                        assert!(hint >= Duration::from_micros(20));
                        assert!(hint <= Duration::from_millis(50));
                    }
                    rejections += 1;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(rejections > 0, "a burst into a 1-slot queue must shed load");
        let snap = service.shutdown();
        assert_eq!(snap.rejected, rejections);
        assert_eq!(snap.submitted + snap.rejected, attempts);
        assert_eq!(snap.completed, snap.submitted);
    }

    #[test]
    fn past_deadlines_are_rejected_at_admission() {
        let service: SolverService<f32> = SolverService::start(quick_config());
        let system = Generator::new(6).system(Workload::DiagonallyDominant, 32);
        // Tick 0 is the service clock's epoch — long past by now.
        match service.submit_with_deadline(system, Some(0)) {
            Err(ServiceError::DeadlineExceeded { deadline }) => {
                assert_eq!(deadline, Duration::ZERO, "past deadlines have zero budget left");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let snap = service.shutdown();
        assert_eq!(snap.submitted, 0, "rejected requests are never admitted");
    }

    #[test]
    fn deadline_forces_an_early_flush_long_before_linger() {
        // Linger is 60 s: without deadline-aware flushing this request
        // would be answered only at shutdown. Its 20 ms deadline must pull
        // the flush forward.
        let config = ServiceConfig {
            max_linger: Duration::from_secs(60),
            target_batch: 1000,
            ..quick_config()
        };
        let service: SolverService<f32> = SolverService::start(config);
        let system = Generator::new(7).system(Workload::DiagonallyDominant, 32);
        let deadline = service.clock().tick_after(Duration::from_millis(20));
        let started = std::time::Instant::now();
        let ticket = service.submit_with_deadline(system, Some(deadline)).unwrap();
        let resp = ticket.wait();
        let waited = started.elapsed();
        assert!(
            waited < Duration::from_secs(10),
            "deadline must beat the 60 s linger, waited {waited:?}"
        );
        assert!(resp.residual < 1e-2, "{}", resp.residual);
        let snap = service.shutdown();
        assert_eq!(snap.flushes_deadline, 1, "the deadline triggered the flush");
        assert_eq!(snap.completed, 1);
    }

    #[test]
    fn sim_clock_service_answers_without_real_lingering() {
        // A 60 s linger under the simulated clock: the batcher's wait
        // advances virtual time to the linger deadline instead of parking
        // for a real minute — the lone request is answered promptly.
        let config = ServiceConfig {
            max_linger: Duration::from_secs(60),
            target_batch: 1000,
            clock: Clock::sim(),
            ..quick_config()
        };
        let service: SolverService<f32> = SolverService::start(config);
        let wall = std::time::Instant::now();
        let system = Generator::new(9).system(Workload::DiagonallyDominant, 32);
        let resp = service.submit_wait(system).unwrap();
        assert!(resp.residual < 1e-3);
        assert!(wall.elapsed() < Duration::from_secs(10), "virtual linger must not cost real time");
        assert!(
            resp.latency >= Duration::from_secs(59),
            "the virtual linger is visible in the latency: {:?}",
            resp.latency
        );
        let snap = service.shutdown();
        assert_eq!(snap.completed, 1);
        assert!(snap.flushes_linger >= 1, "the linger deadline fired virtually");
    }

    #[test]
    fn pooled_service_shards_flushes_across_devices() {
        // Four devices, single-flush batches: the metrics devices block
        // must show all four devices and the dispatched work sharded
        // across more than one of them.
        let config = ServiceConfig {
            pool: Some(device_pool::PoolConfig::new(4)),
            target_batch: 4,
            min_gpu_batch: 1,
            pin_engine: Some(crate::planner::Engine::Gpu(gpu_solvers::GpuAlgorithm::CrPcr {
                m: 16,
            })),
            sanitize_first_flush: false,
            ..quick_config()
        };
        let service: SolverService<f32> = SolverService::start(config);
        let mut generator = Generator::new(21);
        let tickets: Vec<_> = (0..64)
            .map(|_| service.submit(generator.system(Workload::DiagonallyDominant, 64)).unwrap())
            .collect();
        for ticket in tickets {
            let resp = ticket.wait();
            assert!(resp.residual < 1e-2, "{}", resp.residual);
        }
        let snap = service.shutdown();
        assert_eq!(snap.completed, 64);
        assert_eq!(snap.devices.len(), 4, "one gauge block per pool device");
        for dev in &snap.devices {
            assert!(!dev.lost);
            assert_eq!(dev.breaker, "closed");
        }
        let active = snap.devices.iter().filter(|d| d.dispatched > 0).count();
        assert!(active >= 2, "work must shard across devices: {:?}", snap.devices);
        let total_ms: f64 = snap.devices.iter().map(|d| d.device_ms).sum();
        assert!(total_ms > 0.0, "GPU batches must accrue device time");
        assert!(snap.degradation.is_quiet(), "fault-free pool stays quiet");
    }

    #[test]
    fn single_device_pool_preserves_solo_behaviour() {
        // No pool configured: exactly one device gauge, pinned to the
        // configured launcher, and all work lands on it.
        let service: SolverService<f32> = SolverService::start(quick_config());
        let mut generator = Generator::new(22);
        for _ in 0..8 {
            service.submit_wait(generator.system(Workload::DiagonallyDominant, 64)).unwrap();
        }
        let snap = service.shutdown();
        assert_eq!(snap.devices.len(), 1);
        assert_eq!(snap.devices[0].id, 0);
        assert!(!snap.devices[0].lost);
        assert_eq!(snap.devices[0].steals, 0, "one queue, nothing to steal");
    }

    #[test]
    fn proof_catalog_replaces_first_flush_sanitizes_end_to_end() {
        let config = ServiceConfig {
            pin_engine: Some(crate::planner::Engine::Gpu(gpu_solvers::GpuAlgorithm::CrPcr {
                m: 16,
            })),
            verified: Some(Arc::new(kernel_verify::VerifiedCatalog::new())),
            ..quick_config()
        };
        let service: SolverService<f32> = SolverService::start(config);
        let mut generator = Generator::new(24);
        for _ in 0..8 {
            let resp =
                service.submit_wait(generator.system(Workload::DiagonallyDominant, 64)).unwrap();
            assert!(resp.residual < 1e-2, "{}", resp.residual);
        }
        let snap = service.shutdown();
        assert_eq!(snap.completed, 8);
        assert_eq!(snap.sanitized_flushes, 0, "the proof replaced every first-flush sanitize");
        assert_eq!(snap.proof_skipped_sanitizes, 1, "one size class, one skip");
        assert!(snap.degradation.is_quiet(), "a proof skip is not degradation");
        let json = snap.to_json();
        assert!(json.contains("\"proof_skipped_sanitizes\":1"), "{json}");
    }

    #[test]
    fn healthy_service_reports_a_quiet_degradation_state() {
        let service: SolverService<f32> = SolverService::start(quick_config());
        let mut generator = Generator::new(8);
        for _ in 0..8 {
            let resp =
                service.submit_wait(generator.system(Workload::DiagonallyDominant, 64)).unwrap();
            assert!(!resp.deadline_missed, "no deadline was set");
        }
        let snap = service.shutdown();
        assert!(
            snap.degradation.is_quiet(),
            "fault-free run must not degrade: {:?}",
            snap.degradation
        );
    }
}
