//! Service decision trace: a typed event stream of everything the service
//! *decides* — admission, flushes, plan choices, retries, breaker
//! transitions, steals, faults, and served batches.
//!
//! The service emits events through a [`TraceHandle`]; a handle is either
//! disabled (the default — emission is a branch on a `None`, no event is
//! even constructed) or carries a [`TraceSink`] that records each event.
//! The `trace-lab` crate provides the standard sinks: an in-memory
//! recorder, a binary trace-file writer, and the bit-identical replay
//! comparator.
//!
//! Timestamps are [`Tick`]s from the service's [`Clock`]: under a
//! simulated clock driven from a single thread the event stream — values
//! *and* timestamps — is a pure function of the scenario, which is what
//! makes capture → replay → byte-compare possible. Under the real clock
//! (or a threaded service) the stream is still useful for observability,
//! but interleaving and wall time make it non-reproducible; see
//! DESIGN.md §10 for the exact invariant.

use crate::batcher::FlushReason;
use crate::breaker::BreakerState;
use gpu_sim::Tick;
use std::sync::Arc;

/// Why a submission was turned away at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue was at capacity.
    QueueFull,
    /// The service is shutting down.
    ShuttingDown,
    /// The system failed validation (e.g. too small).
    Invalid,
    /// The request's completion deadline had already passed.
    DeadlinePast,
}

impl RejectReason {
    /// Stable lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue-full",
            RejectReason::ShuttingDown => "shutting-down",
            RejectReason::Invalid => "invalid",
            RejectReason::DeadlinePast => "deadline-past",
        }
    }
}

/// One recorded service decision. Every variant carries the tick it was
/// decided at; counters and sizes are widened to `u64` so the binary
/// codec (trace-lab) round-trips them without lossy casts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A request passed admission into the batcher queue.
    Admit {
        /// Decision tick.
        at: Tick,
        /// Service-assigned request id.
        id: u64,
        /// System size.
        n: u64,
    },
    /// A submission was rejected at admission.
    Reject {
        /// Decision tick.
        at: Tick,
        /// System size (0 when unknown).
        n: u64,
        /// Why it was turned away.
        reason: RejectReason,
    },
    /// A bucket flushed out of the batcher.
    Flush {
        /// Decision tick.
        at: Tick,
        /// Size class.
        n: u64,
        /// Requests in the batch.
        occupancy: u64,
        /// What triggered the flush.
        reason: FlushReason,
    },
    /// The dispatcher settled on an engine for a flush (after the
    /// planner, pin, and small-flush overrides).
    Plan {
        /// Decision tick.
        at: Tick,
        /// Size class.
        n: u64,
        /// Requests in the batch.
        occupancy: u64,
        /// Canonical engine label (e.g. `cr+pcr@32`, `cpu-thomas`).
        engine: String,
    },
    /// A faulted engine attempt is being retried (after backoff).
    Retry {
        /// Decision tick (after the backoff sleep).
        at: Tick,
        /// 1-based attempt index across the whole ladder.
        attempt: u64,
    },
    /// A device fault was observed while serving a flush.
    Fault {
        /// Decision tick.
        at: Tick,
        /// `true` for device loss (terminal), `false` for transient.
        lost: bool,
    },
    /// One engine's circuit breaker changed state.
    Breaker {
        /// Decision tick.
        at: Tick,
        /// Breaker key (e.g. `dev0:cr+pcr@32`).
        key: String,
        /// The state entered.
        to: BreakerState,
    },
    /// A worker stole a batch from another device's queue.
    Steal {
        /// Decision tick.
        at: Tick,
        /// Queue the batch was taken from.
        from: u64,
        /// Device that will serve it.
        to: u64,
    },
    /// A flush was fully served: every ticket fulfilled, every answer
    /// verified (and repaired where needed).
    Served {
        /// Decision tick (after the engine's simulated work).
        at: Tick,
        /// Size class.
        n: u64,
        /// Requests in the batch.
        occupancy: u64,
        /// Engine that produced the final answers.
        engine: String,
        /// The flush trigger, echoed for correlation.
        reason: FlushReason,
        /// Engine time in integer nanoseconds (simulated device time for
        /// GPU engines; modeled or measured for CPU engines).
        engine_ns: u64,
        /// Systems the verify step re-solved with GEP.
        repairs: u64,
        /// `true` when the answer came from an engine other than the
        /// planned one.
        degraded: bool,
    },
    /// The cluster router picked a node for a size class (consistent hash
    /// of the plan-cache key, skipping nodes gossip marked dead).
    RouteNode {
        /// Decision tick.
        at: Tick,
        /// Size class routed.
        n: u64,
        /// Node chosen.
        node: u64,
    },
    /// An RPC left a node over the simulated network.
    RpcSend {
        /// Decision tick.
        at: Tick,
        /// Sending node.
        src: u64,
        /// Receiving node.
        dst: u64,
        /// Payload size charged to the link model.
        bytes: u64,
    },
    /// An RPC missed its per-link deadline (dropped, partitioned, or the
    /// latency spike exceeded the budget).
    RpcTimeout {
        /// Decision tick (the deadline).
        at: Tick,
        /// Sending node.
        src: u64,
        /// Receiving node.
        dst: u64,
    },
    /// A timed-out RPC is being retried (after backoff) or hedged.
    RpcRetry {
        /// Decision tick (after the backoff).
        at: Tick,
        /// Sending node.
        src: u64,
        /// Receiving node.
        dst: u64,
        /// 1-based attempt index across the retry budget.
        attempt: u64,
    },
    /// Gossip moved a peer to *suspect* in one observer's view (missed
    /// heartbeats, not yet confirmed dead).
    GossipSuspect {
        /// Decision tick.
        at: Tick,
        /// Node whose view changed.
        observer: u64,
        /// Peer under suspicion.
        subject: u64,
    },
    /// Gossip confirmed a peer *dead* in one observer's view; the
    /// observer's breaker for that peer trips.
    GossipDead {
        /// Decision tick.
        at: Tick,
        /// Node whose view changed.
        observer: u64,
        /// Peer declared dead.
        subject: u64,
    },
    /// The coordinator solved a cluster interface system (the small
    /// tridiagonal system coupling the per-node reductions).
    InterfaceSolve {
        /// Decision tick.
        at: Tick,
        /// Global system size the interface couples.
        n: u64,
        /// Interface rows (2 × total chunks).
        rows: u64,
        /// Node that ran the interface solve.
        node: u64,
    },
    /// A warm flush found its factorization in the cache and skipped
    /// elimination entirely (back-substitution-only dispatch).
    FactorHit {
        /// Decision tick.
        at: Tick,
        /// Matrix-key fingerprint (non-zero).
        key: u64,
        /// Size class.
        n: u64,
    },
    /// A flush carried a matrix key but the cache had no factorization;
    /// one was computed, inserted, and the flush fell through to the
    /// cold path.
    FactorMiss {
        /// Decision tick.
        at: Tick,
        /// Matrix-key fingerprint (non-zero).
        key: u64,
        /// Size class.
        n: u64,
    },
    /// A cached factorization left the cache — LRU pressure from an
    /// insert, or invalidation after a failed warm verify.
    FactorEvict {
        /// Decision tick.
        at: Tick,
        /// Fingerprint of the evicted entry's key.
        key: u64,
    },
    /// A matrix key was analyzed (exactly once) and the verdict recorded
    /// in the certified catalog — emitted for certified *and* uncertified
    /// outcomes, so replay shows every analysis.
    CertIssued {
        /// Decision tick.
        at: Tick,
        /// Matrix-key fingerprint (non-zero).
        key: u64,
        /// Certificate name (`strictly-dominant`, `spd`, `m-matrix`, or
        /// `uncertified`).
        cert: String,
    },
    /// A certified flush skipped the per-answer residual verify (NaN/Inf
    /// guard only), per the catalog's 1-in-K sampling policy.
    CertSkipVerify {
        /// Decision tick.
        at: Tick,
        /// Matrix-key fingerprint (non-zero).
        key: u64,
        /// Size class.
        n: u64,
    },
    /// A verified flush of a certified key caught a corruption; the
    /// certificate is permanently revoked and the key returns to full
    /// verification.
    CertRevoked {
        /// Decision tick.
        at: Tick,
        /// Matrix-key fingerprint (non-zero).
        key: u64,
    },
}

impl TraceEvent {
    /// The tick the decision was made at.
    pub fn at(&self) -> Tick {
        match self {
            TraceEvent::Admit { at, .. }
            | TraceEvent::Reject { at, .. }
            | TraceEvent::Flush { at, .. }
            | TraceEvent::Plan { at, .. }
            | TraceEvent::Retry { at, .. }
            | TraceEvent::Fault { at, .. }
            | TraceEvent::Breaker { at, .. }
            | TraceEvent::Steal { at, .. }
            | TraceEvent::Served { at, .. }
            | TraceEvent::RouteNode { at, .. }
            | TraceEvent::RpcSend { at, .. }
            | TraceEvent::RpcTimeout { at, .. }
            | TraceEvent::RpcRetry { at, .. }
            | TraceEvent::GossipSuspect { at, .. }
            | TraceEvent::GossipDead { at, .. }
            | TraceEvent::InterfaceSolve { at, .. }
            | TraceEvent::FactorHit { at, .. }
            | TraceEvent::FactorMiss { at, .. }
            | TraceEvent::FactorEvict { at, .. }
            | TraceEvent::CertIssued { at, .. }
            | TraceEvent::CertSkipVerify { at, .. }
            | TraceEvent::CertRevoked { at, .. } => *at,
        }
    }

    /// Short kind label for divergence reports.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Admit { .. } => "admit",
            TraceEvent::Reject { .. } => "reject",
            TraceEvent::Flush { .. } => "flush",
            TraceEvent::Plan { .. } => "plan",
            TraceEvent::Retry { .. } => "retry",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::Breaker { .. } => "breaker",
            TraceEvent::Steal { .. } => "steal",
            TraceEvent::Served { .. } => "served",
            TraceEvent::RouteNode { .. } => "route-node",
            TraceEvent::RpcSend { .. } => "rpc-send",
            TraceEvent::RpcTimeout { .. } => "rpc-timeout",
            TraceEvent::RpcRetry { .. } => "rpc-retry",
            TraceEvent::GossipSuspect { .. } => "gossip-suspect",
            TraceEvent::GossipDead { .. } => "gossip-dead",
            TraceEvent::InterfaceSolve { .. } => "interface-solve",
            TraceEvent::FactorHit { .. } => "factor-hit",
            TraceEvent::FactorMiss { .. } => "factor-miss",
            TraceEvent::FactorEvict { .. } => "factor-evict",
            TraceEvent::CertIssued { .. } => "cert-issued",
            TraceEvent::CertSkipVerify { .. } => "cert-skip-verify",
            TraceEvent::CertRevoked { .. } => "cert-revoked",
        }
    }
}

/// Receives trace events. Implementations must be cheap: the service
/// calls [`TraceSink::record`] inline on its decision paths.
pub trait TraceSink: Send + Sync {
    /// Records one event.
    fn record(&self, event: TraceEvent);
}

/// A cloneable, optional handle to a [`TraceSink`]. The default handle is
/// disabled: [`TraceHandle::emit`] takes a closure so a disabled handle
/// never constructs the event (no allocation, one branch).
#[derive(Clone, Default)]
pub struct TraceHandle {
    sink: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle").field("enabled", &self.sink.is_some()).finish()
    }
}

impl TraceHandle {
    /// A handle that drops every event (the default).
    pub fn disabled() -> Self {
        Self { sink: None }
    }

    /// A handle recording into `sink`.
    pub fn to(sink: Arc<dyn TraceSink>) -> Self {
        Self { sink: Some(sink) }
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records the event built by `make`, if a sink is attached.
    pub fn emit(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.record(make());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct Collect(Mutex<Vec<TraceEvent>>);
    impl TraceSink for Collect {
        fn record(&self, event: TraceEvent) {
            self.0.lock().unwrap().push(event);
        }
    }

    #[test]
    fn disabled_handle_never_builds_the_event() {
        let handle = TraceHandle::disabled();
        assert!(!handle.enabled());
        let mut built = false;
        handle.emit(|| {
            built = true;
            TraceEvent::Admit { at: 0, id: 0, n: 0 }
        });
        assert!(!built, "disabled handles must not construct events");
    }

    #[test]
    fn attached_sink_receives_events_in_order() {
        let sink = Arc::new(Collect(Mutex::new(Vec::new())));
        let handle = TraceHandle::to(sink.clone());
        assert!(handle.enabled());
        handle.emit(|| TraceEvent::Admit { at: 1, id: 7, n: 64 });
        handle.emit(|| TraceEvent::Reject { at: 2, n: 64, reason: RejectReason::QueueFull });
        let events = sink.0.lock().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind(), "admit");
        assert_eq!(events[0].at(), 1);
        assert_eq!(events[1].kind(), "reject");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(RejectReason::QueueFull.label(), "queue-full");
        assert_eq!(RejectReason::ShuttingDown.label(), "shutting-down");
        assert_eq!(RejectReason::Invalid.label(), "invalid");
        assert_eq!(RejectReason::DeadlinePast.label(), "deadline-past");
    }
}
