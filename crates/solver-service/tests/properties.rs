//! Property tests for the planner and the serving pipeline.
//!
//! Invariants under random workloads:
//! * whatever engine the [`PlanCache`] picks, serving a flush through it
//!   produces the same answers as the sequential Thomas reference (the
//!   verify-and-repair layer makes the engine choice *semantically*
//!   invisible — plans only change performance);
//! * a cache key is tuned exactly once; every later flush of the same
//!   size class is a hit;
//! * the batcher's bucket table conserves requests: everything inserted
//!   comes back out in exactly one flush, always size-homogeneous.

use gpu_sim::Launcher;
use proptest::prelude::*;
use solver_service::{
    serve_flush, BucketTable, CircuitBreakers, DeviceCtx, DispatchConfig, FlushReason,
    FlushedBatch, PlanCache, ServiceMetrics,
};
use std::time::Duration;
use tridiag_core::residual::max_abs_diff;
use tridiag_core::{Generator, TridiagonalSystem, Workload};

/// Strategy: a random strictly diagonally dominant f32 system of size `n`.
fn dominant_system(n: usize) -> impl Strategy<Value = TridiagonalSystem<f32>> {
    let off = prop::collection::vec(-1.0f32..1.0, n);
    let margins = prop::collection::vec(0.5f32..2.0, n);
    let rhs = prop::collection::vec(-10.0f32..10.0, n);
    (off.clone(), off, margins, rhs).prop_map(move |(mut a, mut c, m, d)| {
        a[0] = 0.0;
        c[n - 1] = 0.0;
        let b: Vec<f32> = (0..n).map(|i| a[i].abs() + c[i].abs() + m[i]).collect();
        TridiagonalSystem { a, b, c, d }
    })
}

/// Strategy: a batch of 1..=12 same-size systems, n ∈ {32, 64, 128}.
fn dominant_flush() -> impl Strategy<Value = Vec<TridiagonalSystem<f32>>> {
    prop::sample::select(vec![32usize, 64, 128])
        .prop_flat_map(|n| prop::collection::vec(dominant_system(n), 1..=12))
}

fn dispatch_cfg() -> DispatchConfig {
    DispatchConfig { min_gpu_batch: 4, probe_count: 4, ..DispatchConfig::default() }
}

/// Serves `systems` through the full plan→dispatch→verify pipeline and
/// returns the responses in submission order.
fn serve(
    plans: &PlanCache,
    systems: &[TridiagonalSystem<f32>],
) -> Vec<solver_service::SolveResponse<f32>> {
    let launcher = Launcher::gtx280();
    let metrics = ServiceMetrics::new();
    let mut requests = Vec::new();
    let mut tickets = Vec::new();
    for (i, sys) in systems.iter().enumerate() {
        let (req, ticket) = solver_service::make_request(i as u64, sys.clone());
        requests.push(req);
        tickets.push(ticket);
    }
    let flush = FlushedBatch { n: systems[0].n(), requests, reason: FlushReason::Full };
    serve_flush(
        DeviceCtx::solo(&launcher),
        plans,
        &CircuitBreakers::default(),
        &metrics,
        &dispatch_cfg(),
        flush,
    );
    tickets.into_iter().map(|t| t.try_take().expect("synchronous serve")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn planned_engine_agrees_with_thomas_reference(systems in dominant_flush()) {
        let plans = PlanCache::new();
        let responses = serve(&plans, &systems);
        for (sys, resp) in systems.iter().zip(&responses) {
            let reference = cpu_solvers::thomas::solve(sys).unwrap();
            let diff = max_abs_diff(&resp.x, &reference);
            prop_assert!(
                diff < 1e-3,
                "engine {} disagrees with Thomas by {diff} at n={}",
                resp.engine,
                sys.n()
            );
            prop_assert!(resp.residual < 1e-2, "residual {}", resp.residual);
        }
    }

    #[test]
    fn cache_hits_skip_retuning(systems in dominant_flush(), repeats in 2usize..5) {
        let plans = PlanCache::new();
        let mut engines = Vec::new();
        for _ in 0..repeats {
            let responses = serve(&plans, &systems);
            engines.push(responses[0].engine.clone());
        }
        // Small flushes bypass planning entirely; large ones tune exactly once.
        let expected_tunes = u64::from(systems.len() >= 4);
        prop_assert!(
            plans.tunes() == expected_tunes,
            "tunes={} expected={expected_tunes} repeats={repeats}",
            plans.tunes()
        );
        if expected_tunes == 1 {
            prop_assert_eq!(plans.hits(), repeats as u64 - 1);
        }
        // Whatever was planned, it is sticky across flushes.
        prop_assert!(engines.windows(2).all(|w| w[0] == w[1]), "{:?}", engines);
    }

    #[test]
    fn bucket_table_conserves_requests(
        sizes in prop::collection::vec(prop::sample::select(vec![16usize, 32, 64]), 1..40),
        target in 1usize..8,
    ) {
        let mut table: BucketTable<f32> = BucketTable::new(target, Duration::from_secs(3600));
        let mut generator = Generator::new(99);
        let now = 0; // tick 0 on a virtual timeline — inserts never expire here
        let mut flushed_ids: Vec<u64> = Vec::new();
        for (i, &n) in sizes.iter().enumerate() {
            let (req, _ticket) = solver_service::make_request(
                i as u64,
                generator.system(Workload::DiagonallyDominant, n),
            );
            if let Some(flush) = table.insert(req, now) {
                prop_assert_eq!(flush.requests.len(), target);
                prop_assert!(flush.requests.iter().all(|r| r.system.n() == flush.n));
                flushed_ids.extend(flush.requests.iter().map(|r| r.id));
            }
        }
        for flush in table.flush_all() {
            prop_assert!(flush.requests.iter().all(|r| r.system.n() == flush.n));
            flushed_ids.extend(flush.requests.iter().map(|r| r.id));
        }
        // Conservation: every inserted request appears in exactly one flush.
        flushed_ids.sort_unstable();
        let expected: Vec<u64> = (0..sizes.len() as u64).collect();
        prop_assert_eq!(flushed_ids, expected);
    }
}
