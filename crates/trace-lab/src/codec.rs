//! Binary event codec: LEB128 varints, length-prefixed strings, one tag
//! byte per event variant. Hand-rolled — the build is offline and the
//! serde shim has no serializer — and deliberately boring: every field is
//! an integer, a bool, an enum byte, or a UTF-8 string, written in
//! declaration order.
//!
//! Decoding is total: any byte sequence either decodes or returns a
//! [`CodecError`] naming the offset and what was expected. Truncated or
//! corrupt input must never panic (property-tested in
//! `tests/codec_roundtrip.rs`).

use solver_service::{BreakerState, FlushReason, RejectReason, TraceEvent};

/// Why a byte stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended mid-value.
    Truncated {
        /// Byte offset the read started at.
        offset: usize,
        /// What was being read.
        wanted: &'static str,
    },
    /// A varint ran past 10 bytes (no u64 needs more).
    VarintTooLong {
        /// Byte offset the varint started at.
        offset: usize,
    },
    /// An unknown event tag byte.
    BadTag {
        /// Byte offset of the tag.
        offset: usize,
        /// The offending value.
        tag: u8,
    },
    /// An enum byte outside the variant range.
    BadEnum {
        /// Byte offset of the value.
        offset: usize,
        /// Which enum was being read.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A string's bytes were not valid UTF-8.
    BadUtf8 {
        /// Byte offset the string started at.
        offset: usize,
    },
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated { offset, wanted } => {
                write!(f, "truncated at byte {offset}: expected {wanted}")
            }
            CodecError::VarintTooLong { offset } => {
                write!(f, "varint at byte {offset} exceeds 10 bytes")
            }
            CodecError::BadTag { offset, tag } => {
                write!(f, "unknown event tag {tag} at byte {offset}")
            }
            CodecError::BadEnum { offset, what, value } => {
                write!(f, "invalid {what} value {value} at byte {offset}")
            }
            CodecError::BadUtf8 { offset } => {
                write!(f, "invalid UTF-8 in string at byte {offset}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Cursor over an encoded byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn byte(&mut self, wanted: &'static str) -> Result<u8, CodecError> {
        let b =
            *self.buf.get(self.pos).ok_or(CodecError::Truncated { offset: self.pos, wanted })?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads one LEB128 varint.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let start = self.pos;
        let mut value: u64 = 0;
        for shift in 0..10u32 {
            let b = self.byte("varint continuation")?;
            let payload = u64::from(b & 0x7F);
            // The 10th byte may only carry the top bit of a u64.
            if shift == 9 && (payload > 1 || b & 0x80 != 0) {
                return Err(CodecError::VarintTooLong { offset: start });
            }
            value |= payload << (7 * shift);
            if b & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(CodecError::VarintTooLong { offset: start })
    }

    /// Reads one bool byte (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        let offset = self.pos;
        match self.byte("bool")? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::BadEnum { offset, what: "bool", value: u64::from(other) }),
        }
    }

    /// Reads a fixed-width little-endian u64 — the trace-file header and
    /// trailer use fixed widths so the checksum's own bytes sit at a known
    /// offset.
    pub fn u64_le(&mut self) -> Result<u64, CodecError> {
        let offset = self.pos;
        let end = self
            .pos
            .checked_add(8)
            .filter(|&e| e <= self.buf.len())
            .ok_or(CodecError::Truncated { offset, wanted: "8-byte LE u64" })?;
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Reads a varint-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let start = self.pos;
        let len = self.u64()?;
        let len = usize::try_from(len)
            .ok()
            .filter(|&l| l <= self.remaining())
            .ok_or(CodecError::Truncated { offset: start, wanted: "string bytes" })?;
        let bytes = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8 { offset: start })
    }
}

/// Appends `v` as a LEB128 varint.
pub fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a bool as one byte.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Appends a varint-length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Event tag bytes, in [`TraceEvent`] declaration order.
mod tag {
    pub const ADMIT: u8 = 0;
    pub const REJECT: u8 = 1;
    pub const FLUSH: u8 = 2;
    pub const PLAN: u8 = 3;
    pub const RETRY: u8 = 4;
    pub const FAULT: u8 = 5;
    pub const BREAKER: u8 = 6;
    pub const STEAL: u8 = 7;
    pub const SERVED: u8 = 8;
    // Cluster events (PR 8). Tags 0..8 predate the cluster tier and are
    // frozen: pre-cluster traces must keep decoding byte-identically, so
    // new variants only ever append tags.
    pub const ROUTE_NODE: u8 = 9;
    pub const RPC_SEND: u8 = 10;
    pub const RPC_TIMEOUT: u8 = 11;
    pub const RPC_RETRY: u8 = 12;
    pub const GOSSIP_SUSPECT: u8 = 13;
    pub const GOSSIP_DEAD: u8 = 14;
    pub const INTERFACE_SOLVE: u8 = 15;
    // Factor-cache events (PR 9) — append-only, like the cluster tags.
    pub const FACTOR_HIT: u8 = 16;
    pub const FACTOR_MISS: u8 = 17;
    pub const FACTOR_EVICT: u8 = 18;
    // Certification events (PR 10) — append-only.
    pub const CERT_ISSUED: u8 = 19;
    pub const CERT_SKIP_VERIFY: u8 = 20;
    pub const CERT_REVOKED: u8 = 21;
}

fn flush_reason_byte(r: FlushReason) -> u8 {
    match r {
        FlushReason::Full => 0,
        FlushReason::Linger => 1,
        FlushReason::Deadline => 2,
        FlushReason::Shutdown => 3,
    }
}

fn flush_reason_from(offset: usize, v: u64) -> Result<FlushReason, CodecError> {
    match v {
        0 => Ok(FlushReason::Full),
        1 => Ok(FlushReason::Linger),
        2 => Ok(FlushReason::Deadline),
        3 => Ok(FlushReason::Shutdown),
        other => Err(CodecError::BadEnum { offset, what: "FlushReason", value: other }),
    }
}

fn reject_reason_byte(r: RejectReason) -> u8 {
    match r {
        RejectReason::QueueFull => 0,
        RejectReason::ShuttingDown => 1,
        RejectReason::Invalid => 2,
        RejectReason::DeadlinePast => 3,
    }
}

fn reject_reason_from(offset: usize, v: u64) -> Result<RejectReason, CodecError> {
    match v {
        0 => Ok(RejectReason::QueueFull),
        1 => Ok(RejectReason::ShuttingDown),
        2 => Ok(RejectReason::Invalid),
        3 => Ok(RejectReason::DeadlinePast),
        other => Err(CodecError::BadEnum { offset, what: "RejectReason", value: other }),
    }
}

fn breaker_state_byte(s: BreakerState) -> u8 {
    match s {
        BreakerState::Closed => 0,
        BreakerState::Open => 1,
        BreakerState::HalfOpen => 2,
    }
}

fn breaker_state_from(offset: usize, v: u64) -> Result<BreakerState, CodecError> {
    match v {
        0 => Ok(BreakerState::Closed),
        1 => Ok(BreakerState::Open),
        2 => Ok(BreakerState::HalfOpen),
        other => Err(CodecError::BadEnum { offset, what: "BreakerState", value: other }),
    }
}

/// Appends one event: tag byte, then fields in declaration order.
pub fn encode_event(event: &TraceEvent, out: &mut Vec<u8>) {
    match event {
        TraceEvent::Admit { at, id, n } => {
            out.push(tag::ADMIT);
            put_u64(out, *at);
            put_u64(out, *id);
            put_u64(out, *n);
        }
        TraceEvent::Reject { at, n, reason } => {
            out.push(tag::REJECT);
            put_u64(out, *at);
            put_u64(out, *n);
            out.push(reject_reason_byte(*reason));
        }
        TraceEvent::Flush { at, n, occupancy, reason } => {
            out.push(tag::FLUSH);
            put_u64(out, *at);
            put_u64(out, *n);
            put_u64(out, *occupancy);
            out.push(flush_reason_byte(*reason));
        }
        TraceEvent::Plan { at, n, occupancy, engine } => {
            out.push(tag::PLAN);
            put_u64(out, *at);
            put_u64(out, *n);
            put_u64(out, *occupancy);
            put_str(out, engine);
        }
        TraceEvent::Retry { at, attempt } => {
            out.push(tag::RETRY);
            put_u64(out, *at);
            put_u64(out, *attempt);
        }
        TraceEvent::Fault { at, lost } => {
            out.push(tag::FAULT);
            put_u64(out, *at);
            put_bool(out, *lost);
        }
        TraceEvent::Breaker { at, key, to } => {
            out.push(tag::BREAKER);
            put_u64(out, *at);
            put_str(out, key);
            out.push(breaker_state_byte(*to));
        }
        TraceEvent::Steal { at, from, to } => {
            out.push(tag::STEAL);
            put_u64(out, *at);
            put_u64(out, *from);
            put_u64(out, *to);
        }
        TraceEvent::Served { at, n, occupancy, engine, reason, engine_ns, repairs, degraded } => {
            out.push(tag::SERVED);
            put_u64(out, *at);
            put_u64(out, *n);
            put_u64(out, *occupancy);
            put_str(out, engine);
            out.push(flush_reason_byte(*reason));
            put_u64(out, *engine_ns);
            put_u64(out, *repairs);
            put_bool(out, *degraded);
        }
        TraceEvent::RouteNode { at, n, node } => {
            out.push(tag::ROUTE_NODE);
            put_u64(out, *at);
            put_u64(out, *n);
            put_u64(out, *node);
        }
        TraceEvent::RpcSend { at, src, dst, bytes } => {
            out.push(tag::RPC_SEND);
            put_u64(out, *at);
            put_u64(out, *src);
            put_u64(out, *dst);
            put_u64(out, *bytes);
        }
        TraceEvent::RpcTimeout { at, src, dst } => {
            out.push(tag::RPC_TIMEOUT);
            put_u64(out, *at);
            put_u64(out, *src);
            put_u64(out, *dst);
        }
        TraceEvent::RpcRetry { at, src, dst, attempt } => {
            out.push(tag::RPC_RETRY);
            put_u64(out, *at);
            put_u64(out, *src);
            put_u64(out, *dst);
            put_u64(out, *attempt);
        }
        TraceEvent::GossipSuspect { at, observer, subject } => {
            out.push(tag::GOSSIP_SUSPECT);
            put_u64(out, *at);
            put_u64(out, *observer);
            put_u64(out, *subject);
        }
        TraceEvent::GossipDead { at, observer, subject } => {
            out.push(tag::GOSSIP_DEAD);
            put_u64(out, *at);
            put_u64(out, *observer);
            put_u64(out, *subject);
        }
        TraceEvent::InterfaceSolve { at, n, rows, node } => {
            out.push(tag::INTERFACE_SOLVE);
            put_u64(out, *at);
            put_u64(out, *n);
            put_u64(out, *rows);
            put_u64(out, *node);
        }
        TraceEvent::FactorHit { at, key, n } => {
            out.push(tag::FACTOR_HIT);
            put_u64(out, *at);
            put_u64(out, *key);
            put_u64(out, *n);
        }
        TraceEvent::FactorMiss { at, key, n } => {
            out.push(tag::FACTOR_MISS);
            put_u64(out, *at);
            put_u64(out, *key);
            put_u64(out, *n);
        }
        TraceEvent::FactorEvict { at, key } => {
            out.push(tag::FACTOR_EVICT);
            put_u64(out, *at);
            put_u64(out, *key);
        }
        TraceEvent::CertIssued { at, key, cert } => {
            out.push(tag::CERT_ISSUED);
            put_u64(out, *at);
            put_u64(out, *key);
            put_str(out, cert);
        }
        TraceEvent::CertSkipVerify { at, key, n } => {
            out.push(tag::CERT_SKIP_VERIFY);
            put_u64(out, *at);
            put_u64(out, *key);
            put_u64(out, *n);
        }
        TraceEvent::CertRevoked { at, key } => {
            out.push(tag::CERT_REVOKED);
            put_u64(out, *at);
            put_u64(out, *key);
        }
    }
}

/// Reads one event from `r`.
pub fn decode_event(r: &mut Reader<'_>) -> Result<TraceEvent, CodecError> {
    let tag_offset = r.pos();
    let tag = r.byte("event tag")?;
    match tag {
        tag::ADMIT => Ok(TraceEvent::Admit { at: r.u64()?, id: r.u64()?, n: r.u64()? }),
        tag::REJECT => {
            let at = r.u64()?;
            let n = r.u64()?;
            let offset = r.pos();
            let reason = reject_reason_from(offset, u64::from(r.byte("RejectReason")?))?;
            Ok(TraceEvent::Reject { at, n, reason })
        }
        tag::FLUSH => {
            let at = r.u64()?;
            let n = r.u64()?;
            let occupancy = r.u64()?;
            let offset = r.pos();
            let reason = flush_reason_from(offset, u64::from(r.byte("FlushReason")?))?;
            Ok(TraceEvent::Flush { at, n, occupancy, reason })
        }
        tag::PLAN => Ok(TraceEvent::Plan {
            at: r.u64()?,
            n: r.u64()?,
            occupancy: r.u64()?,
            engine: r.str()?,
        }),
        tag::RETRY => Ok(TraceEvent::Retry { at: r.u64()?, attempt: r.u64()? }),
        tag::FAULT => Ok(TraceEvent::Fault { at: r.u64()?, lost: r.bool()? }),
        tag::BREAKER => {
            let at = r.u64()?;
            let key = r.str()?;
            let offset = r.pos();
            let to = breaker_state_from(offset, u64::from(r.byte("BreakerState")?))?;
            Ok(TraceEvent::Breaker { at, key, to })
        }
        tag::STEAL => Ok(TraceEvent::Steal { at: r.u64()?, from: r.u64()?, to: r.u64()? }),
        tag::SERVED => {
            let at = r.u64()?;
            let n = r.u64()?;
            let occupancy = r.u64()?;
            let engine = r.str()?;
            let offset = r.pos();
            let reason = flush_reason_from(offset, u64::from(r.byte("FlushReason")?))?;
            Ok(TraceEvent::Served {
                at,
                n,
                occupancy,
                engine,
                reason,
                engine_ns: r.u64()?,
                repairs: r.u64()?,
                degraded: r.bool()?,
            })
        }
        tag::ROUTE_NODE => Ok(TraceEvent::RouteNode { at: r.u64()?, n: r.u64()?, node: r.u64()? }),
        tag::RPC_SEND => {
            Ok(TraceEvent::RpcSend { at: r.u64()?, src: r.u64()?, dst: r.u64()?, bytes: r.u64()? })
        }
        tag::RPC_TIMEOUT => {
            Ok(TraceEvent::RpcTimeout { at: r.u64()?, src: r.u64()?, dst: r.u64()? })
        }
        tag::RPC_RETRY => Ok(TraceEvent::RpcRetry {
            at: r.u64()?,
            src: r.u64()?,
            dst: r.u64()?,
            attempt: r.u64()?,
        }),
        tag::GOSSIP_SUSPECT => {
            Ok(TraceEvent::GossipSuspect { at: r.u64()?, observer: r.u64()?, subject: r.u64()? })
        }
        tag::GOSSIP_DEAD => {
            Ok(TraceEvent::GossipDead { at: r.u64()?, observer: r.u64()?, subject: r.u64()? })
        }
        tag::INTERFACE_SOLVE => Ok(TraceEvent::InterfaceSolve {
            at: r.u64()?,
            n: r.u64()?,
            rows: r.u64()?,
            node: r.u64()?,
        }),
        tag::FACTOR_HIT => Ok(TraceEvent::FactorHit { at: r.u64()?, key: r.u64()?, n: r.u64()? }),
        tag::FACTOR_MISS => Ok(TraceEvent::FactorMiss { at: r.u64()?, key: r.u64()?, n: r.u64()? }),
        tag::FACTOR_EVICT => Ok(TraceEvent::FactorEvict { at: r.u64()?, key: r.u64()? }),
        tag::CERT_ISSUED => {
            Ok(TraceEvent::CertIssued { at: r.u64()?, key: r.u64()?, cert: r.str()? })
        }
        tag::CERT_SKIP_VERIFY => {
            Ok(TraceEvent::CertSkipVerify { at: r.u64()?, key: r.u64()?, n: r.u64()? })
        }
        tag::CERT_REVOKED => Ok(TraceEvent::CertRevoked { at: r.u64()?, key: r.u64()? }),
        other => Err(CodecError::BadTag { offset: tag_offset, tag: other }),
    }
}

/// Encodes a count-prefixed event sequence.
pub fn encode_events(events: &[TraceEvent], out: &mut Vec<u8>) {
    put_u64(out, events.len() as u64);
    for event in events {
        encode_event(event, out);
    }
}

/// Decodes a count-prefixed event sequence.
pub fn decode_events(r: &mut Reader<'_>) -> Result<Vec<TraceEvent>, CodecError> {
    let count = r.u64()?;
    // The smallest event (tag + varint + bool) is 3 bytes, so a count that
    // cannot possibly fit the remaining input is rejected up front rather
    // than letting a corrupt prefix drive a giant allocation.
    let count = usize::try_from(count)
        .ok()
        .filter(|&c| c.checked_mul(3).is_some_and(|need| need <= r.remaining()))
        .ok_or(CodecError::Truncated { offset: r.pos(), wanted: "event sequence" })?;
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        events.push(decode_event(r)?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip_edge_values() {
        for v in [0u64, 1, 127, 128, 255, 300, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.u64().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn overlong_varint_is_rejected_not_wrapped() {
        // 11 continuation bytes: no u64 needs that.
        let buf = [0x80u8; 11];
        let mut r = Reader::new(&buf);
        assert!(matches!(r.u64(), Err(CodecError::VarintTooLong { offset: 0 })));
        // 10 bytes but the last carries more than u64's top bit.
        let buf = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        let mut r = Reader::new(&buf);
        assert!(matches!(r.u64(), Err(CodecError::VarintTooLong { .. })));
    }

    #[test]
    fn every_variant_round_trips() {
        let events = vec![
            TraceEvent::Admit { at: 1, id: 2, n: 64 },
            TraceEvent::Reject { at: 3, n: 0, reason: RejectReason::DeadlinePast },
            TraceEvent::Flush { at: 4, n: 128, occupancy: 8, reason: FlushReason::Linger },
            TraceEvent::Plan { at: 5, n: 128, occupancy: 8, engine: "cr+pcr@32".into() },
            TraceEvent::Retry { at: 6, attempt: 2 },
            TraceEvent::Fault { at: 7, lost: true },
            TraceEvent::Breaker { at: 8, key: "dev0:cr+pcr@32".into(), to: BreakerState::Open },
            TraceEvent::Steal { at: 9, from: 1, to: 0 },
            TraceEvent::Served {
                at: 10,
                n: 128,
                occupancy: 8,
                engine: "cpu-thomas".into(),
                reason: FlushReason::Full,
                engine_ns: u64::MAX,
                repairs: 3,
                degraded: true,
            },
            TraceEvent::RouteNode { at: 11, n: 256, node: 3 },
            TraceEvent::RpcSend { at: 12, src: 0, dst: 3, bytes: 4096 },
            TraceEvent::RpcTimeout { at: 13, src: 0, dst: 3 },
            TraceEvent::RpcRetry { at: 14, src: 0, dst: 3, attempt: 2 },
            TraceEvent::GossipSuspect { at: 15, observer: 1, subject: 3 },
            TraceEvent::GossipDead { at: 16, observer: 1, subject: 3 },
            TraceEvent::InterfaceSolve { at: 17, n: 1 << 22, rows: 64, node: 0 },
            TraceEvent::FactorHit { at: 18, key: u64::MAX, n: 512 },
            TraceEvent::FactorMiss { at: 19, key: 1, n: 512 },
            TraceEvent::FactorEvict { at: 20, key: 0xDEAD_BEEF },
            TraceEvent::CertIssued { at: 21, key: 7, cert: "strictly-dominant".into() },
            TraceEvent::CertSkipVerify { at: 22, key: 7, n: 256 },
            TraceEvent::CertRevoked { at: 23, key: 7 },
        ];
        let mut buf = Vec::new();
        encode_events(&events, &mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(decode_events(&mut r).unwrap(), events);
        assert!(r.is_empty(), "decoder must consume exactly what the encoder wrote");
    }

    #[test]
    fn truncation_at_every_prefix_errors_cleanly() {
        let event = TraceEvent::Served {
            at: 123_456_789,
            n: 512,
            occupancy: 64,
            engine: "pcr".into(),
            reason: FlushReason::Deadline,
            engine_ns: 9_999_999,
            repairs: 1,
            degraded: false,
        };
        let mut buf = Vec::new();
        encode_event(&event, &mut buf);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(decode_event(&mut r).is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn pre_cluster_encodings_are_frozen() {
        // Decode-compatibility guard for the cluster taxonomy extension:
        // every pre-cluster variant (tags 0..=8) must keep the exact byte
        // encoding it had before tags 9..=15 existed, so traces captured by
        // earlier builds still replay bit-identically. These byte vectors
        // are pinned by hand from the frozen format — do not regenerate
        // them from the encoder.
        let golden: Vec<(TraceEvent, Vec<u8>)> = vec![
            (TraceEvent::Admit { at: 1, id: 2, n: 64 }, vec![0, 1, 2, 64]),
            (
                TraceEvent::Reject { at: 3, n: 0, reason: RejectReason::DeadlinePast },
                vec![1, 3, 0, 3],
            ),
            (
                TraceEvent::Flush { at: 4, n: 128, occupancy: 8, reason: FlushReason::Linger },
                vec![2, 4, 0x80, 0x01, 8, 1],
            ),
            (
                TraceEvent::Plan { at: 5, n: 64, occupancy: 8, engine: "pcr".into() },
                vec![3, 5, 64, 8, 3, b'p', b'c', b'r'],
            ),
            (TraceEvent::Retry { at: 6, attempt: 2 }, vec![4, 6, 2]),
            (TraceEvent::Fault { at: 7, lost: true }, vec![5, 7, 1]),
            (
                TraceEvent::Breaker { at: 8, key: "d".into(), to: BreakerState::Open },
                vec![6, 8, 1, b'd', 1],
            ),
            (TraceEvent::Steal { at: 9, from: 1, to: 0 }, vec![7, 9, 1, 0]),
            (
                TraceEvent::Served {
                    at: 10,
                    n: 64,
                    occupancy: 2,
                    engine: "pcr".into(),
                    reason: FlushReason::Full,
                    engine_ns: 5,
                    repairs: 0,
                    degraded: false,
                },
                vec![8, 10, 64, 2, 3, b'p', b'c', b'r', 0, 5, 0, 0],
            ),
        ];
        for (event, bytes) in &golden {
            let mut buf = Vec::new();
            encode_event(event, &mut buf);
            assert_eq!(&buf, bytes, "encoding drifted for {}", event.kind());
            let mut r = Reader::new(bytes);
            assert_eq!(&decode_event(&mut r).unwrap(), event, "decode drifted");
            assert!(r.is_empty());
        }
    }

    #[test]
    fn bad_tag_and_bad_enum_bytes_are_named() {
        let mut r = Reader::new(&[200, 0, 0, 0]);
        assert!(matches!(decode_event(&mut r), Err(CodecError::BadTag { tag: 200, .. })));
        // Reject event with reason byte 9.
        let buf = [tag::REJECT, 0, 0, 9];
        let mut r = Reader::new(&buf);
        assert!(matches!(
            decode_event(&mut r),
            Err(CodecError::BadEnum { what: "RejectReason", value: 9, .. })
        ));
    }
}
