//! The on-disk trace format: provenance header + event stream + checksum.
//!
//! ```text
//! [4]  magic "TLB1"
//! [v]  version          (varint, currently 1)
//! [v]  seed             (varint, echo of scenario.seed)
//! [8]  config_hash      (FNV-1a/64 of the encoded scenario, LE)
//! [s]  git_rev          (length-prefixed string; "unknown" outside git)
//! [..] scenario         (Scenario::encode)
//! [..] events           (count-prefixed, codec::encode_events)
//! [8]  checksum         (FNV-1a/64 of every preceding byte, LE)
//! ```
//!
//! Reading verifies, in order: length, checksum, magic, version, codec,
//! config-hash consistency, and that no trailing bytes remain. Corrupt or
//! truncated files return a typed [`TraceError`]; they never panic.

use crate::codec::{self, put_str, put_u64, CodecError, Reader};
use crate::scenario::Scenario;
use solver_service::TraceEvent;
use std::path::Path;

/// File magic: "trace-lab, format 1".
pub const MAGIC: [u8; 4] = *b"TLB1";

/// Current format version.
pub const VERSION: u64 = 1;

/// Why a trace file failed to load.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying read/write failed.
    Io(std::io::Error),
    /// The payload failed to decode.
    Codec(CodecError),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version is not [`VERSION`].
    BadVersion(u64),
    /// The trailer checksum does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum recomputed from the content.
        computed: u64,
    },
    /// The header's `config_hash` does not hash the embedded scenario.
    ConfigHashMismatch {
        /// Hash stored in the header.
        stored: u64,
        /// Hash recomputed from the embedded scenario.
        computed: u64,
    },
    /// Bytes remain between the event stream and the checksum trailer.
    TrailingBytes {
        /// How many.
        count: usize,
    },
    /// The file is too short to even hold the fixed fields.
    TooShort,
}

impl core::fmt::Display for TraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o: {e}"),
            TraceError::Codec(e) => write!(f, "trace decode: {e}"),
            TraceError::BadMagic => f.write_str("not a trace file (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::ChecksumMismatch { stored, computed } => write!(
                f,
                "trace corrupt: checksum {stored:#018x} stored, {computed:#018x} computed"
            ),
            TraceError::ConfigHashMismatch { stored, computed } => write!(
                f,
                "trace header inconsistent: config hash {stored:#018x} stored, \
                 {computed:#018x} computed from the embedded scenario"
            ),
            TraceError::TrailingBytes { count } => {
                write!(f, "trace corrupt: {count} trailing byte(s) after the event stream")
            }
            TraceError::TooShort => f.write_str("trace truncated: shorter than the fixed fields"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<CodecError> for TraceError {
    fn from(e: CodecError) -> Self {
        TraceError::Codec(e)
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// FNV-1a 64-bit over `bytes` — the format's checksum and config hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    hash
}

/// Hash a scenario the way trace headers do.
pub fn config_hash(scenario: &Scenario) -> u64 {
    let mut buf = Vec::new();
    scenario.encode(&mut buf);
    fnv1a64(&buf)
}

/// The short git revision of the working tree, or `"unknown"` when git is
/// unavailable — provenance only, never compared by replay.
pub fn current_git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// A loaded (or about-to-be-written) trace: provenance + scenario + the
/// captured decision stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFile {
    /// Echo of `scenario.seed` (also readable without decoding the
    /// scenario).
    pub seed: u64,
    /// FNV-1a/64 of the encoded scenario.
    pub config_hash: u64,
    /// Git revision the capture ran at (provenance only).
    pub git_rev: String,
    /// The workload that produced the events — replay re-runs this.
    pub scenario: Scenario,
    /// The captured decision stream.
    pub events: Vec<TraceEvent>,
}

impl TraceFile {
    /// Stamps a capture with provenance.
    pub fn new(scenario: Scenario, events: Vec<TraceEvent>) -> Self {
        Self {
            seed: scenario.seed,
            config_hash: config_hash(&scenario),
            git_rev: current_git_rev(),
            scenario,
            events,
        }
    }

    /// Serializes to the on-disk format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u64(&mut out, VERSION);
        put_u64(&mut out, self.seed);
        out.extend_from_slice(&self.config_hash.to_le_bytes());
        put_str(&mut out, &self.git_rev);
        self.scenario.encode(&mut out);
        codec::encode_events(&self.events, &mut out);
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses and fully verifies the on-disk format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceError> {
        // Fixed minimum: magic + version + seed + hash + trailer.
        if bytes.len() < MAGIC.len() + 1 + 1 + 8 + 8 {
            return Err(TraceError::TooShort);
        }
        let (content, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
        let computed = fnv1a64(content);
        if stored != computed {
            return Err(TraceError::ChecksumMismatch { stored, computed });
        }
        if content[..MAGIC.len()] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut r = Reader::new(&content[MAGIC.len()..]);
        let version = r.u64()?;
        if version != VERSION {
            return Err(TraceError::BadVersion(version));
        }
        let seed = r.u64()?;
        let stored_hash = r.u64_le()?;
        let git_rev = r.str()?;
        let scenario = Scenario::decode(&mut r)?;
        let computed_hash = config_hash(&scenario);
        if stored_hash != computed_hash {
            return Err(TraceError::ConfigHashMismatch {
                stored: stored_hash,
                computed: computed_hash,
            });
        }
        let events = codec::decode_events(&mut r)?;
        if !r.is_empty() {
            return Err(TraceError::TrailingBytes { count: r.remaining() });
        }
        Ok(Self { seed, config_hash: stored_hash, git_rev, scenario, events })
    }

    /// Writes the serialized trace to `path`, creating parent directories.
    pub fn write(&self, path: &Path) -> Result<(), TraceError> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads and verifies a trace from `path`.
    pub fn read(path: &Path) -> Result<Self, TraceError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solver_service::{FlushReason, TraceEvent};

    fn sample() -> TraceFile {
        let scenario = Scenario::chaos(100);
        let events = vec![
            TraceEvent::Admit { at: 0, id: 0, n: 64 },
            TraceEvent::Flush { at: 200_000, n: 64, occupancy: 1, reason: FlushReason::Linger },
        ];
        TraceFile::new(scenario, events)
    }

    #[test]
    fn round_trips_bytes_exactly() {
        let trace = sample();
        let bytes = trace.to_bytes();
        let back = TraceFile::from_bytes(&bytes).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.to_bytes(), bytes, "re-encoding must be byte-stable");
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            assert!(TraceFile::from_bytes(&corrupt).is_err(), "flipping byte {i} went unnoticed");
        }
    }

    #[test]
    fn truncation_at_every_prefix_errors_cleanly() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(TraceFile::from_bytes(&bytes[..cut]).is_err(), "prefix of {cut} bytes loaded");
        }
    }

    #[test]
    fn bad_magic_and_version_are_distinguished() {
        // Corrupt the magic, then re-stamp a valid checksum so the failure
        // is attributed to the magic itself.
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        let len = bytes.len();
        let checksum = fnv1a64(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(TraceFile::from_bytes(&bytes), Err(TraceError::BadMagic)));

        let mut bytes = sample().to_bytes();
        bytes[4] = 9; // version varint
        let len = bytes.len();
        let checksum = fnv1a64(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(TraceFile::from_bytes(&bytes), Err(TraceError::BadVersion(9))));
    }

    #[test]
    fn writes_and_reads_through_the_filesystem() {
        let trace = sample();
        let dir = std::env::temp_dir().join("trace-lab-test");
        let path = dir.join("sample.trace");
        trace.write(&path).unwrap();
        assert_eq!(TraceFile::read(&path).unwrap(), trace);
        let _ = std::fs::remove_file(&path);
    }
}
