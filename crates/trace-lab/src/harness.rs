//! The deterministic lab harness: the solver service's decision pipeline
//! — admission, bucket batching, planning, dispatch, verify-and-repair,
//! breakers — driven from **one thread** on a **simulated clock**.
//!
//! The threaded [`solver_service::SolverService`] under a sim clock is
//! de-flaked but not reproducible: OS scheduling still reorders events.
//! This harness removes the last nondeterminism source by being the only
//! thread: arrivals and linger deadlines are merged in tick order, flushes
//! are served synchronously, and the clock only moves where the event loop
//! (or `serve_flush`'s modeled engine time) moves it. The resulting event
//! stream — values *and* timestamps — is a pure function of the
//! [`Scenario`], which is what makes bit-identical replay possible (the
//! invariant DESIGN.md §10 states precisely).
//!
//! Tie-break rules, fixed forever (changing any of these invalidates old
//! traces):
//! 1. at a given tick, due linger/deadline flushes fire before arrivals;
//! 2. arrivals are admitted in index order;
//! 3. a flush triggered by an insert (bucket full) is served immediately,
//!    before the next arrival is considered;
//! 4. shutdown drains buckets in ascending size order (the bucket table's
//!    iteration order).

use crate::record::RecordingSink;
use crate::scenario::Scenario;
use factor_cache::SharedFactorCache;
use gpu_sim::{Clock, FaultConfig, FaultPlan, Launcher, Tick};
use gpu_solvers::GpuAlgorithm;
use numeric_verify::CertifiedCatalog;
use solver_service::{
    make_request_keyed, serve_flush, BreakerConfig, BucketTable, CircuitBreakers, DeviceCtx,
    DispatchConfig, Engine, FlushedBatch, PlanCache, RejectReason, ServiceMetrics, SolveResponse,
    Ticket, TraceEvent, TraceHandle,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use tridiag_core::{Generator, MatrixKey, TridiagonalSystem, Workload};

/// What one harness run measured, alongside the event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Requests admitted and served to completion.
    pub served: u64,
    /// Requests shed at admission (queue full).
    pub rejected: u64,
    /// Per-served-request virtual latency (submit → fulfilled), ns,
    /// in submission order.
    pub latencies_ns: Vec<u64>,
    /// Responses that escaped the verify bound (must stay 0).
    pub wrong: u64,
    /// Systems the verify step re-solved with GEP.
    pub repairs: u64,
    /// The virtual tick the run finished at (the simulated makespan).
    pub final_tick: Tick,
}

/// One completed harness run: the captured decision stream plus stats.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// Every service decision, in emission order.
    pub events: Vec<TraceEvent>,
    /// Aggregate measurements.
    pub stats: RunStats,
}

/// Residual bound a served f32 answer must beat to count as correct.
const RESIDUAL_BOUND: f64 = 1e-2;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Emits the Flush event and serves the batch synchronously — the
/// single-threaded analogue of `route_flush` + a worker pop.
#[allow(clippy::too_many_arguments)]
fn serve_one(
    flush: FlushedBatch<f32>,
    launcher: &Launcher,
    plans: &PlanCache,
    breakers: &CircuitBreakers,
    metrics: &ServiceMetrics,
    cfg: &DispatchConfig,
    trace: &TraceHandle,
    clock: &Clock,
) {
    trace.emit(|| TraceEvent::Flush {
        at: clock.now(),
        n: flush.n as u64,
        occupancy: flush.requests.len() as u64,
        reason: flush.reason,
    });
    serve_flush(DeviceCtx::solo(launcher), plans, breakers, metrics, cfg, flush);
}

/// Runs `scenario` to completion and returns the decision stream + stats.
///
/// Two calls with the same scenario return identical [`RunOutput`]s,
/// bit for bit — the property the replay gate enforces.
pub fn run(scenario: &Scenario) -> RunOutput {
    let clock = Clock::sim();
    let sink = Arc::new(RecordingSink::new());
    let trace = TraceHandle::to(sink.clone());

    let fault_cfg = FaultConfig::chaos(
        scenario.seed,
        scenario.launch_fault_ppm as f64 / 1e6,
        scenario.bit_flip_ppm as f64 / 1e6,
    );
    let launcher = Launcher::gtx280().with_fault_plan(Arc::new(FaultPlan::new(fault_cfg)));
    let plans = PlanCache::new();
    let breakers = CircuitBreakers::with_clock(BreakerConfig::default(), clock.clone())
        .with_trace(trace.clone());
    let metrics = ServiceMetrics::new();
    let factor_cache = (scenario.matrix_pool > 0)
        .then(|| Arc::new(SharedFactorCache::new(scenario.matrix_pool.max(1) as usize * 8)));
    let certified = (scenario.certify > 0)
        .then(|| Arc::new(CertifiedCatalog::with_sample_period(scenario.certify as usize)));
    let cfg = DispatchConfig {
        min_gpu_batch: scenario.min_gpu_batch.max(1) as usize,
        pin_engine: (scenario.pin_cr_pcr_m > 0)
            .then_some(Engine::Gpu(GpuAlgorithm::CrPcr { m: scenario.pin_cr_pcr_m as usize })),
        // The sanitizer is its own CI gate; lab runs skip its overhead.
        sanitize_first_flush: false,
        clock: clock.clone(),
        trace: trace.clone(),
        factor_cache: factor_cache.clone(),
        certified: certified.clone(),
        ..DispatchConfig::default()
    };

    let mut table: BucketTable<f32> = BucketTable::new(
        scenario.target_batch.max(1) as usize,
        Duration::from_micros(scenario.max_linger_us),
    );
    let mut generator = Generator::new(scenario.seed);
    let mut size_rng = scenario.seed ^ 0x5A1E_D065;
    let capacity = scenario.queue_capacity.max(1) as usize;

    // Pooled matrix templates, keyed `(n, slot)`. Populated lazily but
    // deterministically: template contents are a pure function of
    // `(seed, n, slot)`, independent of arrival order.
    let mut pool: BTreeMap<(usize, u64), (TridiagonalSystem<f32>, MatrixKey)> = BTreeMap::new();

    // Arrival ticks are a pure function of the scenario; precompute them
    // in index order.
    let arrivals: Vec<Tick> = (0..scenario.requests).map(|i| scenario.arrival_tick(i)).collect();

    let mut tickets: Vec<Ticket<f32>> = Vec::new();
    let mut rejected = 0u64;
    let mut next_id = 0u64;
    let mut i = 0usize;

    while i < arrivals.len() || table.pending() > 0 {
        let next = match (arrivals.get(i).copied(), table.next_deadline()) {
            (Some(a), Some(d)) => a.min(d),
            (Some(a), None) => a,
            (None, Some(d)) => d,
            (None, None) => break,
        };
        clock.advance_to(next);

        // Rule 1: due flushes fire before arrivals at the same tick.
        for flush in table.flush_expired(clock.now()) {
            serve_one(flush, &launcher, &plans, &breakers, &metrics, &cfg, &trace, &clock);
        }

        // Rules 2–3: admit every arrival now due, serving any full-bucket
        // flush before the next arrival. (Serving moves the clock, which
        // can make further arrivals due — that's the single server being
        // busy, and it is equally deterministic.)
        while i < arrivals.len() && arrivals[i] <= clock.now() {
            let n = scenario.sizes[(splitmix64(&mut size_rng) as usize) % scenario.sizes.len()]
                .max(2) as usize;
            let (system, matrix_key) = if scenario.matrix_pool > 0 {
                let slot = splitmix64(&mut size_rng) % scenario.matrix_pool;
                let (template, key) = pool.entry((n, slot)).or_insert_with(|| {
                    let mut g = Generator::new(
                        scenario.seed ^ slot.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ n as u64,
                    );
                    let s: TridiagonalSystem<f32> = g.system(Workload::DiagonallyDominant, n);
                    let key = MatrixKey::of::<f32>(&s.a, &s.b, &s.c);
                    (s, key)
                });
                // Fresh RHS per request, drawn from the sequential
                // generator so the stream stays a pure function of the
                // scenario.
                let d = generator.system::<f32>(Workload::DiagonallyDominant, n).d;
                let mut system = template.clone();
                system.d = d;
                (system, Some(*key))
            } else {
                (generator.system(Workload::DiagonallyDominant, n), None)
            };
            let at = clock.now();
            if table.pending() >= capacity {
                rejected += 1;
                trace.emit(|| TraceEvent::Reject {
                    at,
                    n: n as u64,
                    reason: RejectReason::QueueFull,
                });
            } else {
                let id = next_id;
                next_id += 1;
                trace.emit(|| TraceEvent::Admit { at, id, n: n as u64 });
                let (request, ticket) = make_request_keyed(id, system, at, None, matrix_key);
                tickets.push(ticket);
                if let Some(flush) = table.insert(request, at) {
                    serve_one(flush, &launcher, &plans, &breakers, &metrics, &cfg, &trace, &clock);
                }
            }
            i += 1;
        }
    }

    // Rule 4: shutdown drain, ascending size order.
    for flush in table.flush_all() {
        serve_one(flush, &launcher, &plans, &breakers, &metrics, &cfg, &trace, &clock);
    }

    let mut latencies_ns = Vec::with_capacity(tickets.len());
    let mut wrong = 0u64;
    let mut repairs = 0u64;
    for ticket in tickets {
        let response: SolveResponse<f32> =
            ticket.try_take().expect("single-threaded serve fulfills every admitted ticket");
        latencies_ns.push(response.latency.as_nanos().min(u64::MAX as u128) as u64);
        if !response.residual.is_finite() || response.residual >= RESIDUAL_BOUND {
            wrong += 1;
        }
        repairs += u64::from(response.repaired);
    }

    let stats = RunStats {
        served: latencies_ns.len() as u64,
        rejected,
        latencies_ns,
        wrong,
        repairs,
        final_tick: clock.now(),
    };
    RunOutput { events: sink.take(), stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn two_runs_of_the_same_scenario_are_bit_identical() {
        let scenario = Scenario::chaos(120);
        let a = run(&scenario);
        let b = run(&scenario);
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.events, b.events, "decision streams diverged");
        assert_eq!(a.stats, b.stats, "stats diverged");
        assert!(a.stats.served > 0);
        assert_eq!(a.stats.wrong, 0, "a wrong answer escaped verification");
    }

    #[test]
    fn warm_cell_hits_the_factor_cache_and_stays_deterministic() {
        let scenario = Scenario::warm(150);
        let a = run(&scenario);
        let b = run(&scenario);
        assert_eq!(a.events, b.events, "warm decision streams diverged");
        assert_eq!(a.stats, b.stats, "warm stats diverged");
        assert_eq!(a.stats.wrong, 0, "a warm answer escaped verification");
        let hits = a.events.iter().filter(|e| e.kind() == "factor-hit").count();
        let misses = a.events.iter().filter(|e| e.kind() == "factor-miss").count();
        assert!(misses > 0, "warm cell never populated the cache");
        assert!(
            hits > misses,
            "pooled traffic should be mostly warm: {hits} hits / {misses} misses"
        );
    }

    #[test]
    fn certified_cell_skips_verification_and_stays_deterministic() {
        let scenario = Scenario::certified(150);
        let a = run(&scenario);
        let b = run(&scenario);
        assert_eq!(a.events, b.events, "certified decision streams diverged");
        assert_eq!(a.stats, b.stats, "certified stats diverged");
        assert_eq!(a.stats.wrong, 0, "a certified answer escaped its bound");
        let issued = a.events.iter().filter(|e| e.kind() == "cert-issued").count();
        let skips = a.events.iter().filter(|e| e.kind() == "cert-skip-verify").count();
        assert!(issued > 0, "certified cell never analyzed a matrix");
        assert!(skips > 0, "certified cell never skipped a verify");
        assert_eq!(
            a.events.iter().filter(|e| e.kind() == "cert-revoked").count(),
            0,
            "fault-free certified traffic must not revoke"
        );
    }

    #[test]
    fn event_timestamps_never_go_backwards() {
        let out = run(&Scenario::bursty(100));
        let ticks: Vec<Tick> = out.events.iter().map(TraceEvent::at).collect();
        assert!(ticks.windows(2).all(|w| w[0] <= w[1]), "trace is not tick-ordered");
    }

    #[test]
    fn adversarial_flood_sheds_load_but_loses_nothing() {
        let out = run(&Scenario::adversarial(300));
        assert_eq!(out.stats.served + out.stats.rejected, 300);
        assert_eq!(out.stats.wrong, 0);
        // The flood must actually stress admission — otherwise the cell
        // tests nothing.
        assert!(out.stats.rejected > 0, "adversarial cell never filled the queue");
    }

    #[test]
    fn conservation_served_plus_rejected_equals_offered() {
        for scenario in [Scenario::steady(150), Scenario::diurnal(150), Scenario::bursty(150)] {
            let out = run(&scenario);
            assert_eq!(
                out.stats.served + out.stats.rejected,
                150,
                "{} lost requests",
                scenario.name
            );
            assert_eq!(out.stats.wrong, 0, "{}", scenario.name);
        }
    }
}
