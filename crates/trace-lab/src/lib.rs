//! trace-lab: deterministic trace capture, bit-identical replay, and a
//! replay-driven load lab for the tridiagonal solver service.
//!
//! The crate has three layers:
//!
//! * **Capture** — [`harness::run`] drives the service's decision pipeline
//!   (admission → bucket batching → planning → dispatch → verify/repair →
//!   breakers) from a single thread on a simulated clock, recording every
//!   decision as a [`solver_service::TraceEvent`]. The resulting stream,
//!   timestamps included, is a pure function of the [`Scenario`].
//! * **Replay** — [`replay::capture`] stamps a stream into a
//!   provenance-carrying [`TraceFile`] (seed, config hash, git rev,
//!   checksum); [`replay::verify`] re-runs the embedded scenario and
//!   demands the fresh stream be bit-identical, reporting the first
//!   [`Divergence`] otherwise.
//! * **Load lab** — [`loadlab::standard_cells`] is a matrix of open-loop
//!   workloads (steady, diurnal, bursty, adversarial small-n floods),
//!   each scored against an [`Slo`]. Deterministic by construction, so
//!   SLO checks gate CI without benchmark flake.
//!
//! The on-disk format and event taxonomy are specified in DESIGN.md §10,
//! together with the invariants that make bit-identical replay possible —
//! in particular *why* the threaded service under a sim clock is de-flaked
//! but not replayable, and this single-threaded harness is.

#![warn(missing_docs)]

pub mod codec;
pub mod file;
pub mod harness;
pub mod loadlab;
pub mod record;
pub mod replay;
pub mod scenario;

pub use codec::CodecError;
pub use file::{TraceError, TraceFile};
pub use harness::{RunOutput, RunStats};
pub use loadlab::{LabCell, LabOutcome, Slo};
pub use record::RecordingSink;
pub use replay::{capture, verify, Divergence};
pub use scenario::{Pattern, Scenario};
