//! The replay-driven load lab: a matrix of open-loop scenarios, each run
//! under the deterministic harness and scored against an SLO.
//!
//! Because the harness clock is virtual, every number here — availability,
//! latency percentiles, throughput — is a pure function of the scenario,
//! so the SLO check is a *deterministic gate*, not a flaky benchmark: a
//! failure is a behaviour change in the service pipeline, never scheduler
//! noise on the CI host.

use crate::harness::{self, RunStats};
use crate::scenario::Scenario;

/// The service-level objective one lab cell must meet.
///
/// All integer, like [`Scenario`]: availability in parts-per-million,
/// latency in virtual nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slo {
    /// Minimum served/offered ratio, parts per million.
    pub min_availability_ppm: u64,
    /// Maximum p99 virtual latency (submit → fulfilled), ns.
    pub max_p99_ns: u64,
    /// Whether any out-of-bound answer fails the cell (always on in the
    /// standard matrix).
    pub require_correct: bool,
}

/// One cell of the lab matrix: a workload and the bar it must clear.
#[derive(Debug, Clone)]
pub struct LabCell {
    /// The workload.
    pub scenario: Scenario,
    /// The bar.
    pub slo: Slo,
}

/// What one cell measured, and whether it cleared its SLO.
#[derive(Debug, Clone, PartialEq)]
pub struct LabOutcome {
    /// Cell name (the scenario's).
    pub name: String,
    /// Requests offered.
    pub offered: u64,
    /// Requests served.
    pub served: u64,
    /// Requests shed at admission.
    pub rejected: u64,
    /// served/offered, parts per million.
    pub availability_ppm: u64,
    /// Median virtual latency, ns.
    pub p50_ns: u64,
    /// 99th-percentile virtual latency, ns.
    pub p99_ns: u64,
    /// Served throughput over the simulated makespan, requests/s.
    pub throughput_rps: u64,
    /// Verify-and-repair interventions.
    pub repairs: u64,
    /// Answers that escaped the verify bound.
    pub wrong: u64,
    /// Simulated makespan, ns.
    pub makespan_ns: u64,
    /// Every SLO clause this cell missed (empty = pass).
    pub failures: Vec<String>,
}

impl LabOutcome {
    /// `true` when the cell cleared every SLO clause.
    pub fn pass(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Nearest-rank percentile over an unsorted latency sample. `pct` is 0–100.
pub fn percentile_ns(latencies: &[u64], pct: u64) -> u64 {
    if latencies.is_empty() {
        return 0;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    let rank = (sorted.len() as u64 - 1) * pct / 100;
    sorted[rank as usize]
}

fn availability_ppm(served: u64, offered: u64) -> u64 {
    if offered == 0 {
        return 1_000_000;
    }
    served.saturating_mul(1_000_000) / offered
}

/// Runs one cell and scores it against its SLO.
pub fn run_cell(cell: &LabCell) -> LabOutcome {
    let out = harness::run(&cell.scenario);
    score(cell, &out.stats)
}

/// Scores already-collected stats against a cell's SLO (split out so the
/// replay gate can score a verified run without re-running it).
pub fn score(cell: &LabCell, stats: &RunStats) -> LabOutcome {
    let offered = cell.scenario.requests;
    let availability = availability_ppm(stats.served, offered);
    let p50 = percentile_ns(&stats.latencies_ns, 50);
    let p99 = percentile_ns(&stats.latencies_ns, 99);
    let makespan = stats.final_tick;
    let throughput = stats.served.saturating_mul(1_000_000_000).checked_div(makespan).unwrap_or(0);

    let mut failures = Vec::new();
    if availability < cell.slo.min_availability_ppm {
        failures.push(format!(
            "availability {availability} ppm < slo {} ppm",
            cell.slo.min_availability_ppm
        ));
    }
    if p99 > cell.slo.max_p99_ns {
        failures.push(format!("p99 {p99} ns > slo {} ns", cell.slo.max_p99_ns));
    }
    if cell.slo.require_correct && stats.wrong > 0 {
        failures.push(format!("{} answer(s) escaped the verify bound", stats.wrong));
    }

    LabOutcome {
        name: cell.scenario.name.clone(),
        offered,
        served: stats.served,
        rejected: stats.rejected,
        availability_ppm: availability,
        p50_ns: p50,
        p99_ns: p99,
        throughput_rps: throughput,
        repairs: stats.repairs,
        wrong: stats.wrong,
        makespan_ns: makespan,
        failures,
    }
}

/// The standard lab matrix: one cell per generator pattern. `quick` runs
/// the CI-sized workloads; the full size is for `repro loadlab` locally.
///
/// SLO numbers are deliberately loose bounds on the deterministic
/// measurements (recorded in EXPERIMENTS.md): they catch regressions like
/// a broken linger timer (p99 collapse) or an admission leak
/// (availability), not single-tick drift — that is the replay gate's job.
pub fn standard_cells(quick: bool) -> Vec<LabCell> {
    let n: u64 = if quick { 400 } else { 2_000 };
    vec![
        LabCell {
            scenario: Scenario::steady(n),
            slo: Slo {
                min_availability_ppm: 990_000,
                max_p99_ns: 2_000_000,
                require_correct: true,
            },
        },
        LabCell {
            scenario: Scenario::diurnal(n),
            slo: Slo {
                min_availability_ppm: 990_000,
                max_p99_ns: 2_000_000,
                require_correct: true,
            },
        },
        LabCell {
            scenario: Scenario::bursty(n),
            slo: Slo {
                min_availability_ppm: 990_000,
                max_p99_ns: 5_000_000,
                require_correct: true,
            },
        },
        LabCell {
            scenario: Scenario::adversarial(n),
            // The flood is *designed* to shed load; the SLO asserts the
            // service stays correct and sheds gracefully rather than
            // serving everything.
            slo: Slo {
                min_availability_ppm: 100_000,
                max_p99_ns: 20_000_000,
                require_correct: true,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let sample: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&sample, 50), 50);
        assert_eq!(percentile_ns(&sample, 99), 99);
        assert_eq!(percentile_ns(&sample, 0), 1);
        assert_eq!(percentile_ns(&sample, 100), 100);
        assert_eq!(percentile_ns(&[], 99), 0);
    }

    #[test]
    fn the_quick_matrix_passes_its_own_slos() {
        for cell in standard_cells(true) {
            let outcome = run_cell(&cell);
            assert!(outcome.pass(), "{} failed its SLO: {:?}", outcome.name, outcome.failures);
        }
    }

    #[test]
    fn lab_outcomes_are_deterministic() {
        let cell = &standard_cells(true)[0];
        assert_eq!(run_cell(cell), run_cell(cell));
    }
}
