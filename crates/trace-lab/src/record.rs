//! In-memory trace recorder: the [`TraceSink`] the capture harness and
//! tests attach to a service's [`solver_service::TraceHandle`].

use solver_service::{TraceEvent, TraceSink};
use std::sync::Mutex;

/// Records every event, in emission order, into memory.
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl RecordingSink {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns everything recorded so far.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Clones the recorded events without draining them.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }
}

impl TraceSink for RecordingSink {
    fn record(&self, event: TraceEvent) {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solver_service::TraceHandle;
    use std::sync::Arc;

    #[test]
    fn records_in_order_and_take_drains() {
        let sink = Arc::new(RecordingSink::new());
        let handle = TraceHandle::to(sink.clone());
        handle.emit(|| TraceEvent::Admit { at: 1, id: 0, n: 64 });
        handle.emit(|| TraceEvent::Retry { at: 2, attempt: 1 });
        assert_eq!(sink.len(), 2);
        let events = sink.take();
        assert_eq!(events.iter().map(TraceEvent::at).collect::<Vec<_>>(), vec![1, 2]);
        assert!(sink.is_empty());
    }
}
