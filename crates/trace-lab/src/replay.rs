//! Capture and bit-identical replay.
//!
//! `capture` runs a scenario under the deterministic harness and stamps
//! the resulting decision stream into a provenance-carrying
//! [`TraceFile`]. `verify` re-runs the embedded scenario and compares the
//! fresh stream against the recorded one, event by event — values *and*
//! virtual timestamps. Any difference is a [`Divergence`], which the
//! `repro replay` gate turns into exit code 1.

use crate::file::TraceFile;
use crate::harness::{self, RunStats};
use crate::scenario::Scenario;
use solver_service::TraceEvent;

/// How a replay differed from the recorded trace.
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// The replay emitted a different number of events.
    EventCount {
        /// Events in the recorded trace.
        expected: usize,
        /// Events the replay produced.
        got: usize,
    },
    /// The first event that differed.
    Event {
        /// Index into the event stream.
        index: usize,
        /// The recorded event.
        expected: Box<TraceEvent>,
        /// What the replay produced instead.
        got: Box<TraceEvent>,
    },
}

impl core::fmt::Display for Divergence {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Divergence::EventCount { expected, got } => {
                write!(f, "event count diverged: trace has {expected}, replay produced {got}")
            }
            Divergence::Event { index, expected, got } => {
                write!(f, "event {index} diverged:\n  trace:  {expected:?}\n  replay: {got:?}")
            }
        }
    }
}

/// Runs `scenario` and returns the provenance-stamped trace plus the run's
/// stats.
pub fn capture(scenario: &Scenario) -> (TraceFile, RunStats) {
    let out = harness::run(scenario);
    (TraceFile::new(scenario.clone(), out.events), out.stats)
}

/// Re-runs the trace's embedded scenario and checks the fresh decision
/// stream is bit-identical to the recorded one.
///
/// Returns the replay's stats on success; the first [`Divergence`]
/// otherwise. Comparison is exact — `Tick` timestamps included — because
/// the harness clock is virtual.
pub fn verify(trace: &TraceFile) -> Result<RunStats, Divergence> {
    let out = harness::run(&trace.scenario);
    if let Some((index, (expected, got))) =
        trace.events.iter().zip(out.events.iter()).enumerate().find(|(_, (a, b))| a != b)
    {
        return Err(Divergence::Event {
            index,
            expected: Box::new(expected.clone()),
            got: Box::new(got.clone()),
        });
    }
    if trace.events.len() != out.events.len() {
        return Err(Divergence::EventCount { expected: trace.events.len(), got: out.events.len() });
    }
    Ok(out.stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_then_verify_round_trips() {
        let (trace, stats) = capture(&Scenario::chaos(150));
        assert!(stats.served > 0);
        let replay_stats = verify(&trace).expect("replay must match its own capture");
        assert_eq!(replay_stats, stats, "replay stats must match capture stats");
    }

    #[test]
    fn a_tampered_event_is_reported_with_its_index() {
        let (mut trace, _) = capture(&Scenario::steady(60));
        let victim = trace.events.len() / 2;
        if let TraceEvent::Admit { n, .. }
        | TraceEvent::Flush { n, .. }
        | TraceEvent::Plan { n, .. }
        | TraceEvent::Served { n, .. }
        | TraceEvent::Reject { n, .. } = &mut trace.events[victim]
        {
            *n += 1;
        } else {
            trace.events[victim] = TraceEvent::Retry { at: 0, attempt: 99 };
        }
        match verify(&trace) {
            Err(Divergence::Event { index, .. }) => assert_eq!(index, victim),
            other => panic!("expected event divergence, got {other:?}"),
        }
    }

    #[test]
    fn a_dropped_event_is_reported_as_count_divergence() {
        let (mut trace, _) = capture(&Scenario::steady(60));
        // Drop the final event: the common prefix still matches, so this
        // exercises the count check specifically.
        trace.events.pop();
        assert!(matches!(verify(&trace), Err(Divergence::EventCount { .. })));
    }
}
