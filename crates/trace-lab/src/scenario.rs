//! Scenario: the complete, self-contained description of one load-lab
//! run. A trace file embeds its scenario, so `repro replay <trace>` can
//! re-run the exact workload with no side channel.
//!
//! Every parameter is an integer (rates in parts-per-million, times in
//! nanoseconds/microseconds) so the binary encoding is exact — no float
//! formatting ambiguity can creep into the provenance hash.
//!
//! Arrival processes are pure functions of `(seed, pattern, index)`:
//!
//! * [`Pattern::Steady`] — fixed inter-arrival period.
//! * [`Pattern::Diurnal`] — the period follows an integer triangle wave
//!   (load doubles at the "peak", halves in the "trough"), a deliberately
//!   float-free stand-in for a day curve.
//! * [`Pattern::Bursty`] — bursts of back-to-back arrivals separated by
//!   idle gaps, the classic open-loop flash crowd.
//! * [`Pattern::AdversarialSmallN`] — a flood of tiny systems with many
//!   distinct sizes, deliberately defeating batching (one bucket per
//!   size) and pinning traffic to the CPU path.

use crate::codec::{put_str, put_u64, CodecError, Reader};
use gpu_sim::Tick;

/// The arrival process shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Constant rate.
    Steady,
    /// Triangle-wave modulated rate (half → double the base rate).
    Diurnal,
    /// `burst_len` arrivals back-to-back, then an idle gap.
    Bursty,
    /// High-rate flood of tiny, size-diverse systems.
    AdversarialSmallN,
}

impl Pattern {
    /// Stable lower-case label for reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Pattern::Steady => "steady",
            Pattern::Diurnal => "diurnal",
            Pattern::Bursty => "bursty",
            Pattern::AdversarialSmallN => "adversarial-small-n",
        }
    }

    fn byte(self) -> u8 {
        match self {
            Pattern::Steady => 0,
            Pattern::Diurnal => 1,
            Pattern::Bursty => 2,
            Pattern::AdversarialSmallN => 3,
        }
    }

    fn from_u64(offset: usize, v: u64) -> Result<Self, CodecError> {
        match v {
            0 => Ok(Pattern::Steady),
            1 => Ok(Pattern::Diurnal),
            2 => Ok(Pattern::Bursty),
            3 => Ok(Pattern::AdversarialSmallN),
            other => Err(CodecError::BadEnum { offset, what: "Pattern", value: other }),
        }
    }
}

/// One load-lab run, fully described. See the module docs for the arrival
/// processes; the service knobs mirror `ServiceConfig`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Report label (also the default trace file stem).
    pub name: String,
    /// Seed keying arrivals, system contents, and the fault plan.
    pub seed: u64,
    /// Arrival process shape.
    pub pattern: Pattern,
    /// Total requests offered.
    pub requests: u64,
    /// Mean offered load, requests per simulated second.
    pub rate_rps: u64,
    /// Candidate system sizes, drawn per request by the seeded RNG.
    pub sizes: Vec<u64>,
    /// Arrivals per burst ([`Pattern::Bursty`] only; ignored otherwise).
    pub burst_len: u64,
    /// Transient launch-failure rate, parts per million.
    pub launch_fault_ppm: u64,
    /// Output bit-flip rate, parts per million.
    pub bit_flip_ppm: u64,
    /// Batcher target batch size.
    pub target_batch: u64,
    /// Batcher max linger, microseconds.
    pub max_linger_us: u64,
    /// Admission queue capacity (pending requests across all buckets).
    pub queue_capacity: u64,
    /// Flushes smaller than this run on the CPU.
    pub min_gpu_batch: u64,
    /// When nonzero, pin every flush to the GPU cr+pcr hybrid with this
    /// switchover `m`, bypassing the planner. The sim cost model makes
    /// the CPU win the autotune tournament at lab batch sizes, so fault
    /// injection (a GPU-launch phenomenon) only engages on a pinned cell.
    /// Zero = autotune.
    pub pin_cr_pcr_m: u64,
    /// When nonzero, arrivals reuse a pool of this many distinct matrices
    /// (the RHS still varies per request) and the harness enables the
    /// factorization cache, so warm traffic exercises the back-substitution
    /// tier. Zero = every request carries a fresh matrix, cache off.
    pub matrix_pool: u64,
    /// When nonzero, the harness enables the certified catalog with this
    /// 1-in-K sampling period: certified matrices skip the per-answer
    /// residual verify on all but every K-th flush. Zero = full
    /// verification on every answer (catalog off).
    pub certify: u64,
}

impl Scenario {
    /// The steady-state baseline cell.
    pub fn steady(requests: u64) -> Self {
        Self {
            name: "steady".into(),
            seed: 0x51EA_D715,
            pattern: Pattern::Steady,
            requests,
            rate_rps: 200_000,
            sizes: vec![64, 128, 256],
            burst_len: 0,
            launch_fault_ppm: 0,
            bit_flip_ppm: 0,
            target_batch: 8,
            max_linger_us: 200,
            queue_capacity: 256,
            min_gpu_batch: 1,
            pin_cr_pcr_m: 0,
            matrix_pool: 0,
            certify: 0,
        }
    }

    /// The day-curve cell: same mean rate as steady, triangle-modulated.
    pub fn diurnal(requests: u64) -> Self {
        Self {
            name: "diurnal".into(),
            pattern: Pattern::Diurnal,
            seed: 0xD1A1_0001,
            ..Self::steady(requests)
        }
    }

    /// The flash-crowd cell: bursts at 10x the steady rate with idle gaps.
    pub fn bursty(requests: u64) -> Self {
        Self {
            name: "bursty".into(),
            pattern: Pattern::Bursty,
            seed: 0xB0B5_0002,
            burst_len: 32,
            ..Self::steady(requests)
        }
    }

    /// The adversarial cell: a small-n flood with many distinct sizes
    /// (batching defeated — every size is its own bucket) under a 5%
    /// transient-fault device.
    pub fn adversarial(requests: u64) -> Self {
        Self {
            name: "adversarial-small-n".into(),
            pattern: Pattern::AdversarialSmallN,
            seed: 0xADE5_0003,
            rate_rps: 400_000,
            sizes: vec![4, 8, 16, 32, 5, 9, 17, 33],
            launch_fault_ppm: 50_000,
            bit_flip_ppm: 10_000,
            // Batching is defeated by construction: eight size buckets
            // that each need 16 same-size arrivals to fill, so flushes are
            // linger-driven and pending overruns the queue — the cell must
            // shed load to pass.
            target_batch: 16,
            queue_capacity: 64,
            ..Self::steady(requests)
        }
    }

    /// The replay-gate chaos cell: mixed sizes at 5% launch faults + 1%
    /// bit flips — the stream the bit-identical replay acceptance gate
    /// captures.
    pub fn chaos(requests: u64) -> Self {
        Self {
            name: "chaos".into(),
            seed: 0xCA05_2026,
            launch_fault_ppm: 50_000,
            bit_flip_ppm: 10_000,
            // Pinned to the GPU hybrid: faults are injected per kernel
            // launch, so the gate must keep traffic on the device to
            // capture retries, repairs, and breaker transitions.
            pin_cr_pcr_m: 32,
            ..Self::steady(requests)
        }
    }

    /// The warm-traffic cell: steady arrivals over a small pool of shared
    /// matrices with the factorization cache on, so most flushes take the
    /// back-substitution fast path. The stream the warm bit-identical
    /// replay gate captures.
    pub fn warm(requests: u64) -> Self {
        Self { name: "warm".into(), seed: 0xFAC7_2026, matrix_pool: 4, ..Self::steady(requests) }
    }

    /// The certification cell: warm traffic with the certified catalog on
    /// at the default 1-in-8 sampling period, so certified matrices skip
    /// the per-answer residual verify on most flushes. The stream the
    /// certified bit-identical replay gate captures.
    pub fn certified(requests: u64) -> Self {
        Self { name: "certified".into(), seed: 0xCE27_2026, certify: 8, ..Self::warm(requests) }
    }

    /// Mean inter-arrival period in ticks (ns). Never zero.
    pub fn base_period(&self) -> Tick {
        (1_000_000_000 / self.rate_rps.max(1)).max(1)
    }

    /// The arrival tick of request `index` — a pure function of the
    /// scenario, whatever order it is asked in.
    pub fn arrival_tick(&self, index: u64) -> Tick {
        let base = self.base_period();
        match self.pattern {
            Pattern::Steady | Pattern::AdversarialSmallN => base.saturating_mul(index),
            Pattern::Diurnal => {
                // Integer triangle wave over a 64-request "day": the
                // period sweeps base/2 → 2*base and back, so cumulative
                // arrival time is the prefix sum of per-index periods.
                let mut at: Tick = 0;
                for i in 0..index {
                    at = at.saturating_add(diurnal_period(base, i));
                }
                at
            }
            Pattern::Bursty => {
                let burst = self.burst_len.max(1);
                let cycle = index / burst;
                let within = index % burst;
                // Each cycle of `burst` requests lands in one tight volley
                // (1/10th the base spacing), cycles separated by the full
                // idle gap the volley "saved up".
                let gap = base.saturating_mul(burst);
                cycle.saturating_mul(gap).saturating_add(within.saturating_mul(base / 10))
            }
        }
    }

    /// Binary encoding (all varints + one string), used by the trace-file
    /// header and hashed into the provenance `config_hash`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_str(out, &self.name);
        put_u64(out, self.seed);
        out.push(self.pattern.byte());
        put_u64(out, self.requests);
        put_u64(out, self.rate_rps);
        put_u64(out, self.sizes.len() as u64);
        for &n in &self.sizes {
            put_u64(out, n);
        }
        put_u64(out, self.burst_len);
        put_u64(out, self.launch_fault_ppm);
        put_u64(out, self.bit_flip_ppm);
        put_u64(out, self.target_batch);
        put_u64(out, self.max_linger_us);
        put_u64(out, self.queue_capacity);
        put_u64(out, self.min_gpu_batch);
        put_u64(out, self.pin_cr_pcr_m);
        put_u64(out, self.matrix_pool);
        put_u64(out, self.certify);
    }

    /// Decodes what [`Scenario::encode`] wrote.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let name = r.str()?;
        let seed = r.u64()?;
        let offset = r.pos();
        let pattern = Pattern::from_u64(offset, r.u64()?)?;
        let requests = r.u64()?;
        let rate_rps = r.u64()?;
        let len_offset = r.pos();
        let size_count = r.u64()?;
        let size_count = usize::try_from(size_count)
            .ok()
            .filter(|&c| c <= r.remaining())
            .ok_or(CodecError::Truncated { offset: len_offset, wanted: "size list" })?;
        let mut sizes = Vec::with_capacity(size_count);
        for _ in 0..size_count {
            sizes.push(r.u64()?);
        }
        Ok(Self {
            name,
            seed,
            pattern,
            requests,
            rate_rps,
            sizes,
            burst_len: r.u64()?,
            launch_fault_ppm: r.u64()?,
            bit_flip_ppm: r.u64()?,
            target_batch: r.u64()?,
            max_linger_us: r.u64()?,
            queue_capacity: r.u64()?,
            min_gpu_batch: r.u64()?,
            pin_cr_pcr_m: r.u64()?,
            matrix_pool: r.u64()?,
            certify: r.u64()?,
        })
    }
}

/// Per-index inter-arrival period for the diurnal triangle wave: sweeps
/// `base/2` (peak load) up to `2*base` (trough) over a 64-request cycle.
fn diurnal_period(base: Tick, index: u64) -> Tick {
    const CYCLE: u64 = 64;
    let phase = index % CYCLE;
    // Triangle: 0..32 ramps 0→32, 32..64 ramps back 32→0.
    let tri = if phase < CYCLE / 2 { phase } else { CYCLE - phase };
    // Map tri ∈ [0, 32] onto period ∈ [base/2, 2*base].
    let half = base / 2;
    half + (base.saturating_mul(3) / 2) * tri / (CYCLE / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_ticks_are_monotone_for_every_pattern() {
        for scenario in [
            Scenario::steady(100),
            Scenario::diurnal(100),
            Scenario::bursty(100),
            Scenario::adversarial(100),
        ] {
            let ticks: Vec<Tick> = (0..100).map(|i| scenario.arrival_tick(i)).collect();
            assert!(
                ticks.windows(2).all(|w| w[0] <= w[1]),
                "{}: arrivals must never go backwards",
                scenario.name
            );
        }
    }

    #[test]
    fn bursty_arrivals_cluster_then_gap() {
        let s = Scenario::bursty(100);
        let base = s.base_period();
        // Within a burst: tight spacing.
        let within = s.arrival_tick(1) - s.arrival_tick(0);
        assert!(within <= base / 10, "burst spacing {within} vs base {base}");
        // Across bursts: a real gap.
        let burst = s.burst_len;
        let gap = s.arrival_tick(burst) - s.arrival_tick(burst - 1);
        assert!(gap > base, "inter-burst gap {gap} vs base {base}");
    }

    #[test]
    fn scenarios_round_trip_through_the_codec() {
        for scenario in [
            Scenario::steady(1000),
            Scenario::diurnal(1),
            Scenario::bursty(u64::MAX),
            Scenario::adversarial(42),
            Scenario::chaos(1000),
            Scenario::warm(1000),
            Scenario::certified(1000),
        ] {
            let mut buf = Vec::new();
            scenario.encode(&mut buf);
            let mut r = Reader::new(&buf);
            assert_eq!(Scenario::decode(&mut r).unwrap(), scenario);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn truncated_scenarios_error_instead_of_panicking() {
        let mut buf = Vec::new();
        Scenario::chaos(1000).encode(&mut buf);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(Scenario::decode(&mut r).is_err(), "prefix of {cut} bytes decoded");
        }
    }
}
