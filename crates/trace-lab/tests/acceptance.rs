//! The PR's acceptance bar, verbatim: a 1000-request chaos trace (5%
//! launch faults, 1% bit flips) must capture and replay **bit-identically
//! across two runs** — not just equal decisions, equal encoded bytes.
//!
//! `repro replay` enforces the same bar at CI time; this test pins it in
//! the tier-1 suite so a determinism regression fails `cargo test` before
//! it ever reaches the gate.

use trace_lab::{capture, verify, Scenario, TraceFile};

#[test]
fn warm_traffic_trace_is_bit_identical_across_runs() {
    // Warm-tier bar: a pooled-matrix stream with the factorization cache
    // on must replay bit-identically, and the trace must actually contain
    // warm traffic (factor hits and misses), with no wrong answers.
    let scenario = Scenario::warm(400);

    let (trace_a, stats_a) = capture(&scenario);
    let (trace_b, stats_b) = capture(&scenario);

    let bytes = trace_a.to_bytes();
    assert_eq!(bytes, trace_b.to_bytes(), "two warm captures diverged");
    assert_eq!(stats_a, stats_b, "warm stats diverged between captures");

    let reloaded = TraceFile::from_bytes(&bytes).expect("self-produced warm trace must load");
    let replay_stats = verify(&reloaded).unwrap_or_else(|d| panic!("warm replay diverged: {d}"));
    assert_eq!(replay_stats, stats_a, "warm replay stats diverged from capture");

    let hits = trace_a.events.iter().filter(|e| e.kind() == "factor-hit").count();
    let misses = trace_a.events.iter().filter(|e| e.kind() == "factor-miss").count();
    assert!(misses > 0, "warm trace never populated the cache");
    assert!(hits > 0, "warm trace never took the back-substitution path");
    assert_eq!(stats_a.wrong, 0, "a warm answer escaped verification");
}

#[test]
fn certified_traffic_trace_is_bit_identical_across_runs() {
    // Certification bar: a pooled-matrix stream with the certified
    // catalog on must replay bit-identically — the 1-in-K sampling is a
    // deterministic function of per-key flush counters, so the skip
    // pattern (and every CertIssued/CertSkipVerify event) must land on
    // exactly the same ticks every run. Zero wrong answers even though
    // most flushes skip the residual verify.
    let scenario = Scenario::certified(400);

    let (trace_a, stats_a) = capture(&scenario);
    let (trace_b, stats_b) = capture(&scenario);

    let bytes = trace_a.to_bytes();
    assert_eq!(bytes, trace_b.to_bytes(), "two certified captures diverged");
    assert_eq!(stats_a, stats_b, "certified stats diverged between captures");

    let reloaded = TraceFile::from_bytes(&bytes).expect("self-produced certified trace must load");
    let replay_stats =
        verify(&reloaded).unwrap_or_else(|d| panic!("certified replay diverged: {d}"));
    assert_eq!(replay_stats, stats_a, "certified replay stats diverged from capture");

    let issued = trace_a.events.iter().filter(|e| e.kind() == "cert-issued").count();
    let skips = trace_a.events.iter().filter(|e| e.kind() == "cert-skip-verify").count();
    assert!(issued > 0, "certified trace never analyzed a matrix");
    assert!(skips > 0, "certified trace never skipped a verify");
    assert_eq!(stats_a.wrong, 0, "a certified answer escaped its bound");
}

#[test]
fn thousand_request_chaos_trace_is_bit_identical_across_runs() {
    let scenario = Scenario::chaos(1000);

    let (trace_a, stats_a) = capture(&scenario);
    let (trace_b, stats_b) = capture(&scenario);

    // Bar 1: two independent captures serialize to the same bytes.
    let bytes = trace_a.to_bytes();
    assert_eq!(bytes, trace_b.to_bytes(), "two captures of the same scenario diverged");
    assert_eq!(stats_a, stats_b, "stats diverged between captures");

    // Bar 2: the persisted form decodes and replays against a fresh run
    // with zero divergence — event for event, tick for tick.
    let reloaded = TraceFile::from_bytes(&bytes).expect("self-produced trace must load");
    let replay_stats = verify(&reloaded).unwrap_or_else(|d| panic!("replay diverged: {d}"));
    assert_eq!(replay_stats, stats_a, "replay stats diverged from capture");

    // The trace must exercise the machinery it claims to: real traffic,
    // real faults, and not a single wrong answer served.
    assert_eq!(stats_a.served + stats_a.rejected, 1000, "lost requests");
    assert!(stats_a.served > 0, "nothing served");
    assert!(!trace_a.events.is_empty(), "empty decision stream");
    assert_eq!(stats_a.wrong, 0, "a wrong answer escaped verification");
}
