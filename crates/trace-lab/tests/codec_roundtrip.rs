//! Property tests for the trace codec and file format: arbitrary event
//! sequences round-trip exactly, and truncated or corrupted inputs are
//! rejected with a typed error — never a panic, never a silent
//! misparse.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::select;
use solver_service::{BreakerState, FlushReason, RejectReason, TraceEvent};
use trace_lab::codec::{self, Reader};
use trace_lab::{Scenario, TraceFile};

/// A fixed vocabulary for the string fields (the shim has no arbitrary
/// `String`; the real service only ever emits engine labels anyway).
fn labels() -> Vec<&'static str> {
    vec!["cr", "pcr", "cr+pcr@32", "rd", "cpu-thomas", "cpu-gep", "dev0:cr", "", "µ-labels-ok"]
}

/// One arbitrary event. The shim has no `prop_oneof`, so a selector field
/// picks the variant and the shared field tuple feeds whichever variant is
/// chosen.
fn event() -> impl Strategy<Value = TraceEvent> {
    (
        any::<u64>(),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (select(labels()), any::<bool>(), any::<u64>()),
    )
        .prop_map(|(sel, (at, b, c, d), (label, flag, e))| match sel % 9 {
            0 => TraceEvent::Admit { at, id: b, n: c },
            1 => TraceEvent::Reject {
                at,
                n: b,
                reason: match c % 4 {
                    0 => RejectReason::QueueFull,
                    1 => RejectReason::ShuttingDown,
                    2 => RejectReason::Invalid,
                    _ => RejectReason::DeadlinePast,
                },
            },
            2 => TraceEvent::Flush {
                at,
                n: b,
                occupancy: c,
                reason: match d % 4 {
                    0 => FlushReason::Full,
                    1 => FlushReason::Linger,
                    2 => FlushReason::Deadline,
                    _ => FlushReason::Shutdown,
                },
            },
            3 => TraceEvent::Plan { at, n: b, occupancy: c, engine: label.into() },
            4 => TraceEvent::Retry { at, attempt: b },
            5 => TraceEvent::Fault { at, lost: flag },
            6 => TraceEvent::Breaker {
                at,
                key: label.into(),
                to: match b % 3 {
                    0 => BreakerState::Closed,
                    1 => BreakerState::Open,
                    _ => BreakerState::HalfOpen,
                },
            },
            7 => TraceEvent::Steal { at, from: b, to: c },
            _ => TraceEvent::Served {
                at,
                n: b,
                occupancy: c,
                engine: label.into(),
                reason: match d % 4 {
                    0 => FlushReason::Full,
                    1 => FlushReason::Linger,
                    2 => FlushReason::Deadline,
                    _ => FlushReason::Shutdown,
                },
                engine_ns: e,
                repairs: d,
                degraded: flag,
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_event_sequences_round_trip(events in vec(event(), 0..40)) {
        let mut buf = Vec::new();
        codec::encode_events(&events, &mut buf);
        let mut r = Reader::new(&buf);
        let back = codec::decode_events(&mut r)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(&back, &events);
        prop_assert!(r.is_empty(), "decoder left {} byte(s) unread", r.remaining());
    }

    #[test]
    fn truncated_event_streams_error_never_panic(
        events in vec(event(), 1..12),
        cut_seed in any::<u64>(),
    ) {
        let mut buf = Vec::new();
        codec::encode_events(&events, &mut buf);
        let cut = (cut_seed as usize) % buf.len();
        let mut r = Reader::new(&buf[..cut]);
        // A strict prefix can decode only if every lost byte belonged to
        // events past the truncation point — but the count prefix promises
        // them, so decode must fail.
        prop_assert!(
            codec::decode_events(&mut r).is_err(),
            "prefix of {} / {} bytes decoded",
            cut,
            buf.len()
        );
    }

    #[test]
    fn corrupted_trace_files_are_rejected(
        events in vec(event(), 0..12),
        flip_seed in any::<u64>(),
        bit in 0u32..8,
    ) {
        let trace = TraceFile {
            git_rev: "feedface".into(),
            ..TraceFile::new(Scenario::chaos(100), events)
        };
        let mut bytes = trace.to_bytes();
        let i = (flip_seed as usize) % bytes.len();
        bytes[i] ^= 1 << bit;
        // Every single-bit flip lands inside the checksummed region or the
        // checksum itself, so loading must fail (and must not panic).
        prop_assert!(
            TraceFile::from_bytes(&bytes).is_err(),
            "bit {bit} of byte {i} flipped unnoticed"
        );
    }

    #[test]
    fn random_garbage_never_panics_the_loader(
        garbage in vec(any::<u64>(), 0..64),
    ) {
        let bytes: Vec<u8> = garbage.iter().flat_map(|v| v.to_le_bytes()).collect();
        // Random bytes essentially never carry a valid FNV trailer; the
        // property under test is totality, not the specific error.
        let _ = TraceFile::from_bytes(&bytes);
        let mut r = Reader::new(&bytes);
        let _ = codec::decode_events(&mut r);
    }
}
