//! Batched storage for "a large number of small tridiagonal systems".
//!
//! Mirrors the paper's layout exactly (§4): *"The total storage consists of
//! five arrays: three for the matrix diagonals, one for the right-hand side,
//! and one for the solution vector. These five arrays store the data of all
//! systems continuously, with the data of the first system stored at the
//! beginning of the arrays, followed by the second system, ..."*

use crate::error::{Result, TridiagError};
use crate::real::Real;
use crate::system::TridiagonalSystem;

/// A batch of `count` systems, each of size `n`, stored contiguously.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemBatch<T: Real> {
    n: usize,
    count: usize,
    /// Sub-diagonals, length `n * count`.
    pub a: Vec<T>,
    /// Main diagonals, length `n * count`.
    pub b: Vec<T>,
    /// Super-diagonals, length `n * count`.
    pub c: Vec<T>,
    /// Right-hand sides, length `n * count`.
    pub d: Vec<T>,
}

impl<T: Real> SystemBatch<T> {
    /// Collects individual systems (all of size `n`) into batched storage.
    pub fn from_systems(systems: &[TridiagonalSystem<T>]) -> Result<Self> {
        let count = systems.len();
        if count == 0 {
            return Err(TridiagError::SizeTooSmall { n: 0, min: 1 });
        }
        let n = systems[0].n();
        let mut batch = Self {
            n,
            count,
            a: Vec::with_capacity(n * count),
            b: Vec::with_capacity(n * count),
            c: Vec::with_capacity(n * count),
            d: Vec::with_capacity(n * count),
        };
        for s in systems {
            if s.n() != n {
                return Err(TridiagError::DimensionMismatch {
                    what: "system size in batch",
                    expected: n,
                    got: s.n(),
                });
            }
            batch.a.extend_from_slice(&s.a);
            batch.b.extend_from_slice(&s.b);
            batch.c.extend_from_slice(&s.c);
            batch.d.extend_from_slice(&s.d);
        }
        Ok(batch)
    }

    /// Builds a batch by calling `make` once per system index.
    pub fn generate(
        count: usize,
        mut make: impl FnMut(usize) -> TridiagonalSystem<T>,
    ) -> Result<Self> {
        let systems: Vec<_> = (0..count).map(&mut make).collect();
        Self::from_systems(&systems)
    }

    /// System size (number of unknowns per system).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of systems in the batch.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Total number of stored equations (`n * count`).
    #[inline]
    pub fn total_len(&self) -> usize {
        self.n * self.count
    }

    /// Bytes moved over PCIe for input (4 arrays) plus output (1 array),
    /// matching the paper's 5-array traffic model.
    #[inline]
    pub fn transfer_bytes(&self) -> usize {
        5 * self.total_len() * T::BYTES
    }

    /// Borrowed view of system `i`'s four diagonals.
    pub fn system_slices(&self, i: usize) -> (&[T], &[T], &[T], &[T]) {
        let r = self.range(i);
        (&self.a[r.clone()], &self.b[r.clone()], &self.c[r.clone()], &self.d[r])
    }

    /// Copies system `i` back out as an owned [`TridiagonalSystem`].
    pub fn system(&self, i: usize) -> TridiagonalSystem<T> {
        let (a, b, c, d) = self.system_slices(i);
        TridiagonalSystem { a: a.to_vec(), b: b.to_vec(), c: c.to_vec(), d: d.to_vec() }
    }

    /// Index range of system `i` inside the flat arrays.
    #[inline]
    pub fn range(&self, i: usize) -> core::ops::Range<usize> {
        assert!(i < self.count, "system index {i} out of range ({})", self.count);
        let start = i * self.n;
        start..start + self.n
    }
}

/// Flat solution storage matching a [`SystemBatch`] (the paper's fifth array).
#[derive(Debug, Clone, PartialEq)]
pub struct SolutionBatch<T: Real> {
    n: usize,
    count: usize,
    /// Solutions, length `n * count`, system-major.
    pub x: Vec<T>,
}

impl<T: Real> SolutionBatch<T> {
    /// Zero-initialized solutions for `batch`.
    pub fn zeros_like(batch: &SystemBatch<T>) -> Self {
        Self { n: batch.n(), count: batch.count(), x: vec![T::ZERO; batch.total_len()] }
    }

    /// Wraps an existing flat solution vector.
    pub fn from_flat(n: usize, count: usize, x: Vec<T>) -> Result<Self> {
        if x.len() != n * count {
            return Err(TridiagError::DimensionMismatch {
                what: "solution batch",
                expected: n * count,
                got: x.len(),
            });
        }
        Ok(Self { n, count, x })
    }

    /// System size.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of systems.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Solution of system `i`.
    pub fn system(&self, i: usize) -> &[T] {
        assert!(i < self.count);
        &self.x[i * self.n..(i + 1) * self.n]
    }

    /// Mutable solution of system `i`.
    pub fn system_mut(&mut self, i: usize) -> &mut [T] {
        assert!(i < self.count);
        &mut self.x[i * self.n..(i + 1) * self.n]
    }

    /// First non-finite entry if any — overflow detection for RD (§5.4).
    pub fn first_non_finite(&self) -> Option<usize> {
        self.x.iter().position(|v| !v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_batch() -> SystemBatch<f32> {
        SystemBatch::generate(3, |i| {
            TridiagonalSystem::toeplitz(4, -1.0, 4.0 + i as f32, -1.0, 1.0).unwrap()
        })
        .unwrap()
    }

    #[test]
    fn layout_is_system_major() {
        let batch = small_batch();
        assert_eq!(batch.n(), 4);
        assert_eq!(batch.count(), 3);
        assert_eq!(batch.total_len(), 12);
        // System 1's main diagonal lives at offsets 4..8 and equals 5.0.
        assert!(batch.b[4..8].iter().all(|&v| v == 5.0));
        let (_, b1, _, _) = batch.system_slices(1);
        assert!(b1.iter().all(|&v| v == 5.0));
    }

    #[test]
    fn round_trip_system() {
        let batch = small_batch();
        let s = batch.system(2);
        assert_eq!(s.b, vec![6.0; 4]);
        assert_eq!(s.a[0], 0.0);
        assert_eq!(s.c[3], 0.0);
    }

    #[test]
    fn rejects_mixed_sizes() {
        let s1 = TridiagonalSystem::<f32>::toeplitz(4, -1.0, 4.0, -1.0, 1.0).unwrap();
        let s2 = TridiagonalSystem::<f32>::toeplitz(8, -1.0, 4.0, -1.0, 1.0).unwrap();
        assert!(SystemBatch::from_systems(&[s1, s2]).is_err());
    }

    #[test]
    fn rejects_empty_batch() {
        assert!(SystemBatch::<f32>::from_systems(&[]).is_err());
    }

    #[test]
    fn transfer_bytes_counts_five_arrays() {
        let batch = small_batch();
        assert_eq!(batch.transfer_bytes(), 5 * 12 * 4);
    }

    #[test]
    fn solutions_slice_per_system() {
        let batch = small_batch();
        let mut sol = SolutionBatch::zeros_like(&batch);
        sol.system_mut(1).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(sol.system(1), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(sol.system(0), &[0.0; 4]);
        assert_eq!(sol.first_non_finite(), None);
    }

    #[test]
    fn non_finite_detection() {
        let batch = small_batch();
        let mut sol = SolutionBatch::zeros_like(&batch);
        sol.x[5] = f32::INFINITY;
        assert_eq!(sol.first_non_finite(), Some(5));
    }

    #[test]
    fn from_flat_validates_len() {
        assert!(SolutionBatch::from_flat(4, 3, vec![0.0f32; 11]).is_err());
        assert!(SolutionBatch::from_flat(4, 3, vec![0.0f32; 12]).is_ok());
    }
}
