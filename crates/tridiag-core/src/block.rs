//! Block-tridiagonal systems with 2x2 blocks — the paper's future-work
//! item #1: "generalize the solvers for block tridiagonal matrices".
//!
//! Block-tridiagonal systems arise when several coupled unknowns live at
//! each grid point (e.g. velocity pairs in staggered fluid solvers, or
//! line relaxation of systems of PDEs). All the reduction algorithms carry
//! over with scalars replaced by 2x2 blocks and divisions by (order-aware)
//! block inverses.

use crate::error::{Result, TridiagError};
use crate::real::Real;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A dense 2x2 block, row-major.
pub type Block2<T> = [[T; 2]; 2];

/// A length-2 sub-vector.
pub type Vec2<T> = [T; 2];

/// Zero block.
pub fn zero<T: Real>() -> Block2<T> {
    [[T::ZERO; 2]; 2]
}

/// Identity block.
pub fn identity<T: Real>() -> Block2<T> {
    [[T::ONE, T::ZERO], [T::ZERO, T::ONE]]
}

/// Block product `l * r`.
pub fn mul<T: Real>(l: &Block2<T>, r: &Block2<T>) -> Block2<T> {
    let mut out = zero();
    for i in 0..2 {
        for j in 0..2 {
            out[i][j] = l[i][0] * r[0][j] + l[i][1] * r[1][j];
        }
    }
    out
}

/// Block difference `l - r`.
pub fn sub<T: Real>(l: &Block2<T>, r: &Block2<T>) -> Block2<T> {
    let mut out = zero();
    for i in 0..2 {
        for j in 0..2 {
            out[i][j] = l[i][j] - r[i][j];
        }
    }
    out
}

/// Block negation.
pub fn neg<T: Real>(m: &Block2<T>) -> Block2<T> {
    sub(&zero(), m)
}

/// Block inverse; `None` when (numerically) singular.
pub fn inv<T: Real>(m: &Block2<T>) -> Option<Block2<T>> {
    let det = m[0][0] * m[1][1] - m[0][1] * m[1][0];
    if det == T::ZERO || !det.is_finite() {
        return None;
    }
    let r = T::ONE / det;
    Some([[m[1][1] * r, -m[0][1] * r], [-m[1][0] * r, m[0][0] * r]])
}

/// Block-vector product `m * v`.
pub fn mulvec<T: Real>(m: &Block2<T>, v: &Vec2<T>) -> Vec2<T> {
    [m[0][0] * v[0] + m[0][1] * v[1], m[1][0] * v[0] + m[1][1] * v[1]]
}

/// Vector difference.
pub fn subvec<T: Real>(l: &Vec2<T>, r: &Vec2<T>) -> Vec2<T> {
    [l[0] - r[0], l[1] - r[1]]
}

/// Max-norm of a block (for dominance checks).
pub fn norm_inf<T: Real>(m: &Block2<T>) -> f64 {
    let r0 = m[0][0].abs().to_f64() + m[0][1].abs().to_f64();
    let r1 = m[1][0].abs().to_f64() + m[1][1].abs().to_f64();
    r0.max(r1)
}

/// A block-tridiagonal system of `n` block-rows (2n scalar unknowns).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockTridiagonalSystem<T: Real> {
    /// Sub-diagonal blocks; `a[0]` must be zero.
    pub a: Vec<Block2<T>>,
    /// Diagonal blocks.
    pub b: Vec<Block2<T>>,
    /// Super-diagonal blocks; `c[n-1]` must be zero.
    pub c: Vec<Block2<T>>,
    /// Right-hand-side sub-vectors.
    pub d: Vec<Vec2<T>>,
}

impl<T: Real> BlockTridiagonalSystem<T> {
    /// Builds a system, validating shapes and the boundary-zero convention.
    pub fn new(
        a: Vec<Block2<T>>,
        b: Vec<Block2<T>>,
        c: Vec<Block2<T>>,
        d: Vec<Vec2<T>>,
    ) -> Result<Self> {
        let n = b.len();
        if n == 0 {
            return Err(TridiagError::SizeTooSmall { n: 0, min: 1 });
        }
        for (what, len) in [("a", a.len()), ("c", c.len()), ("d", d.len())] {
            if len != n {
                return Err(TridiagError::DimensionMismatch { what, expected: n, got: len });
            }
        }
        if a[0] != zero() {
            return Err(TridiagError::InvalidConfig { what: "a[0] must be the zero block" });
        }
        if c[n - 1] != zero() {
            return Err(TridiagError::InvalidConfig { what: "c[n-1] must be the zero block" });
        }
        Ok(Self { a, b, c, d })
    }

    /// Number of block rows.
    #[inline]
    pub fn n(&self) -> usize {
        self.b.len()
    }

    /// `A x` with `x` given as block sub-vectors.
    pub fn matvec(&self, x: &[Vec2<T>]) -> Result<Vec<Vec2<T>>> {
        let n = self.n();
        if x.len() != n {
            return Err(TridiagError::DimensionMismatch { what: "x", expected: n, got: x.len() });
        }
        let mut y = vec![[T::ZERO; 2]; n];
        for i in 0..n {
            let mut v = mulvec(&self.b[i], &x[i]);
            if i > 0 {
                let l = mulvec(&self.a[i], &x[i - 1]);
                v = [v[0] + l[0], v[1] + l[1]];
            }
            if i + 1 < n {
                let r = mulvec(&self.c[i], &x[i + 1]);
                v = [v[0] + r[0], v[1] + r[1]];
            }
            y[i] = v;
        }
        Ok(y)
    }

    /// `||A x - d||_2` accumulated in f64.
    pub fn l2_residual(&self, x: &[Vec2<T>]) -> Result<f64> {
        let ax = self.matvec(x)?;
        let mut sum = 0.0f64;
        for (lhs, rhs) in ax.iter().zip(&self.d) {
            for k in 0..2 {
                let r = lhs[k].to_f64() - rhs[k].to_f64();
                sum += r * r;
            }
        }
        Ok(sum.sqrt())
    }

    /// Block-diagonally dominant random system: `||B_i||` exceeds
    /// `||A_i|| + ||C_i||` by a healthy margin (sufficient for stable
    /// pivoting-free block elimination).
    pub fn random_dominant(seed: u64, n: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let off = Uniform::new_inclusive(-0.5f64, 0.5);
        let rhs = Uniform::new_inclusive(-1.0f64, 1.0);
        let mut rand_block = |scale: f64| -> Block2<T> {
            let mut m = zero();
            for row in m.iter_mut() {
                for v in row.iter_mut() {
                    *v = T::from_f64(off.sample(&mut rng) * scale);
                }
            }
            m
        };
        let mut a: Vec<Block2<T>> = (0..n).map(|_| rand_block(1.0)).collect();
        let mut c: Vec<Block2<T>> = (0..n).map(|_| rand_block(1.0)).collect();
        a[0] = zero();
        c[n - 1] = zero();
        let b: Vec<Block2<T>> = (0..n)
            .map(|i| {
                // Off-diagonal noise plus a strongly dominant diagonal.
                let mut m = rand_block(0.3);
                let boost = norm_inf(&a[i]) + norm_inf(&c[i]) + 1.5;
                m[0][0] += T::from_f64(boost);
                m[1][1] += T::from_f64(boost);
                m
            })
            .collect();
        let d: Vec<Vec2<T>> = (0..n)
            .map(|_| [T::from_f64(rhs.sample(&mut rng)), T::from_f64(rhs.sample(&mut rng))])
            .collect();
        Self { a, b, c, d }
    }

    /// Builds a block system from two *independent* scalar systems by
    /// placing them on the block diagonal (component 0 = `s0`,
    /// component 1 = `s1`). Used to cross-validate block solvers against
    /// scalar ones.
    pub fn from_decoupled(
        s0: &crate::system::TridiagonalSystem<T>,
        s1: &crate::system::TridiagonalSystem<T>,
    ) -> Result<Self> {
        let n = s0.n();
        if s1.n() != n {
            return Err(TridiagError::DimensionMismatch {
                what: "decoupled pair",
                expected: n,
                got: s1.n(),
            });
        }
        let diag2 = |p: T, q: T| -> Block2<T> { [[p, T::ZERO], [T::ZERO, q]] };
        Ok(Self {
            a: (0..n).map(|i| diag2(s0.a[i], s1.a[i])).collect(),
            b: (0..n).map(|i| diag2(s0.b[i], s1.b[i])).collect(),
            c: (0..n).map(|i| diag2(s0.c[i], s1.c[i])).collect(),
            d: (0..n).map(|i| [s0.d[i], s1.d[i]]).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_algebra() {
        let m: Block2<f64> = [[1.0, 2.0], [3.0, 4.0]];
        let id = identity::<f64>();
        assert_eq!(mul(&m, &id), m);
        assert_eq!(mul(&id, &m), m);
        let mi = inv(&m).unwrap();
        let prod = mul(&m, &mi);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[i][j] - expect).abs() < 1e-12);
            }
        }
        assert!(inv(&[[1.0f64, 2.0], [2.0, 4.0]]).is_none());
        assert_eq!(mulvec(&m, &[1.0, 1.0]), [3.0, 7.0]);
        assert_eq!(neg(&id)[0][0], -1.0);
        assert_eq!(norm_inf(&m), 7.0);
    }

    #[test]
    fn construction_validates() {
        let z = zero::<f64>();
        let id = identity::<f64>();
        assert!(BlockTridiagonalSystem::new(vec![id], vec![id], vec![z], vec![[1.0, 1.0]]).is_err()); // a[0] nonzero
        assert!(BlockTridiagonalSystem::new(vec![z], vec![id], vec![id], vec![[1.0, 1.0]]).is_err()); // c[n-1] nonzero
        assert!(BlockTridiagonalSystem::new(vec![z], vec![id], vec![z], vec![[1.0, 1.0]]).is_ok());
    }

    #[test]
    fn matvec_matches_expanded_dense() {
        let sys = BlockTridiagonalSystem::<f64>::random_dominant(1, 5);
        let x: Vec<Vec2<f64>> = (0..5).map(|i| [i as f64, -(i as f64) * 0.5]).collect();
        let y = sys.matvec(&x).unwrap();
        // Expand to a dense 10x10 and compare.
        let n = 5;
        let mut dense = vec![vec![0.0f64; 2 * n]; 2 * n];
        let mut place = |bi: usize, bj: usize, blk: &Block2<f64>| {
            for r in 0..2 {
                for cc in 0..2 {
                    dense[2 * bi + r][2 * bj + cc] = blk[r][cc];
                }
            }
        };
        for i in 0..n {
            place(i, i, &sys.b[i]);
            if i > 0 {
                place(i, i - 1, &sys.a[i]);
            }
            if i + 1 < n {
                place(i, i + 1, &sys.c[i]);
            }
        }
        let xf: Vec<f64> = x.iter().flat_map(|v| v.iter().copied()).collect();
        for i in 0..n {
            for r in 0..2 {
                let expect: f64 = (0..2 * n).map(|j| dense[2 * i + r][j] * xf[j]).sum();
                assert!((y[i][r] - expect).abs() < 1e-12, "row {i}.{r}");
            }
        }
    }

    #[test]
    fn decoupled_embedding_round_trips() {
        let s0 =
            crate::system::TridiagonalSystem::<f64>::toeplitz(4, -1.0, 4.0, -1.0, 1.0).unwrap();
        let s1 =
            crate::system::TridiagonalSystem::<f64>::toeplitz(4, -2.0, 6.0, -1.5, 2.0).unwrap();
        let blk = BlockTridiagonalSystem::from_decoupled(&s0, &s1).unwrap();
        assert_eq!(blk.n(), 4);
        assert_eq!(blk.b[2][0][0], 4.0);
        assert_eq!(blk.b[2][1][1], 6.0);
        assert_eq!(blk.b[2][0][1], 0.0);
        assert_eq!(blk.d[3], [1.0, 2.0]);
    }

    #[test]
    fn random_dominant_is_block_dominant() {
        let sys = BlockTridiagonalSystem::<f64>::random_dominant(7, 32);
        for i in 0..32 {
            let bnorm = norm_inf(&sys.b[i]);
            let off = norm_inf(&sys.a[i]) + norm_inf(&sys.c[i]);
            assert!(bnorm > off, "row {i}: {bnorm} vs {off}");
        }
    }
}
