//! Numerical-safety certificates: the machine-checkable verdicts issued by
//! the `numeric-verify` static analyzer.
//!
//! The lattice has three certified classes plus a bottom:
//!
//! * [`NumericCertificate::StrictlyDominant`] — every row satisfies
//!   `|b_i| > |a_i| + |c_i|` with margin beyond floating-point slack. By
//!   the classic pivot-growth lemma, pivot-free Thomas elimination and
//!   each cyclic-reduction level preserve the property (Heller 1976: the
//!   dominance ratio *squares* per CR level), so no pivoting is ever
//!   needed and elimination is backward-stable.
//! * [`NumericCertificate::Spd`] — symmetric positive definite: the
//!   LDLᵀ pivots are all strictly positive, which bounds element growth
//!   without pivoting.
//! * [`NumericCertificate::MMatrix`] — nonsingular M-matrix (positive
//!   diagonal, non-positive off-diagonals, positive Thomas pivots):
//!   elimination preserves the sign pattern, again pivot-free.
//! * [`NumericCertificate::Uncertified`] — no static guarantee; traffic
//!   keeps the full per-answer residual verify.
//!
//! The type lives in `tridiag-core` (not `numeric-verify`) so that
//! `factor-cache` entries can carry their certificate without a
//! dependency cycle through the analyzer crate.

/// A static numerical-safety verdict for one matrix (keyed by
/// [`crate::MatrixKey`]).
///
/// Certified variants license the serving tier to *skip* the per-answer
/// residual verify and downgrade to sampled verification; `Uncertified`
/// keeps the full verify + GEP-repair safety net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NumericCertificate {
    /// Strict row diagonal dominance with the given worst-row margin
    /// `min_i (|b_i| − |a_i| − |c_i|)`, already proven to exceed the
    /// floating-point slack of the scan itself.
    StrictlyDominant {
        /// Worst-row dominance gap, computed in `f64`.
        margin: f64,
    },
    /// Symmetric positive definite (all LDLᵀ pivots strictly positive).
    Spd,
    /// Nonsingular M-matrix (positive diagonal, non-positive
    /// off-diagonals, strictly positive Thomas pivots).
    MMatrix,
    /// No static safety guarantee — full residual verify stays on.
    Uncertified,
}

impl NumericCertificate {
    /// `true` for any variant that licenses skipping the hot-path
    /// residual verify.
    pub fn is_certified(&self) -> bool {
        !matches!(self, NumericCertificate::Uncertified)
    }

    /// Stable short name, used in trace events and JSON metrics.
    pub fn name(&self) -> &'static str {
        match self {
            NumericCertificate::StrictlyDominant { .. } => "strictly-dominant",
            NumericCertificate::Spd => "spd",
            NumericCertificate::MMatrix => "m-matrix",
            NumericCertificate::Uncertified => "uncertified",
        }
    }
}

impl core::fmt::Display for NumericCertificate {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NumericCertificate::StrictlyDominant { margin } => {
                write!(f, "strictly-dominant(margin={margin:.3e})")
            }
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certified_predicate_matches_the_lattice() {
        assert!(NumericCertificate::StrictlyDominant { margin: 0.5 }.is_certified());
        assert!(NumericCertificate::Spd.is_certified());
        assert!(NumericCertificate::MMatrix.is_certified());
        assert!(!NumericCertificate::Uncertified.is_certified());
    }

    #[test]
    fn names_are_stable_and_display_carries_the_margin() {
        assert_eq!(NumericCertificate::Spd.name(), "spd");
        assert_eq!(NumericCertificate::Uncertified.name(), "uncertified");
        let s = NumericCertificate::StrictlyDominant { margin: 2.0 }.to_string();
        assert!(s.starts_with("strictly-dominant"), "{s}");
        assert!(s.contains("2.0"), "{s}");
    }
}
