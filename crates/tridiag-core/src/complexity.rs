//! The paper's Table 1: analytic complexity of each algorithm on the GPU.
//!
//! | Algorithm | Shared accesses | Arithmetic ops | Steps | Global accesses |
//! |-----------|-----------------|----------------|-------|-----------------|
//! | CR        | 23n             | 17n (3n div)   | 2·log2 n − 1 | 5n |
//! | PCR       | 16n·log2 n      | 12n·log2 n (2n·log2 n div) | log2 n | 5n |
//! | RD        | 32n·log2 n      | 20n·log2 n (no div in scan) | log2 n + 2 | 5n |
//! | CR+PCR    | 23(n−m) + 16m·log2 m | 17(n−m) + 12m·log2 m | 2·log2 n − log2 m − 1 | 5n |
//! | CR+RD     | 23(n−m) + 32m·log2 m | 17(n−m) + 20m·log2 m | 2·log2 n − log2 m + 1 | 5n |
//!
//! These are *per system* with `n` the system size and `m` the intermediate
//! (hybrid switch) size, both powers of two. The formulas are leading-order
//! models, not exact instruction counts; the simulator's measured counters
//! are validated against them to within a modest constant in the test suite.

use crate::error::{require_pow2, Result, TridiagError};
use core::fmt;
use serde::Serialize;

/// The five GPU algorithms of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Algorithm {
    /// Cyclic reduction.
    Cr,
    /// Parallel cyclic reduction.
    Pcr,
    /// Recursive doubling (scan formulation).
    Rd,
    /// Hybrid: CR forward reduction to size `m`, PCR on the intermediate
    /// system, CR backward substitution.
    CrPcr {
        /// Intermediate system size.
        m: usize,
    },
    /// Hybrid: CR forward reduction to size `m`, RD on the intermediate
    /// system, CR backward substitution.
    CrRd {
        /// Intermediate system size.
        m: usize,
    },
}

impl Algorithm {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Cr => "CR",
            Algorithm::Pcr => "PCR",
            Algorithm::Rd => "RD",
            Algorithm::CrPcr { .. } => "CR+PCR",
            Algorithm::CrRd { .. } => "CR+RD",
        }
    }

    /// Validates the algorithm against a system size.
    pub fn validate(self, n: usize) -> Result<()> {
        require_pow2(n, 2)?;
        match self {
            Algorithm::CrPcr { m } | Algorithm::CrRd { m } => {
                if m < 2 || m > n || !m.is_power_of_two() {
                    return Err(TridiagError::InvalidIntermediateSize { n, m });
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

/// Canonical machine-readable spelling, round-trippable through
/// [`FromStr`](core::str::FromStr): `cr`, `pcr`, `rd`, `cr+pcr@256`,
/// `cr+rd@128`.
impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::Cr => f.write_str("cr"),
            Algorithm::Pcr => f.write_str("pcr"),
            Algorithm::Rd => f.write_str("rd"),
            Algorithm::CrPcr { m } => write!(f, "cr+pcr@{m}"),
            Algorithm::CrRd { m } => write!(f, "cr+rd@{m}"),
        }
    }
}

/// Error parsing an [`Algorithm`] from its canonical spelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAlgorithmError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseAlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown algorithm '{}' (expected cr, pcr, rd, cr+pcr@<m>, or cr+rd@<m>)",
            self.input
        )
    }
}

impl std::error::Error for ParseAlgorithmError {}

impl core::str::FromStr for Algorithm {
    type Err = ParseAlgorithmError;

    fn from_str(s: &str) -> core::result::Result<Self, Self::Err> {
        let err = || ParseAlgorithmError { input: s.to_string() };
        let lower = s.trim().to_ascii_lowercase();
        match lower.as_str() {
            "cr" => return Ok(Algorithm::Cr),
            "pcr" => return Ok(Algorithm::Pcr),
            "rd" => return Ok(Algorithm::Rd),
            _ => {}
        }
        let (head, m) = lower.split_once('@').ok_or_else(err)?;
        let m: usize = m.parse().map_err(|_| err())?;
        match head {
            "cr+pcr" => Ok(Algorithm::CrPcr { m }),
            "cr+rd" => Ok(Algorithm::CrRd { m }),
            _ => Err(err()),
        }
    }
}

/// Table 1 row for a given algorithm and system size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ComplexityRow {
    /// Per-system shared memory accesses.
    pub shared_accesses: u64,
    /// Per-system arithmetic operations.
    pub arithmetic_ops: u64,
    /// Of which divisions.
    pub divisions: u64,
    /// Algorithmic steps (barrier-separated supersteps).
    pub steps: u64,
    /// Per-system global memory accesses (4n in, n out = 5n).
    pub global_accesses: u64,
}

fn log2(n: usize) -> u64 {
    debug_assert!(n.is_power_of_two());
    n.trailing_zeros() as u64
}

/// Evaluates the paper's Table 1 for `algorithm` at system size `n`.
///
/// # Errors
/// Fails if `n` (or the hybrid's `m`) is not a valid power-of-two size.
pub fn table1(algorithm: Algorithm, n: usize) -> Result<ComplexityRow> {
    algorithm.validate(n)?;
    let nn = n as u64;
    let ln = log2(n);
    let row = match algorithm {
        Algorithm::Cr => ComplexityRow {
            shared_accesses: 23 * nn,
            arithmetic_ops: 17 * nn,
            divisions: 3 * nn,
            steps: 2 * ln - 1,
            global_accesses: 5 * nn,
        },
        Algorithm::Pcr => ComplexityRow {
            shared_accesses: 16 * nn * ln,
            arithmetic_ops: 12 * nn * ln,
            divisions: 2 * nn * ln,
            steps: ln,
            global_accesses: 5 * nn,
        },
        Algorithm::Rd => ComplexityRow {
            shared_accesses: 32 * nn * ln,
            arithmetic_ops: 20 * nn * ln,
            divisions: 0,
            steps: ln + 2,
            global_accesses: 5 * nn,
        },
        Algorithm::CrPcr { m } => {
            let mm = m as u64;
            let lm = log2(m);
            ComplexityRow {
                shared_accesses: 23 * (nn - mm) + 16 * mm * lm,
                arithmetic_ops: 17 * (nn - mm) + 12 * mm * lm,
                divisions: 3 * (nn - mm) + 2 * mm * lm,
                steps: 2 * ln - lm - 1,
                global_accesses: 5 * nn,
            }
        }
        Algorithm::CrRd { m } => {
            let mm = m as u64;
            let lm = log2(m);
            ComplexityRow {
                shared_accesses: 23 * (nn - mm) + 32 * mm * lm,
                arithmetic_ops: 17 * (nn - mm) + 20 * mm * lm,
                divisions: 3 * (nn - mm),
                steps: 2 * ln - lm + 1,
                global_accesses: 5 * nn,
            }
        }
    };
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_from_str_round_trips() {
        let algs = [
            Algorithm::Cr,
            Algorithm::Pcr,
            Algorithm::Rd,
            Algorithm::CrPcr { m: 256 },
            Algorithm::CrRd { m: 128 },
        ];
        for alg in algs {
            let text = alg.to_string();
            let parsed: Algorithm = text.parse().unwrap();
            assert_eq!(parsed, alg, "{text}");
        }
    }

    #[test]
    fn parse_is_case_insensitive_and_trimmed() {
        assert_eq!(" CR ".parse::<Algorithm>().unwrap(), Algorithm::Cr);
        assert_eq!("Cr+Pcr@64".parse::<Algorithm>().unwrap(), Algorithm::CrPcr { m: 64 });
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "thomas", "cr+", "cr+pcr", "cr+pcr@", "cr+pcr@x", "pcr@8"] {
            let e = bad.parse::<Algorithm>().unwrap_err();
            assert_eq!(e.input, bad, "{bad}");
        }
    }

    #[test]
    fn cr_512_matches_paper() {
        let r = table1(Algorithm::Cr, 512).unwrap();
        assert_eq!(r.shared_accesses, 23 * 512);
        assert_eq!(r.arithmetic_ops, 17 * 512);
        assert_eq!(r.divisions, 3 * 512);
        assert_eq!(r.steps, 17); // 2*9 - 1
        assert_eq!(r.global_accesses, 5 * 512);
    }

    #[test]
    fn pcr_512_matches_paper() {
        let r = table1(Algorithm::Pcr, 512).unwrap();
        assert_eq!(r.shared_accesses, 16 * 512 * 9);
        assert_eq!(r.arithmetic_ops, 12 * 512 * 9);
        assert_eq!(r.divisions, 2 * 512 * 9);
        assert_eq!(r.steps, 9);
    }

    #[test]
    fn rd_512_matches_paper() {
        let r = table1(Algorithm::Rd, 512).unwrap();
        assert_eq!(r.shared_accesses, 32 * 512 * 9);
        assert_eq!(r.arithmetic_ops, 20 * 512 * 9);
        assert_eq!(r.divisions, 0);
        assert_eq!(r.steps, 11); // log2(512) + 2
    }

    #[test]
    fn hybrid_reduces_to_components() {
        // At m = n, the CR term vanishes and only the inner solver remains.
        let h = table1(Algorithm::CrPcr { m: 512 }, 512).unwrap();
        let p = table1(Algorithm::Pcr, 512).unwrap();
        assert_eq!(h.shared_accesses, p.shared_accesses);
        assert_eq!(h.arithmetic_ops, p.arithmetic_ops);

        let h = table1(Algorithm::CrRd { m: 512 }, 512).unwrap();
        let r = table1(Algorithm::Rd, 512).unwrap();
        assert_eq!(h.shared_accesses, r.shared_accesses);
    }

    #[test]
    fn paper_best_switch_points() {
        // Paper §5.3.4/§5.3.5: CR+PCR best at m=256, CR+RD limited to m=128.
        let h256 = table1(Algorithm::CrPcr { m: 256 }, 512).unwrap();
        assert_eq!(h256.steps, 2 * 9 - 8 - 1); // = 9
        let h128 = table1(Algorithm::CrRd { m: 128 }, 512).unwrap();
        assert_eq!(h128.steps, 2 * 9 - 7 + 1); // = 12
    }

    #[test]
    fn hybrids_do_less_work_than_pcr_rd() {
        let p = table1(Algorithm::Pcr, 512).unwrap();
        let h = table1(Algorithm::CrPcr { m: 256 }, 512).unwrap();
        assert!(h.shared_accesses < p.shared_accesses);
        assert!(h.arithmetic_ops < p.arithmetic_ops);
        assert!(h.steps == p.steps); // 9 steps both at m=256, but less work
    }

    #[test]
    fn validation_rejects_bad_sizes() {
        assert!(table1(Algorithm::Cr, 100).is_err());
        assert!(table1(Algorithm::CrPcr { m: 3 }, 8).is_err());
        assert!(table1(Algorithm::CrPcr { m: 16 }, 8).is_err());
        assert!(table1(Algorithm::CrRd { m: 0 }, 8).is_err());
    }

    #[test]
    fn names() {
        assert_eq!(Algorithm::Cr.name(), "CR");
        assert_eq!(Algorithm::CrPcr { m: 4 }.name(), "CR+PCR");
        assert_eq!(Algorithm::CrRd { m: 4 }.name(), "CR+RD");
    }
}
