//! Error types shared by all solver crates.

use core::fmt;

/// Errors produced by solvers, generators and the simulator front-ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TridiagError {
    /// The GPU kernels in the paper only handle power-of-two system sizes
    /// ("our solvers only handle a power-of-two system size, which makes
    /// thread numbering and address calculation simpler").
    NotPowerOfTwo {
        /// Offending size.
        n: usize,
    },
    /// System too small for the requested algorithm (CR needs n >= 2, the
    /// hybrids need m <= n, ...).
    SizeTooSmall {
        /// Offending size.
        n: usize,
        /// Minimum supported size.
        min: usize,
    },
    /// Array lengths in a system/batch disagree.
    DimensionMismatch {
        /// Which array/dimension disagreed.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// A zero (or numerically-zero) pivot was hit by a no-pivoting algorithm.
    ZeroPivot {
        /// Row where elimination broke down.
        row: usize,
    },
    /// The solution contains NaN/Inf — recursive doubling is "prone to
    /// arithmetic overflow" (paper §5.4); this is surfaced instead of
    /// silently returning garbage.
    NonFiniteSolution {
        /// First non-finite solution index.
        first_bad_index: usize,
    },
    /// Requested shared-memory footprint exceeds the per-SM capacity and no
    /// fallback was allowed. The paper handles this case with a ~3x-slower
    /// global-memory-only path.
    SharedMemExceeded {
        /// Bytes the kernel would need per block.
        required_bytes: usize,
        /// Bytes available per SM.
        available_bytes: usize,
    },
    /// Invalid hybrid switch point (must be a power of two with
    /// 2 <= m <= n).
    InvalidIntermediateSize {
        /// Full system size.
        n: usize,
        /// Offending intermediate size.
        m: usize,
    },
    /// A configuration value was out of range.
    InvalidConfig {
        /// Description of the offending setting.
        what: &'static str,
    },
    /// A transient device fault aborted the launch (injected by the
    /// simulator's fault plan, or — on real hardware — an ECC/launch
    /// failure). Retrying the same launch may succeed.
    DeviceFault {
        /// Zero-based index of the faulted launch on its device.
        launch: u64,
    },
    /// The device is lost: every subsequent launch on it will fail.
    /// Retrying on the *same* device cannot help; callers must fail over
    /// (another device or the CPU safety net).
    DeviceLost,
}

impl TridiagError {
    /// `true` for errors that describe *device adversity* (transient fault
    /// or lost device) rather than a misconfigured or malformed launch.
    /// Dispatchers use this to route to retry/failover instead of
    /// treating the launch configuration as invalid.
    pub fn is_device_fault(&self) -> bool {
        matches!(self, TridiagError::DeviceFault { .. } | TridiagError::DeviceLost)
    }
}

impl fmt::Display for TridiagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TridiagError::NotPowerOfTwo { n } => {
                write!(f, "system size {n} is not a power of two")
            }
            TridiagError::SizeTooSmall { n, min } => {
                write!(f, "system size {n} is below the minimum {min}")
            }
            TridiagError::DimensionMismatch { what, expected, got } => {
                write!(f, "dimension mismatch in {what}: expected {expected}, got {got}")
            }
            TridiagError::ZeroPivot { row } => {
                write!(f, "zero pivot encountered at row {row} (algorithm has no pivoting)")
            }
            TridiagError::NonFiniteSolution { first_bad_index } => {
                write!(
                    f,
                    "solution overflowed to non-finite values (first at index {first_bad_index})"
                )
            }
            TridiagError::SharedMemExceeded { required_bytes, available_bytes } => {
                write!(
                    f,
                    "kernel needs {required_bytes} B of shared memory but only \
                     {available_bytes} B are available per SM"
                )
            }
            TridiagError::InvalidIntermediateSize { n, m } => {
                write!(
                    f,
                    "intermediate system size {m} is invalid for system size {n} \
                     (must be a power of two with 2 <= m <= n)"
                )
            }
            TridiagError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            TridiagError::DeviceFault { launch } => {
                write!(f, "transient device fault aborted launch {launch} (retry may succeed)")
            }
            TridiagError::DeviceLost => {
                f.write_str("device lost: all further launches on this device will fail")
            }
        }
    }
}

impl std::error::Error for TridiagError {}

/// Convenience alias used across the workspace.
pub type Result<T> = core::result::Result<T, TridiagError>;

/// Returns `Ok(())` when `n` is a power of two and at least `min`.
pub fn require_pow2(n: usize, min: usize) -> Result<()> {
    if n < min {
        return Err(TridiagError::SizeTooSmall { n, min });
    }
    if !n.is_power_of_two() {
        return Err(TridiagError::NotPowerOfTwo { n });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_accepts_powers() {
        for n in [2usize, 4, 8, 64, 512, 1024] {
            assert!(require_pow2(n, 2).is_ok(), "{n}");
        }
    }

    #[test]
    fn pow2_rejects_non_powers() {
        assert_eq!(require_pow2(6, 2), Err(TridiagError::NotPowerOfTwo { n: 6 }));
        assert_eq!(require_pow2(1, 2), Err(TridiagError::SizeTooSmall { n: 1, min: 2 }));
        assert_eq!(require_pow2(0, 2), Err(TridiagError::SizeTooSmall { n: 0, min: 2 }));
    }

    #[test]
    fn errors_display() {
        let msgs = [
            TridiagError::NotPowerOfTwo { n: 3 }.to_string(),
            TridiagError::ZeroPivot { row: 7 }.to_string(),
            TridiagError::NonFiniteSolution { first_bad_index: 1 }.to_string(),
            TridiagError::SharedMemExceeded { required_bytes: 20480, available_bytes: 16384 }
                .to_string(),
            TridiagError::InvalidIntermediateSize { n: 8, m: 16 }.to_string(),
            TridiagError::DeviceFault { launch: 3 }.to_string(),
            TridiagError::DeviceLost.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn device_adversity_is_distinguished_from_config_errors() {
        assert!(TridiagError::DeviceFault { launch: 0 }.is_device_fault());
        assert!(TridiagError::DeviceLost.is_device_fault());
        assert!(!TridiagError::NotPowerOfTwo { n: 3 }.is_device_fault());
        assert!(!TridiagError::InvalidConfig { what: "x" }.is_device_fault());
        assert!(!TridiagError::ZeroPivot { row: 1 }.is_device_fault());
    }
}
