//! Matrix identity: content hashing and symbolic structure tags.
//!
//! The serving tier's factorization cache (ROADMAP open item 1) needs a
//! cheap, deterministic answer to "have we seen this matrix before?".
//! Production traffic is dominated by repeated solves against the *same*
//! left-hand side — ADI sweeps, compact finite differences, spectral
//! Poisson — so the identity of a matrix is worth computing once per
//! request and caching factorizations against.
//!
//! Two layers:
//!
//! * [`StructureTag`] — a symbolic classification (Toeplitz,
//!   near-Toeplitz with boundary rows, periodic, uniform Poisson) found
//!   by a single O(n) scan. Structured matrices are keyed by their tag
//!   plus the handful of defining constants, so two clients that build
//!   the same Toeplitz operator from scratch unify without hashing 3n
//!   floats twice.
//! * a content hash (FNV-1a over the exact bit patterns) as the general
//!   fallback, so *any* repeated matrix unifies even when it has no
//!   recognizable structure.
//!
//! Keys are advisory: a 64-bit hash collision would alias two different
//! matrices, which is why every consumer of a cached factorization must
//! residual-verify its answers (the service does) — a collision then
//! degrades to a repaired cache miss, never a wrong answer.

use crate::real::Real;
use crate::system::TridiagonalSystem;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Symbolic structure classification of a tridiagonal matrix, detected by
/// one pass over `(a, b, c)`. Comparisons are exact (bitwise): the tags
/// unify structurally *identical* matrices, never merely similar ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureTag {
    /// No recognized structure; identity falls back to the content hash.
    General,
    /// Constant diagonals: `a[i] = α`, `b[i] = β`, `c[i] = γ` everywhere
    /// (boundary zeros of `a[0]`/`c[n-1]` excepted).
    Toeplitz,
    /// Constant *interior* diagonals with modified first and/or last rows
    /// (the boundary-condition shape of compact finite differences).
    NearToeplitz,
    /// Constant diagonals with wraparound corner entries (`a[0]` couples
    /// row 0 to row n-1, `c[n-1]` couples back) — a circulant operator.
    Periodic,
    /// The uniform Poisson stencil `[α, -2α, α]` (any scaling `α`), the
    /// single most common matrix in the example workloads.
    UniformPoisson,
}

impl StructureTag {
    /// Short machine-readable name (used in metrics and trace labels).
    pub fn name(self) -> &'static str {
        match self {
            StructureTag::General => "general",
            StructureTag::Toeplitz => "toeplitz",
            StructureTag::NearToeplitz => "near-toeplitz",
            StructureTag::Periodic => "periodic",
            StructureTag::UniformPoisson => "uniform-poisson",
        }
    }

    /// Stable discriminant mixed into structured-key hashes.
    fn discriminant(self) -> u64 {
        match self {
            StructureTag::General => 0,
            StructureTag::Toeplitz => 1,
            StructureTag::NearToeplitz => 2,
            StructureTag::Periodic => 3,
            StructureTag::UniformPoisson => 4,
        }
    }
}

/// The identity of a tridiagonal left-hand side: size, element width,
/// structure tag, and a 64-bit content digest. Two systems with equal
/// keys are (up to hash collision — see the module docs) the same matrix,
/// so a factorization computed for one serves the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixKey {
    /// System size.
    pub n: usize,
    /// Element width in bytes (`f32` and `f64` never unify).
    pub element_bytes: usize,
    /// Detected symbolic structure.
    pub tag: StructureTag,
    /// FNV-1a digest: over the defining constants for structured tags,
    /// over every element's bit pattern for [`StructureTag::General`].
    pub hash: u64,
}

impl MatrixKey {
    /// Computes the key of the matrix `(a, b, c)`. The slices must be the
    /// same length; `d` plays no part in matrix identity.
    pub fn of<T: Real>(a: &[T], b: &[T], c: &[T]) -> MatrixKey {
        let n = b.len();
        debug_assert!(a.len() == n && c.len() == n, "diagonal length mismatch");
        let tag = structure_tag(a, b, c);
        let mut h = FNV_OFFSET;
        h = fnv_u64(h, n as u64);
        h = fnv_u64(h, T::BYTES as u64);
        h = fnv_u64(h, tag.discriminant());
        match tag {
            StructureTag::General => {
                for v in a.iter().chain(b).chain(c) {
                    h = fnv_u64(h, v.to_f64().to_bits());
                }
            }
            StructureTag::Toeplitz | StructureTag::UniformPoisson => {
                // Interior constants fully determine the matrix.
                h = fnv_u64(h, interior_or(a, 1).to_f64().to_bits());
                h = fnv_u64(h, b[0].to_f64().to_bits());
                h = fnv_u64(h, c[0].to_f64().to_bits());
            }
            StructureTag::Periodic => {
                h = fnv_u64(h, a[0].to_f64().to_bits());
                h = fnv_u64(h, b[0].to_f64().to_bits());
                h = fnv_u64(h, c[0].to_f64().to_bits());
            }
            StructureTag::NearToeplitz => {
                // Interior constants plus both boundary rows.
                h = fnv_u64(h, interior_or(a, 1).to_f64().to_bits());
                h = fnv_u64(h, interior_or(b, 1).to_f64().to_bits());
                h = fnv_u64(h, interior_or(c, 1).to_f64().to_bits());
                for v in [b[0], c[0], a[n - 1], b[n - 1]] {
                    h = fnv_u64(h, v.to_f64().to_bits());
                }
            }
        }
        MatrixKey { n, element_bytes: T::BYTES, tag, hash: h }
    }

    /// Key of a [`TridiagonalSystem`]'s left-hand side.
    pub fn of_system<T: Real>(system: &TridiagonalSystem<T>) -> MatrixKey {
        MatrixKey::of(&system.a, &system.b, &system.c)
    }

    /// Folds the whole key into one `u64` for compact trace events and
    /// bucket grouping (0 is reserved for "no key").
    pub fn fingerprint(&self) -> u64 {
        let mut h = self.hash;
        h = fnv_u64(h, self.n as u64);
        h = fnv_u64(h, self.element_bytes as u64);
        h.max(1)
    }
}

/// One FNV-1a step over the eight bytes of `v`.
fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for byte in v.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// First interior element of a diagonal (index `from`), or the first
/// element for systems too small to have an interior.
fn interior_or<T: Real>(diag: &[T], from: usize) -> T {
    *diag.get(from).unwrap_or(&diag[0])
}

/// Classifies `(a, b, c)` with one scan. See [`StructureTag`] for the
/// recognized shapes; anything else is [`StructureTag::General`].
pub fn structure_tag<T: Real>(a: &[T], b: &[T], c: &[T]) -> StructureTag {
    let n = b.len();
    if n < 3 {
        return StructureTag::General;
    }
    // Representative interior constants (row 1..n-1 is interior for b; the
    // sub-diagonal's first real entry is a[1], the super-diagonal's last
    // is c[n-2]).
    let ai = a[1];
    let bi = b[1];
    let ci = c[1];
    let interior_constant = (1..n - 1).all(|i| a[i] == ai && b[i] == bi && c[i] == ci)
        && a[n - 1] == ai
        && b[0] == bi
        && b[n - 1] == bi
        && c[0] == ci;
    let wraps = a[0] != T::ZERO || c[n - 1] != T::ZERO;
    if wraps {
        // Circulant: every row identical including the corner couplings.
        let constant = (0..n).all(|i| a[i] == ai && b[i] == bi && c[i] == ci);
        return if constant { StructureTag::Periodic } else { StructureTag::General };
    }
    if interior_constant && c[n - 1] == T::ZERO {
        // Fully Toeplitz (boundary zeros aside): check the Poisson shape.
        if ai == ci && ai != T::ZERO && bi == -(ai + ai) {
            return StructureTag::UniformPoisson;
        }
        return StructureTag::Toeplitz;
    }
    // Interior constant but boundary rows modified?
    let interior_only = (2..n - 1).all(|i| a[i] == ai && b[i] == bi && c[i] == ci);
    if interior_only && n > 3 {
        return StructureTag::NearToeplitz;
    }
    StructureTag::General
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson(n: usize, scale: f64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut a = vec![-scale; n];
        let mut c = vec![-scale; n];
        let b = vec![2.0 * scale; n];
        a[0] = 0.0;
        c[n - 1] = 0.0;
        (a, b, c)
    }

    #[test]
    fn poisson_is_tagged_uniform() {
        let (a, b, c) = poisson(64, 1.0);
        assert_eq!(structure_tag(&a, &b, &c), StructureTag::UniformPoisson);
        let (a, b, c) = poisson(64, 0.25);
        assert_eq!(structure_tag(&a, &b, &c), StructureTag::UniformPoisson);
    }

    #[test]
    fn toeplitz_and_near_toeplitz_are_distinguished() {
        let n = 32;
        let mut a = vec![-1.0f32; n];
        let b = vec![4.0f32; n];
        let mut c = vec![-2.0f32; n];
        a[0] = 0.0;
        c[n - 1] = 0.0;
        assert_eq!(structure_tag(&a, &b, &c), StructureTag::Toeplitz);
        // Modified boundary rows (e.g. Dirichlet closure) downgrade to
        // near-Toeplitz, not general.
        let mut b2 = b.clone();
        b2[0] = 1.0;
        b2[n - 1] = 1.0;
        let mut c2 = c.clone();
        c2[0] = 0.0;
        assert_eq!(structure_tag(&a, &b2, &c2), StructureTag::NearToeplitz);
    }

    #[test]
    fn periodic_wraparound_is_tagged() {
        let n = 16;
        let a = vec![-1.0f64; n];
        let b = vec![3.0f64; n];
        let c = vec![-1.0f64; n];
        assert_eq!(structure_tag(&a, &b, &c), StructureTag::Periodic);
        // A lone nonzero corner on an otherwise varying matrix is general.
        let mut b2 = b.clone();
        b2[3] = 9.0;
        assert_eq!(structure_tag(&a, &b2, &c), StructureTag::General);
    }

    #[test]
    fn random_matrices_are_general_and_keys_differ() {
        let g = |seed: u64, i: usize| {
            let mut z = seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) + 1.0
        };
        let n = 48;
        let mut a: Vec<f64> = (0..n).map(|i| g(1, i)).collect();
        let b: Vec<f64> = (0..n).map(|i| g(2, i) + 4.0).collect();
        let mut c: Vec<f64> = (0..n).map(|i| g(3, i)).collect();
        a[0] = 0.0;
        c[n - 1] = 0.0;
        assert_eq!(structure_tag(&a, &b, &c), StructureTag::General);
        let k1 = MatrixKey::of(&a, &b, &c);
        // A one-element perturbation must change the key.
        let mut b2 = b.clone();
        b2[17] += 1e-9;
        let k2 = MatrixKey::of(&a, &b2, &c);
        assert_ne!(k1, k2);
        assert_eq!(k1, MatrixKey::of(&a, &b, &c), "keys are deterministic");
    }

    #[test]
    fn same_structure_unifies_across_constructions() {
        let (a1, b1, c1) = poisson(128, 2.0);
        let (a2, b2, c2) = poisson(128, 2.0);
        assert_eq!(MatrixKey::of(&a1, &b1, &c1), MatrixKey::of(&a2, &b2, &c2));
        // Different scaling must not unify.
        let (a3, b3, c3) = poisson(128, 4.0);
        assert_ne!(MatrixKey::of(&a1, &b1, &c1), MatrixKey::of(&a3, &b3, &c3));
        // Same values, different width must not unify.
        let (af, bf, cf) = {
            let (a, b, c) = poisson(128, 2.0);
            (
                a.iter().map(|v| *v as f32).collect::<Vec<_>>(),
                b.iter().map(|v| *v as f32).collect::<Vec<_>>(),
                c.iter().map(|v| *v as f32).collect::<Vec<_>>(),
            )
        };
        assert_ne!(
            MatrixKey::of(&af, &bf, &cf).fingerprint(),
            MatrixKey::of(&a1, &b1, &c1).fingerprint()
        );
    }

    #[test]
    fn fingerprint_is_never_zero() {
        let (a, b, c) = poisson(8, 1.0);
        assert_ne!(MatrixKey::of(&a, &b, &c).fingerprint(), 0);
    }
}
