//! # tridiag-core
//!
//! Problem-domain foundation for the reproduction of *Fast Tridiagonal
//! Solvers on the GPU* (Zhang, Cohen & Owens, PPoPP 2010):
//!
//! * [`TridiagonalSystem`] / [`SystemBatch`] — single and batched systems,
//!   stored in the paper's five-contiguous-arrays layout;
//! * [`workload`] — the evaluation's matrix families (diagonally dominant,
//!   close-values-in-rows, Poisson stencil, random);
//! * [`residual`] — the `||Ax − d||` accuracy metrics of §5.4;
//! * [`complexity`] — the analytic cost model of Table 1;
//! * [`Real`] — `f32`/`f64` abstraction (the paper uses `f32`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod block;
pub mod certificate;
pub mod complexity;
pub mod error;
pub mod identity;
pub mod periodic;
pub mod real;
pub mod residual;
pub mod system;
pub mod workload;

pub use batch::{SolutionBatch, SystemBatch};
pub use block::BlockTridiagonalSystem;
pub use certificate::NumericCertificate;
pub use complexity::{table1, Algorithm, ComplexityRow, ParseAlgorithmError};
pub use error::{require_pow2, Result, TridiagError};
pub use identity::{structure_tag, MatrixKey, StructureTag};
pub use periodic::PeriodicTridiagonalSystem;
pub use real::Real;
pub use system::TridiagonalSystem;
pub use workload::{dominant_batch, Generator, Workload};
