//! Periodic (cyclic) tridiagonal systems — the wrap-around variant arising
//! from periodic boundary conditions in the ADI/Poisson applications the
//! paper's introduction motivates.
//!
//! ```text
//!         | b[0]  c[0]                  a[0] |
//!         | a[1]  b[1]  c[1]                 |
//!     A = |       ...   ...   ...            |
//!         |            a[n-2] b[n-2] c[n-2]  |
//!         | c[n-1]           a[n-1]  b[n-1]  |
//! ```
//!
//! `a[0]` is the top-right corner (coupling `x[n-1]` into equation 0) and
//! `c[n-1]` the bottom-left corner (coupling `x[0]` into equation n-1).
//! Solvers reduce the cyclic system to an ordinary tridiagonal one via the
//! Sherman–Morrison rank-one update.

use crate::error::{Result, TridiagError};
use crate::real::Real;
use crate::system::TridiagonalSystem;

/// One periodic tridiagonal system of `n >= 3` equations.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodicTridiagonalSystem<T: Real> {
    /// Sub-diagonal; `a[0]` is the top-right corner entry.
    pub a: Vec<T>,
    /// Main diagonal.
    pub b: Vec<T>,
    /// Super-diagonal; `c[n-1]` is the bottom-left corner entry.
    pub c: Vec<T>,
    /// Right-hand side.
    pub d: Vec<T>,
}

impl<T: Real> PeriodicTridiagonalSystem<T> {
    /// Builds a system, validating shapes (corners may be any value).
    pub fn new(a: Vec<T>, b: Vec<T>, c: Vec<T>, d: Vec<T>) -> Result<Self> {
        let n = b.len();
        if n < 3 {
            return Err(TridiagError::SizeTooSmall { n, min: 3 });
        }
        for (what, len) in [("a", a.len()), ("c", c.len()), ("d", d.len())] {
            if len != n {
                return Err(TridiagError::DimensionMismatch { what, expected: n, got: len });
            }
        }
        Ok(Self { a, b, c, d })
    }

    /// Number of unknowns.
    #[inline]
    pub fn n(&self) -> usize {
        self.b.len()
    }

    /// Constant-coefficient circulant stencil (e.g. the periodic Poisson
    /// matrix `[-1, 2, -1]`).
    pub fn circulant(n: usize, a: T, b: T, c: T, d: T) -> Result<Self> {
        Self::new(vec![a; n], vec![b; n], vec![c; n], vec![d; n])
    }

    /// Computes `A x` including the wrap-around couplings.
    pub fn matvec(&self, x: &[T]) -> Result<Vec<T>> {
        let n = self.n();
        if x.len() != n {
            return Err(TridiagError::DimensionMismatch { what: "x", expected: n, got: x.len() });
        }
        let mut y = vec![T::ZERO; n];
        for i in 0..n {
            let left = if i == 0 { x[n - 1] } else { x[i - 1] };
            let right = if i == n - 1 { x[0] } else { x[i + 1] };
            y[i] = self.a[i] * left + self.b[i] * x[i] + self.c[i] * right;
        }
        Ok(y)
    }

    /// `||A x - d||_2`, accumulated in f64.
    pub fn l2_residual(&self, x: &[T]) -> Result<f64> {
        let n = self.n();
        if x.len() != n {
            return Err(TridiagError::DimensionMismatch { what: "x", expected: n, got: x.len() });
        }
        let mut sum = 0.0f64;
        for i in 0..n {
            let left = if i == 0 { x[n - 1] } else { x[i - 1] };
            let right = if i == n - 1 { x[0] } else { x[i + 1] };
            let r = self.a[i].to_f64() * left.to_f64()
                + self.b[i].to_f64() * x[i].to_f64()
                + self.c[i].to_f64() * right.to_f64()
                - self.d[i].to_f64();
            sum += r * r;
        }
        Ok(sum.sqrt())
    }

    /// The Sherman–Morrison reduction: returns the modified *ordinary*
    /// tridiagonal matrix `A'` (with zeroed corners and adjusted `b[0]`,
    /// `b[n-1]`) plus the rank-one vectors' scalar data
    /// `(gamma, alpha, beta)` with `alpha = a[0]`, `beta = c[n-1]`:
    ///
    /// `A = A' + u v^T`, `u = [gamma, 0, .., 0, beta]`,
    /// `v = [1, 0, .., 0, alpha/gamma]`.
    pub fn sherman_morrison_parts(&self) -> (TridiagonalSystem<T>, T, T, T) {
        let n = self.n();
        let alpha = self.a[0];
        let beta = self.c[n - 1];
        let gamma = -self.b[0];
        let mut a = self.a.clone();
        let mut b = self.b.clone();
        let mut c = self.c.clone();
        a[0] = T::ZERO;
        c[n - 1] = T::ZERO;
        b[0] = self.b[0] - gamma;
        b[n - 1] = self.b[n - 1] - alpha * beta / gamma;
        (TridiagonalSystem { a, b, c, d: self.d.clone() }, gamma, alpha, beta)
    }

    /// The companion right-hand side `u` of the Sherman–Morrison solve.
    pub fn sherman_morrison_u(&self) -> Vec<T> {
        let n = self.n();
        let (_, gamma, _, beta) = self.sherman_morrison_parts();
        let mut u = vec![T::ZERO; n];
        u[0] = gamma;
        u[n - 1] = beta;
        u
    }

    /// Combines the two modified-system solutions `y` (for `d`) and `z`
    /// (for `u`) into the cyclic solution: `x = y - z (v.y) / (1 + v.z)`.
    pub fn sherman_morrison_combine(&self, y: &[T], z: &[T], x: &mut [T]) {
        let n = self.n();
        let (_, gamma, alpha, _) = self.sherman_morrison_parts();
        let vy = y[0] + alpha / gamma * y[n - 1];
        let vz = z[0] + alpha / gamma * z[n - 1];
        let factor = vy / (T::ONE + vz);
        for i in 0..n {
            x[i] = y[i] - z[i] * factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_solve(sys: &PeriodicTridiagonalSystem<f64>) -> Vec<f64> {
        // Straightforward dense Gaussian elimination with partial pivoting
        // for validation.
        let n = sys.n();
        let mut m = vec![vec![0.0f64; n + 1]; n];
        for i in 0..n {
            m[i][i] = sys.b[i];
            m[i][(i + n - 1) % n] += sys.a[i];
            m[i][(i + 1) % n] += sys.c[i];
            m[i][n] = sys.d[i];
        }
        for col in 0..n {
            let piv = (col..n)
                .max_by(|&p, &q| m[p][col].abs().partial_cmp(&m[q][col].abs()).unwrap())
                .unwrap();
            m.swap(col, piv);
            for row in col + 1..n {
                let f = m[row][col] / m[col][col];
                for k in col..=n {
                    m[row][k] -= f * m[col][k];
                }
            }
        }
        let mut x = vec![0.0f64; n];
        for row in (0..n).rev() {
            let mut v = m[row][n];
            for k in row + 1..n {
                v -= m[row][k] * x[k];
            }
            x[row] = v / m[row][row];
        }
        x
    }

    fn sample() -> PeriodicTridiagonalSystem<f64> {
        PeriodicTridiagonalSystem::new(
            vec![0.5, -1.0, 0.7, -0.3, 0.9, -0.2, 0.4, 0.8],
            vec![4.0, 4.5, 3.8, 4.2, 5.0, 4.1, 3.9, 4.4],
            vec![-0.8, 0.6, -0.4, 1.0, -0.5, 0.3, -0.9, 0.6],
            vec![1.0, -2.0, 3.0, -4.0, 5.0, -6.0, 7.0, -8.0],
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        assert!(PeriodicTridiagonalSystem::<f64>::new(
            vec![1.0; 2],
            vec![1.0; 2],
            vec![1.0; 2],
            vec![1.0; 2]
        )
        .is_err());
        assert!(PeriodicTridiagonalSystem::<f64>::new(
            vec![1.0; 3],
            vec![1.0; 4],
            vec![1.0; 4],
            vec![1.0; 4]
        )
        .is_err());
    }

    #[test]
    fn matvec_includes_wraparound() {
        let s = PeriodicTridiagonalSystem::circulant(4, 1.0f64, 2.0, 3.0, 0.0).unwrap();
        let x = vec![1.0, 0.0, 0.0, 0.0];
        let y = s.matvec(&x).unwrap();
        // Column 0 of A: b[0]=2 at row 0, a[1]=1 at row 1, c[3]=3 at row 3.
        assert_eq!(y, vec![2.0, 1.0, 0.0, 3.0]);
    }

    #[test]
    fn sherman_morrison_reconstructs_the_matrix() {
        let s = sample();
        let n = s.n();
        let (modified, gamma, alpha, beta) = s.sherman_morrison_parts();
        // A == A' + u v^T entry-wise on the probe vectors e_j.
        for j in 0..n {
            let mut e = vec![0.0f64; n];
            e[j] = 1.0;
            let ax = s.matvec(&e).unwrap();
            let apx = modified.matvec(&e).unwrap();
            let v_j = if j == 0 {
                1.0
            } else if j == n - 1 {
                alpha / gamma
            } else {
                0.0
            };
            for i in 0..n {
                let u_i = if i == 0 {
                    gamma
                } else if i == n - 1 {
                    beta
                } else {
                    0.0
                };
                let recon = apx[i] + u_i * v_j;
                assert!((ax[i] - recon).abs() < 1e-12, "entry ({i},{j})");
            }
        }
    }

    #[test]
    fn combine_solves_the_cyclic_system() {
        let s = sample();
        let (modified, _, _, _) = s.sherman_morrison_parts();
        let u = s.sherman_morrison_u();
        // Solve the two ordinary systems densely for the test.
        let y = {
            let mut plain = s.clone();
            plain.a = modified.a.clone();
            plain.b = modified.b.clone();
            plain.c = modified.c.clone();
            plain.d = modified.d.clone();
            // corners zero -> dense path still fine
            dense_solve(&plain)
        };
        let z = {
            let mut plain = s.clone();
            plain.a = modified.a.clone();
            plain.b = modified.b.clone();
            plain.c = modified.c.clone();
            plain.d = u;
            dense_solve(&plain)
        };
        let mut x = vec![0.0f64; s.n()];
        s.sherman_morrison_combine(&y, &z, &mut x);
        assert!(s.l2_residual(&x).unwrap() < 1e-10);
        let x_dense = dense_solve(&s);
        for i in 0..s.n() {
            assert!((x[i] - x_dense[i]).abs() < 1e-9, "i={i}");
        }
    }

    #[test]
    fn circulant_poisson_constant_rhs_is_singular_but_shifted_is_fine() {
        // [-1, 2, -1] periodic is singular (constant nullspace); shifting
        // the diagonal regularizes it.
        let s = PeriodicTridiagonalSystem::circulant(8, -1.0f64, 2.5, -1.0, 1.0).unwrap();
        let x = dense_solve(&s);
        assert!(s.l2_residual(&x).unwrap() < 1e-10);
        // Constant RHS + circulant matrix -> constant solution 1/(sum of row).
        for &v in &x {
            assert!((v - 1.0 / 0.5).abs() < 1e-10);
        }
    }
}
