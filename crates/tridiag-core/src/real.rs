//! Floating-point abstraction used across the whole workspace.
//!
//! The paper evaluates single-precision solvers (GTX 280 double-precision
//! throughput was poor), but explicitly notes the analysis "would apply
//! equally well to double-precision solvers". Everything here is therefore
//! generic over [`Real`], implemented for `f32` and `f64`.

use core::fmt::{Debug, Display};
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A scalar type the solvers and the simulator can operate on.
///
/// This deliberately stays minimal: only the operations the kernels and the
/// residual/accuracy machinery actually need.
pub trait Real:
    Copy
    + Clone
    + Debug
    + Display
    + PartialOrd
    + PartialEq
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of the type.
    const EPSILON: Self;
    /// Number of 32-bit shared-memory words one element occupies
    /// (1 for `f32`, 2 for `f64`). Drives bank-conflict modelling.
    const SHARED_WORDS: usize;
    /// Size of the type in bytes (global-memory traffic accounting).
    const BYTES: usize;
    /// Human-readable name for reports ("f32" / "f64").
    const NAME: &'static str;

    /// Lossy conversion from `f64` (used by generators and tolerances).
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64` (used by residual accumulation).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// `true` when neither NaN nor infinite.
    fn is_finite(self) -> bool;
    /// Larger of two values (NaN-propagating like `f32::max` is fine here).
    fn max(self, other: Self) -> Self;
    /// Smaller of two values.
    fn min(self, other: Self) -> Self;
    /// Fused or unfused multiply-add `self * b + c`; the kernels use this to
    /// mirror the FLOP accounting of the paper (a MAD counts as 2 flops).
    fn mul_add(self, b: Self, c: Self) -> Self;
}

macro_rules! impl_real {
    ($t:ty, $words:expr, $name:literal) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;
            const SHARED_WORDS: usize = $words;
            const BYTES: usize = core::mem::size_of::<$t>();
            const NAME: &'static str = $name;

            #[inline]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline]
            fn mul_add(self, b: Self, c: Self) -> Self {
                // Plain multiply-add: the GT200 MAD unit did not fuse with
                // extra precision, so an unfused product models it better.
                self * b + c
            }
        }
    };
}

impl_real!(f32, 1, "f32");
impl_real!(f64, 2, "f64");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_constants() {
        assert_eq!(f32::ZERO, 0.0);
        assert_eq!(f32::ONE, 1.0);
        assert_eq!(f32::SHARED_WORDS, 1);
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f32::NAME, "f32");
    }

    #[test]
    fn f64_constants() {
        assert_eq!(f64::SHARED_WORDS, 2);
        assert_eq!(f64::BYTES, 8);
        assert_eq!(f64::NAME, "f64");
    }

    #[test]
    fn conversions_round_trip() {
        let x = 1.25f64;
        assert_eq!(f32::from_f64(x).to_f64(), 1.25);
        assert_eq!(f64::from_f64(x), 1.25);
    }

    #[test]
    fn finite_checks() {
        assert!(1.0f32.is_finite());
        assert!(!(f32::INFINITY).is_finite());
        assert!(!Real::is_finite(f32::NAN));
    }

    #[test]
    fn mul_add_matches_expression() {
        let (a, b, c) = (3.0f32, 4.0, 5.0);
        assert_eq!(Real::mul_add(a, b, c), a * b + c);
    }
}
