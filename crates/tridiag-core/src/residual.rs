//! Residual and error norms used by the accuracy experiments (§5.4).
//!
//! The paper compares solvers "by checking the residual of the solution,
//! i.e. ||Ax - b||". Accumulation happens in `f64` regardless of the solve
//! precision so the measurement itself does not drown in rounding error.

use crate::batch::{SolutionBatch, SystemBatch};
use crate::error::Result;
use crate::real::Real;
use crate::system::TridiagonalSystem;

/// Residual component `(A x - d)_i`, computed entirely in f64 so the
/// *measurement* cannot overflow even when a solver returned huge (finite)
/// garbage in a narrower type.
fn residual_component<T: Real>(system: &TridiagonalSystem<T>, x: &[T], i: usize) -> f64 {
    let n = system.n();
    let mut v = system.b[i].to_f64() * x[i].to_f64();
    if i > 0 {
        v += system.a[i].to_f64() * x[i - 1].to_f64();
    }
    if i + 1 < n {
        v += system.c[i].to_f64() * x[i + 1].to_f64();
    }
    v - system.d[i].to_f64()
}

fn check_len<T: Real>(system: &TridiagonalSystem<T>, x: &[T]) -> Result<()> {
    if x.len() != system.n() {
        return Err(crate::error::TridiagError::DimensionMismatch {
            what: "x",
            expected: system.n(),
            got: x.len(),
        });
    }
    Ok(())
}

/// `||A x - d||_2` for one system, accumulated in f64.
pub fn l2_residual<T: Real>(system: &TridiagonalSystem<T>, x: &[T]) -> Result<f64> {
    check_len(system, x)?;
    let sum: f64 = (0..system.n())
        .map(|i| {
            let r = residual_component(system, x, i);
            r * r
        })
        .sum();
    Ok(sum.sqrt())
}

/// `||A x - d||_inf` for one system.
pub fn linf_residual<T: Real>(system: &TridiagonalSystem<T>, x: &[T]) -> Result<f64> {
    check_len(system, x)?;
    Ok((0..system.n()).map(|i| residual_component(system, x, i).abs()).fold(0.0f64, f64::max))
}

/// Residual normalized by `||d||_2` (scale-free comparison across families).
pub fn relative_l2_residual<T: Real>(system: &TridiagonalSystem<T>, x: &[T]) -> Result<f64> {
    let num = l2_residual(system, x)?;
    let den: f64 = system.d.iter().map(|&v| v.to_f64() * v.to_f64()).sum::<f64>().sqrt();
    Ok(if den == 0.0 { num } else { num / den })
}

/// Max absolute componentwise difference between two solutions.
pub fn max_abs_diff<T: Real>(x: &[T], y: &[T]) -> f64 {
    assert_eq!(x.len(), y.len(), "solution length mismatch");
    x.iter().zip(y).map(|(&p, &q)| (p.to_f64() - q.to_f64()).abs()).fold(0.0f64, f64::max)
}

/// Summary of residuals across a whole batch, as plotted in Figure 18
/// (one residual bar per solver; we keep mean and max).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchResidual {
    /// Mean L2 residual over the systems.
    pub mean_l2: f64,
    /// Worst L2 residual over the systems.
    pub max_l2: f64,
    /// Worst Linf residual over the systems.
    pub max_linf: f64,
    /// Number of systems whose solution contains NaN/Inf ("overflow" bars
    /// in Figure 18).
    pub overflowed_systems: usize,
}

impl BatchResidual {
    /// `true` when at least one system overflowed to non-finite values.
    pub fn has_overflow(&self) -> bool {
        self.overflowed_systems > 0
    }
}

/// Residual summary of `solutions` against `batch`.
pub fn batch_residual<T: Real>(
    batch: &SystemBatch<T>,
    solutions: &SolutionBatch<T>,
) -> Result<BatchResidual> {
    assert_eq!(batch.n(), solutions.n());
    assert_eq!(batch.count(), solutions.count());
    let mut sum_l2 = 0.0f64;
    let mut max_l2 = 0.0f64;
    let mut max_linf = 0.0f64;
    let mut overflowed = 0usize;
    let mut finite_count = 0usize;
    for i in 0..batch.count() {
        let sys = batch.system(i);
        let x = solutions.system(i);
        if x.iter().any(|v| !v.is_finite()) {
            overflowed += 1;
            continue;
        }
        let l2 = l2_residual(&sys, x)?;
        let linf = linf_residual(&sys, x)?;
        sum_l2 += l2;
        max_l2 = max_l2.max(l2);
        max_linf = max_linf.max(linf);
        finite_count += 1;
    }
    Ok(BatchResidual {
        mean_l2: if finite_count > 0 { sum_l2 / finite_count as f64 } else { f64::INFINITY },
        max_l2: if finite_count > 0 { max_l2 } else { f64::INFINITY },
        max_linf: if finite_count > 0 { max_linf } else { f64::INFINITY },
        overflowed_systems: overflowed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::TridiagonalSystem;

    fn sys() -> TridiagonalSystem<f64> {
        TridiagonalSystem::toeplitz(4, -1.0, 2.0, -1.0, 1.0).unwrap()
    }

    #[test]
    fn exact_solution_has_zero_residual() {
        let x = vec![2.0, 3.0, 3.0, 2.0]; // exact for [-1,2,-1] with d=1
        let s = sys();
        assert!(l2_residual(&s, &x).unwrap() < 1e-12);
        assert!(linf_residual(&s, &x).unwrap() < 1e-12);
        assert!(relative_l2_residual(&s, &x).unwrap() < 1e-12);
    }

    #[test]
    fn perturbed_solution_has_expected_residual() {
        let s = sys();
        let x = vec![2.0, 3.0, 3.0, 2.0 + 1.0]; // perturb last unknown by 1
                                                // A*e for e = (0,0,0,1): rows get (0, 0, -1, 2).
        let l2 = l2_residual(&s, &x).unwrap();
        assert!((l2 - (1.0f64 + 4.0).sqrt()).abs() < 1e-12);
        assert!((linf_residual(&s, &x).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_works() {
        assert_eq!(max_abs_diff(&[1.0f32, 2.0], &[1.0, 4.5]), 2.5);
        assert_eq!(max_abs_diff::<f32>(&[], &[]), 0.0);
    }

    #[test]
    fn batch_residual_counts_overflow() {
        let batch = SystemBatch::from_systems(&[sys(), sys()]).unwrap();
        let mut sol = SolutionBatch::zeros_like(&batch);
        sol.system_mut(0).copy_from_slice(&[2.0, 3.0, 3.0, 2.0]);
        sol.system_mut(1).copy_from_slice(&[f64::NAN, 0.0, 0.0, 0.0]);
        let r = batch_residual(&batch, &sol).unwrap();
        assert_eq!(r.overflowed_systems, 1);
        assert!(r.has_overflow());
        assert!(r.mean_l2 < 1e-12);
    }

    #[test]
    fn all_overflowed_batch_is_infinite() {
        let batch = SystemBatch::from_systems(&[sys()]).unwrap();
        let mut sol = SolutionBatch::zeros_like(&batch);
        sol.system_mut(0)[0] = f64::INFINITY;
        let r = batch_residual(&batch, &sol).unwrap();
        assert!(r.mean_l2.is_infinite());
        assert_eq!(r.overflowed_systems, 1);
    }
}
