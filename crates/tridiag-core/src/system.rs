//! A single tridiagonal linear system `A x = d`.
//!
//! The matrix is stored as three diagonals following the paper's convention:
//!
//! ```text
//!         | b[0] c[0]                      |
//!         | a[1] b[1] c[1]                 |
//!     A = |      a[2] b[2] c[2]            |
//!         |           ...  ...   c[n-2]    |
//!         |                a[n-1] b[n-1]   |
//! ```
//!
//! `a[0]` and `c[n-1]` are stored but must be zero; every constructor and
//! generator enforces this so kernels can rely on it.

use crate::error::{Result, TridiagError};
use crate::real::Real;

/// One tridiagonal system of `n` equations.
#[derive(Debug, Clone, PartialEq)]
pub struct TridiagonalSystem<T: Real> {
    /// Sub-diagonal, `a[0] == 0`.
    pub a: Vec<T>,
    /// Main diagonal.
    pub b: Vec<T>,
    /// Super-diagonal, `c[n-1] == 0`.
    pub c: Vec<T>,
    /// Right-hand side.
    pub d: Vec<T>,
}

impl<T: Real> TridiagonalSystem<T> {
    /// Builds a system from the four diagonals, validating shapes and the
    /// boundary-zero convention.
    pub fn new(a: Vec<T>, b: Vec<T>, c: Vec<T>, d: Vec<T>) -> Result<Self> {
        let n = b.len();
        if n == 0 {
            return Err(TridiagError::SizeTooSmall { n: 0, min: 1 });
        }
        for (what, len) in [("a", a.len()), ("c", c.len()), ("d", d.len())] {
            if len != n {
                return Err(TridiagError::DimensionMismatch { what, expected: n, got: len });
            }
        }
        if a[0] != T::ZERO {
            return Err(TridiagError::InvalidConfig { what: "a[0] must be zero" });
        }
        if c[n - 1] != T::ZERO {
            return Err(TridiagError::InvalidConfig { what: "c[n-1] must be zero" });
        }
        Ok(Self { a, b, c, d })
    }

    /// Number of unknowns.
    #[inline]
    pub fn n(&self) -> usize {
        self.b.len()
    }

    /// Constant-coefficient (Toeplitz) system with the given stencil and
    /// right-hand side values. `a[0]`/`c[n-1]` are zeroed per convention.
    pub fn toeplitz(n: usize, a: T, b: T, c: T, d: T) -> Result<Self> {
        if n == 0 {
            return Err(TridiagError::SizeTooSmall { n: 0, min: 1 });
        }
        let mut av = vec![a; n];
        let mut cv = vec![c; n];
        av[0] = T::ZERO;
        cv[n - 1] = T::ZERO;
        Self::new(av, vec![b; n], cv, vec![d; n])
    }

    /// Computes `A x` (used by residual checks and to manufacture systems
    /// with known solutions).
    pub fn matvec(&self, x: &[T]) -> Result<Vec<T>> {
        let n = self.n();
        if x.len() != n {
            return Err(TridiagError::DimensionMismatch { what: "x", expected: n, got: x.len() });
        }
        let mut y = vec![T::ZERO; n];
        for i in 0..n {
            let mut v = self.b[i] * x[i];
            if i > 0 {
                v += self.a[i] * x[i - 1];
            }
            if i + 1 < n {
                v += self.c[i] * x[i + 1];
            }
            y[i] = v;
        }
        Ok(y)
    }

    /// Replaces the right-hand side with `A x_exact`, so that `x_exact` is
    /// the exact solution of the returned system.
    pub fn with_exact_solution(mut self, x_exact: &[T]) -> Result<Self> {
        self.d = self.matvec(x_exact)?;
        Ok(self)
    }

    /// `true` if every row is strictly diagonally dominant
    /// (`|b_i| > |a_i| + |c_i|`), the stability condition the paper cites
    /// for pivoting-free CR [Lambiotte & Voigt].
    pub fn is_diagonally_dominant(&self) -> bool {
        (0..self.n()).all(|i| self.b[i].abs() > self.a[i].abs() + self.c[i].abs())
    }

    /// Dense `n x n` representation — only for small-`n` tests and debugging.
    pub fn to_dense(&self) -> Vec<Vec<T>> {
        let n = self.n();
        let mut m = vec![vec![T::ZERO; n]; n];
        for i in 0..n {
            m[i][i] = self.b[i];
            if i > 0 {
                m[i][i - 1] = self.a[i];
            }
            if i + 1 < n {
                m[i][i + 1] = self.c[i];
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> TridiagonalSystem<f64> {
        TridiagonalSystem::new(
            vec![0.0, 1.0, 1.0, 1.0],
            vec![4.0, 4.0, 4.0, 4.0],
            vec![1.0, 1.0, 1.0, 0.0],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn new_validates_lengths() {
        let err =
            TridiagonalSystem::new(vec![0.0f32], vec![1.0, 2.0], vec![0.0, 0.0], vec![1.0, 1.0]);
        assert!(matches!(err, Err(TridiagError::DimensionMismatch { what: "a", .. })));
    }

    #[test]
    fn new_validates_boundary_zeros() {
        let err = TridiagonalSystem::new(
            vec![1.0f32, 1.0],
            vec![4.0, 4.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        );
        assert!(err.is_err());
        let err = TridiagonalSystem::new(
            vec![0.0f32, 1.0],
            vec![4.0, 4.0],
            vec![1.0, 1.0],
            vec![1.0, 1.0],
        );
        assert!(err.is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(TridiagonalSystem::<f32>::new(vec![], vec![], vec![], vec![]).is_err());
    }

    #[test]
    fn matvec_matches_dense() {
        let s = sys();
        let x = vec![1.0, -2.0, 0.5, 3.0];
        let y = s.matvec(&x).unwrap();
        let dense = s.to_dense();
        for i in 0..4 {
            let expect: f64 = (0..4).map(|j| dense[i][j] * x[j]).sum();
            assert!((y[i] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn matvec_rejects_wrong_len() {
        assert!(sys().matvec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn with_exact_solution_round_trips() {
        let x = vec![2.0, -1.0, 0.0, 5.0];
        let s = sys().with_exact_solution(&x).unwrap();
        assert_eq!(s.d, s.matvec(&x).unwrap());
    }

    #[test]
    fn diagonal_dominance() {
        assert!(sys().is_diagonally_dominant());
        let weak =
            TridiagonalSystem::new(vec![0.0, 2.0], vec![2.0, 2.0], vec![2.0, 0.0], vec![1.0, 1.0])
                .unwrap();
        assert!(!weak.is_diagonally_dominant());
    }

    #[test]
    fn toeplitz_builds() {
        let s = TridiagonalSystem::<f32>::toeplitz(8, -1.0, 2.0, -1.0, 1.0).unwrap();
        assert_eq!(s.n(), 8);
        assert_eq!(s.a[0], 0.0);
        assert_eq!(s.c[7], 0.0);
        assert_eq!(s.a[3], -1.0);
    }
}
