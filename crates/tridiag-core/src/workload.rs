//! Workload generators for the paper's experiments.
//!
//! Two matrix families drive the accuracy study (§5.4):
//!
//! * **diagonally dominant** matrices "that arise from fluid simulation"
//!   (Kass & Miller) — we synthesize them as implicit-diffusion stencils
//!   with a guaranteed dominance margin;
//! * **random matrices with close values in all rows** — the family RD
//!   favors because the scan matrices have entries near 1.
//!
//! The performance figures use the diagonally dominant family.

use crate::batch::SystemBatch;
use crate::error::Result;
use crate::real::Real;
use crate::system::TridiagonalSystem;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The matrix families used in the paper's evaluation plus extras used by
/// tests and examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Strictly diagonally dominant rows (fluid-simulation-like, §5.4 set 1).
    DiagonallyDominant,
    /// Rows whose three coefficients are close to each other (§5.4 set 2);
    /// generally *not* diagonally dominant.
    CloseValues,
    /// The constant `[-1, 2, -1]` second-difference (Poisson) stencil —
    /// symmetric positive definite, the spectral-Poisson-solver use case.
    Poisson,
    /// Unstructured random coefficients (stress test; no stability promise).
    RandomGeneral,
}

impl Workload {
    /// All generator kinds, for exhaustive sweeps in tests/benches.
    pub const ALL: [Workload; 4] = [
        Workload::DiagonallyDominant,
        Workload::CloseValues,
        Workload::Poisson,
        Workload::RandomGeneral,
    ];

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Workload::DiagonallyDominant => "diagonally-dominant",
            Workload::CloseValues => "close-values",
            Workload::Poisson => "poisson",
            Workload::RandomGeneral => "random-general",
        }
    }
}

/// Deterministic generator of single systems and batches.
///
/// Seeded so experiments are reproducible run-to-run.
#[derive(Debug, Clone)]
pub struct Generator {
    rng: StdRng,
}

impl Generator {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }

    /// Generates one system of size `n` from the given family.
    pub fn system<T: Real>(&mut self, workload: Workload, n: usize) -> TridiagonalSystem<T> {
        match workload {
            Workload::DiagonallyDominant => self.diagonally_dominant(n),
            Workload::CloseValues => self.close_values(n),
            Workload::Poisson => poisson_system(n),
            Workload::RandomGeneral => self.random_general(n),
        }
    }

    /// Generates a batch of `count` systems of size `n`.
    pub fn batch<T: Real>(
        &mut self,
        workload: Workload,
        n: usize,
        count: usize,
    ) -> Result<SystemBatch<T>> {
        SystemBatch::generate(count, |_| self.system(workload, n))
    }

    /// Strictly diagonally dominant rows: off-diagonals uniform in
    /// `[-1, 1]`, diagonal `|a| + |c| + margin` with `margin` in `[0.5, 1.5]`,
    /// right-hand side uniform in `[-1, 1]`.
    fn diagonally_dominant<T: Real>(&mut self, n: usize) -> TridiagonalSystem<T> {
        let off = Uniform::new_inclusive(-1.0f64, 1.0);
        let margin = Uniform::new_inclusive(0.5f64, 1.5);
        let rhs = Uniform::new_inclusive(-1.0f64, 1.0);
        let mut a = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        let mut c = Vec::with_capacity(n);
        let mut d = Vec::with_capacity(n);
        for i in 0..n {
            let ai = if i == 0 { 0.0 } else { nonzero(&mut self.rng, off) };
            let ci = if i == n - 1 { 0.0 } else { nonzero(&mut self.rng, off) };
            let bi = ai.abs() + ci.abs() + margin.sample(&mut self.rng);
            a.push(T::from_f64(ai));
            b.push(T::from_f64(bi));
            c.push(T::from_f64(ci));
            d.push(T::from_f64(rhs.sample(&mut self.rng)));
        }
        TridiagonalSystem { a, b, c, d }
    }

    /// Rows with three near-equal coefficients: a common base value per row
    /// plus a small (1%) perturbation. Keeps the RD scan matrices' entries
    /// close to 1 (the paper's observation about why RD survives overflow on
    /// this family).
    fn close_values<T: Real>(&mut self, n: usize) -> TridiagonalSystem<T> {
        let base_dist = Uniform::new_inclusive(0.5f64, 2.0);
        let jitter = Uniform::new_inclusive(-0.01f64, 0.01);
        let rhs = Uniform::new_inclusive(-1.0f64, 1.0);
        let mut a = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        let mut c = Vec::with_capacity(n);
        let mut d = Vec::with_capacity(n);
        for i in 0..n {
            let base = base_dist.sample(&mut self.rng);
            let ai = if i == 0 { 0.0 } else { base * (1.0 + jitter.sample(&mut self.rng)) };
            let bi = base * (1.0 + jitter.sample(&mut self.rng));
            let ci = if i == n - 1 { 0.0 } else { base * (1.0 + jitter.sample(&mut self.rng)) };
            a.push(T::from_f64(ai));
            b.push(T::from_f64(bi));
            c.push(T::from_f64(ci));
            d.push(T::from_f64(rhs.sample(&mut self.rng)));
        }
        TridiagonalSystem { a, b, c, d }
    }

    /// Fully random coefficients in `[-2, 2]` with nonzero diagonal.
    fn random_general<T: Real>(&mut self, n: usize) -> TridiagonalSystem<T> {
        let any = Uniform::new_inclusive(-2.0f64, 2.0);
        let mut a = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        let mut c = Vec::with_capacity(n);
        let mut d = Vec::with_capacity(n);
        for i in 0..n {
            a.push(T::from_f64(if i == 0 { 0.0 } else { any.sample(&mut self.rng) }));
            b.push(T::from_f64(nonzero(&mut self.rng, any)));
            c.push(T::from_f64(if i == n - 1 { 0.0 } else { any.sample(&mut self.rng) }));
            d.push(T::from_f64(any.sample(&mut self.rng)));
        }
        TridiagonalSystem { a, b, c, d }
    }
}

/// Draws until the value is bounded away from zero (|v| >= 0.05), so
/// pivoting-free algorithms aren't handed degenerate coefficients by chance.
fn nonzero(rng: &mut StdRng, dist: Uniform<f64>) -> f64 {
    loop {
        let v = dist.sample(rng);
        if v.abs() >= 0.05 {
            return v;
        }
    }
}

/// The `[-1, 2, -1]` Poisson stencil with unit right-hand side.
pub fn poisson_system<T: Real>(n: usize) -> TridiagonalSystem<T> {
    let mut a = vec![T::from_f64(-1.0); n];
    let mut c = vec![T::from_f64(-1.0); n];
    a[0] = T::ZERO;
    c[n - 1] = T::ZERO;
    TridiagonalSystem { a, b: vec![T::from_f64(2.0); n], c, d: vec![T::ONE; n] }
}

/// Convenience: a seeded diagonally dominant batch, the workhorse input of
/// the performance figures (e.g. "512 512-unknown systems").
pub fn dominant_batch<T: Real>(seed: u64, n: usize, count: usize) -> SystemBatch<T> {
    Generator::new(seed)
        .batch(Workload::DiagonallyDominant, n, count)
        .expect("batch generation cannot fail for count >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_systems_are_dominant() {
        let mut g = Generator::new(42);
        for _ in 0..10 {
            let s: TridiagonalSystem<f64> = g.system(Workload::DiagonallyDominant, 64);
            assert!(s.is_diagonally_dominant());
            assert_eq!(s.a[0], 0.0);
            assert_eq!(s.c[63], 0.0);
        }
    }

    #[test]
    fn close_values_rows_are_close() {
        let mut g = Generator::new(7);
        let s: TridiagonalSystem<f64> = g.system(Workload::CloseValues, 32);
        for i in 1..31 {
            let ratio = s.a[i] / s.b[i];
            assert!((ratio - 1.0).abs() < 0.05, "row {i}: {ratio}");
        }
    }

    #[test]
    fn close_values_not_dominant() {
        let mut g = Generator::new(7);
        let s: TridiagonalSystem<f64> = g.system(Workload::CloseValues, 64);
        assert!(!s.is_diagonally_dominant());
    }

    #[test]
    fn generators_are_deterministic() {
        let s1: TridiagonalSystem<f32> = Generator::new(1).system(Workload::RandomGeneral, 16);
        let s2: TridiagonalSystem<f32> = Generator::new(1).system(Workload::RandomGeneral, 16);
        assert_eq!(s1, s2);
        let s3: TridiagonalSystem<f32> = Generator::new(2).system(Workload::RandomGeneral, 16);
        assert_ne!(s1, s3);
    }

    #[test]
    fn poisson_is_spd_stencil() {
        let s = poisson_system::<f64>(8);
        assert_eq!(s.b, vec![2.0; 8]);
        assert_eq!(s.a[1], -1.0);
        assert_eq!(s.a[0], 0.0);
        assert_eq!(s.c[7], 0.0);
    }

    #[test]
    fn batch_generation_works_for_all_workloads() {
        let mut g = Generator::new(3);
        for w in Workload::ALL {
            let b: SystemBatch<f32> = g.batch(w, 8, 4).unwrap();
            assert_eq!(b.n(), 8);
            assert_eq!(b.count(), 4);
        }
    }

    #[test]
    fn workload_names_unique() {
        let names: std::collections::HashSet<_> = Workload::ALL.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), Workload::ALL.len());
    }
}
