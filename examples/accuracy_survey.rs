//! Accuracy survey across solvers, matrix families, sizes and precisions —
//! a library-user's view of the paper's §5.4 stability guidance.
//!
//! ```text
//! cargo run --release --example accuracy_survey
//! ```

use cpu_solvers::{solve_batch_seq, Gep};
use gpu_sim::Launcher;
use gpu_solvers::{solve_batch, GpuAlgorithm, RdMode};
use tridiag_core::residual::batch_residual;
use tridiag_core::{Generator, Real, SystemBatch, Workload};

fn survey<T: Real>(launcher: &Launcher, n: usize, count: usize) {
    println!("--- {} | n = {n}, {count} systems ---", T::NAME);
    println!(
        "{:<18} {:>22} {:>22} {:>22}",
        "solver", "diagonally-dominant", "poisson", "close-values"
    );
    let batches: Vec<SystemBatch<T>> =
        [Workload::DiagonallyDominant, Workload::Poisson, Workload::CloseValues]
            .iter()
            .map(|w| Generator::new(7).batch(*w, n, count).expect("gen"))
            .collect();

    // GEP reference row first.
    let mut line = format!("{:<18}", "GEP (CPU)");
    for batch in &batches {
        let sol = solve_batch_seq(&Gep, batch).expect("gep");
        let r = batch_residual(batch, &sol).expect("residual");
        line += &format!(" {:>22.3e}", r.mean_l2);
    }
    println!("{line}");

    for alg in [
        GpuAlgorithm::Cr,
        GpuAlgorithm::Pcr,
        GpuAlgorithm::CrPcr { m: (n / 2).max(2) },
        GpuAlgorithm::Rd(RdMode::Plain),
        GpuAlgorithm::Rd(RdMode::Rescaled),
        GpuAlgorithm::CrRd { m: (n / 4).max(2), mode: RdMode::Plain },
    ] {
        let mut line = format!("{:<18}", alg.name());
        for batch in &batches {
            let report = solve_batch(launcher, alg, batch).expect("solve");
            let r = batch_residual(batch, &report.solutions).expect("residual");
            if r.has_overflow() {
                line += &format!(" {:>22}", format!("overflow ({})", r.overflowed_systems));
            } else {
                line += &format!(" {:>22.3e}", r.mean_l2);
            }
        }
        println!("{line}");
    }
    println!();
}

fn main() {
    let launcher = Launcher::gtx280();
    println!("Residuals ||Ax - d||_2 (mean over batch); 'overflow (k)' = k systems non-finite\n");
    survey::<f32>(&launcher, 64, 32);
    survey::<f32>(&launcher, 512, 32);
    // f64 fits in shared memory only up to n = 256 on the GT200.
    survey::<f64>(&launcher, 256, 32);
    println!(
        "guidance (paper §5.4): use CR/PCR/CR+PCR for diagonally dominant or SPD systems;\n\
         avoid RD-family solvers there (overflow); no GPU solver pivots, so for general\n\
         matrices fall back to GEP on the CPU."
    );
}
