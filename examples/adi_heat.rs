//! Alternating-direction-implicit (ADI) heat diffusion — the paper's
//! flagship application class ("The applications of tridiagonal solvers
//! include alternating direction implicit (ADI) methods...").
//!
//! Solves `u_t = alpha (u_xx + u_yy)` on the unit square with homogeneous
//! Dirichlet boundaries using the Peaceman-Rachford scheme: each half-step
//! is implicit in one direction, turning into a **batch of independent
//! tridiagonal systems** (one per row, then one per column) — exactly the
//! many-small-systems workload the GPU solvers target.
//!
//! The initial condition `sin(pi x) sin(pi y)` is an eigenfunction of the
//! discrete operators, so the per-step amplification factor is known in
//! closed form; the simulation is validated against it.
//!
//! ```text
//! cargo run --release --example adi_heat
//! ```

use gpu_sim::Launcher;
use gpu_solvers::{solve_batch, GpuAlgorithm};
use tridiag_core::{SystemBatch, TridiagonalSystem};

/// Interior grid points per direction (power of two for the GPU kernels).
const N: usize = 128;
/// Diffusivity.
const ALPHA: f64 = 1.0;
/// Time step.
const DT: f64 = 1e-5;
/// Number of full ADI steps.
const STEPS: usize = 20;

/// Interior-point grid; `u[r][c]` at (x, y) = ((c+1)h, (r+1)h).
type Grid = Vec<Vec<f32>>;

fn h() -> f64 {
    1.0 / (N as f64 + 1.0)
}

/// One implicit sweep along the rows of `u` (or columns if `transpose`):
/// solves `(1 + r) v_i - r/2 (v_{i-1} + v_{i+1}) = rhs_i` per line on the
/// simulated GPU, where `rhs` applies the explicit half of the operator in
/// the other direction.
fn half_step(launcher: &Launcher, u: &Grid, transpose: bool) -> Grid {
    let r = ALPHA * DT / (h() * h());
    let (rh, diag, off) = (r as f32 / 2.0, 1.0 + r as f32, -(r as f32) / 2.0);

    let at = |row: usize, col: usize| -> f32 {
        if transpose {
            u[col][row]
        } else {
            u[row][col]
        }
    };

    // Build one tridiagonal system per line; the RHS takes the explicit
    // operator in the orthogonal direction (zero Dirichlet boundaries).
    let systems: Vec<TridiagonalSystem<f32>> = (0..N)
        .map(|line| {
            let mut a = vec![off; N];
            let mut c = vec![off; N];
            a[0] = 0.0;
            c[N - 1] = 0.0;
            let b = vec![diag; N];
            let d = (0..N)
                .map(|i| {
                    let center = at(line, i);
                    let up = if line > 0 { at(line - 1, i) } else { 0.0 };
                    let down = if line + 1 < N { at(line + 1, i) } else { 0.0 };
                    (1.0 - 2.0 * rh) * center + rh * (up + down)
                })
                .collect();
            TridiagonalSystem { a, b, c, d }
        })
        .collect();

    let batch = SystemBatch::from_systems(&systems).expect("batch");
    let report =
        solve_batch(launcher, GpuAlgorithm::CrPcr { m: N / 2 }, &batch).expect("ADI sweep");

    // Scatter back (transposed result if this was a column sweep).
    let mut out = vec![vec![0.0f32; N]; N];
    for line in 0..N {
        let x = report.solutions.system(line);
        for i in 0..N {
            if transpose {
                out[i][line] = x[i];
            } else {
                out[line][i] = x[i];
            }
        }
    }
    out
}

/// Closed-form per-full-step amplification of the `sin(pi x) sin(pi y)`
/// mode under Peaceman-Rachford with the discrete Laplacian.
fn expected_amplification() -> f64 {
    let r = ALPHA * DT / (h() * h());
    let lambda = 4.0 * (std::f64::consts::PI * h() / 2.0).sin().powi(2); // h^2-scaled
    let g = (1.0 - r / 2.0 * lambda) / (1.0 + r / 2.0 * lambda);
    g * g // two half-steps
}

fn main() {
    let launcher = Launcher::gtx280();
    let pi = std::f64::consts::PI;

    // Eigenmode initial condition.
    let mut u: Grid = (0..N)
        .map(|row| {
            (0..N)
                .map(|col| {
                    let x = (col as f64 + 1.0) * h();
                    let y = (row as f64 + 1.0) * h();
                    ((pi * x).sin() * (pi * y).sin()) as f32
                })
                .collect()
        })
        .collect();

    let g = expected_amplification();
    println!("ADI heat diffusion on a {N}x{N} interior grid (dt = {DT}, alpha = {ALPHA})");
    println!("expected per-step eigenmode amplification: {g:.6}\n");
    println!("{:>5} {:>12} {:>12} {:>10}", "step", "amplitude", "predicted", "rel err");

    let amp0 = u[N / 2][N / 2] as f64;
    let mut predicted = amp0;
    let mut worst_rel_err = 0.0f64;
    for step in 1..=STEPS {
        let star = half_step(&launcher, &u, false); // implicit in x
        u = half_step(&launcher, &star, true); // implicit in y
        predicted *= g;
        let amp = u[N / 2][N / 2] as f64;
        let rel = ((amp - predicted) / predicted).abs();
        worst_rel_err = worst_rel_err.max(rel);
        if step % 5 == 0 || step == 1 {
            println!("{step:>5} {amp:>12.6} {predicted:>12.6} {rel:>10.2e}");
        }
    }

    assert!(
        worst_rel_err < 1e-3,
        "ADI drifted from the analytic eigen-decay: rel err {worst_rel_err:.2e}"
    );
    println!("\nOK: GPU-batched ADI matches the analytic eigenmode decay (worst rel err {worst_rel_err:.2e})");
}
