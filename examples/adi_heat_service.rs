//! ADI heat diffusion as a **service client** — the same Peaceman-Rachford
//! scheme as `adi_heat.rs`, but every sweep goes through
//! [`SolverService::solve_many_rhs`]: one call per sweep carrying the
//! sweep's shared tridiagonal matrix and `N` right-hand sides.
//!
//! This is the shape a real application has when the solver sits behind a
//! serving layer — and ADI is the warm tier's home turf: every line of
//! every sweep solves against the *same* Toeplitz matrix, only the RHS
//! changes. With the factorization cache enabled the first sweep factors
//! the matrix once (a factor miss), and every subsequent flush skips
//! elimination entirely — `O(5n)` back-substitution against the cached
//! coefficients instead of the cold `O(8n)` solve. The final metrics
//! snapshot shows the hit/miss ledger alongside the batching occupancy.
//!
//! The run is validated exactly like the direct example: the
//! `sin(pi x) sin(pi y)` initial condition is an eigenmode, so the
//! amplitude must track the closed-form Peaceman-Rachford amplification
//! factor.
//!
//! ```text
//! cargo run --release --example adi_heat_service
//! ```

use factor_cache::SharedFactorCache;
use solver_service::{ServiceConfig, SolverService};
use std::sync::Arc;
use std::time::Duration;

/// Interior grid points per direction (power of two for the GPU kernels).
const N: usize = 64;
/// Diffusivity.
const ALPHA: f64 = 1.0;
/// Time step.
const DT: f64 = 1e-5;
/// Number of full ADI steps.
const STEPS: usize = 10;

/// Interior-point grid; `u[r][c]` at (x, y) = ((c+1)h, (r+1)h).
type Grid = Vec<Vec<f32>>;

fn h() -> f64 {
    1.0 / (N as f64 + 1.0)
}

/// One implicit sweep along the rows of `u` (or columns if `transpose`),
/// served as a single [`SolverService::solve_many_rhs`] call: the sweep's
/// shared matrix once, one RHS per line. The service hashes the matrix,
/// coalesces the same-matrix requests into shared flushes, and — after
/// the first sweep — serves them from the factorization cache.
fn half_step(service: &SolverService<f32>, u: &Grid, transpose: bool) -> Grid {
    let r = ALPHA * DT / (h() * h());
    let (rh, diag, off) = (r as f32 / 2.0, 1.0 + r as f32, -(r as f32) / 2.0);

    let at = |row: usize, col: usize| -> f32 {
        if transpose {
            u[col][row]
        } else {
            u[row][col]
        }
    };

    // The sweep's shared matrix — identical for every line (and every
    // sweep: the grid is square, so x- and y-sweeps unify too).
    let mut a = vec![off; N];
    let mut c = vec![off; N];
    a[0] = 0.0;
    c[N - 1] = 0.0;
    let b = vec![diag; N];

    // One RHS per line — no per-line system assembly, no tickets.
    let rhs_list: Vec<Vec<f32>> = (0..N)
        .map(|line| {
            (0..N)
                .map(|i| {
                    let center = at(line, i);
                    let up = if line > 0 { at(line - 1, i) } else { 0.0 };
                    let down = if line + 1 < N { at(line + 1, i) } else { 0.0 };
                    (1.0 - 2.0 * rh) * center + rh * (up + down)
                })
                .collect()
        })
        .collect();

    let responses = service.solve_many_rhs(&a, &b, &c, &rhs_list).expect("sweep admitted");

    // Scatter the responses back (transposed if this was a column sweep).
    let mut out = vec![vec![0.0f32; N]; N];
    for (line, response) in responses.into_iter().enumerate() {
        assert!(response.residual.is_finite(), "unverified response escaped the service");
        for (i, &v) in response.x.iter().enumerate() {
            if transpose {
                out[i][line] = v;
            } else {
                out[line][i] = v;
            }
        }
    }
    out
}

/// Closed-form per-full-step amplification of the `sin(pi x) sin(pi y)`
/// mode under Peaceman-Rachford with the discrete Laplacian.
fn expected_amplification() -> f64 {
    let r = ALPHA * DT / (h() * h());
    let lambda = 4.0 * (std::f64::consts::PI * h() / 2.0).sin().powi(2); // h^2-scaled
    let g = (1.0 - r / 2.0 * lambda) / (1.0 + r / 2.0 * lambda);
    g * g // two half-steps
}

fn main() {
    // Target batch = one full sweep; the linger deadline only matters for
    // the last partial bucket, so keep it tight.
    let service: SolverService<f32> = SolverService::start(ServiceConfig {
        target_batch: N,
        max_linger: Duration::from_millis(1),
        queue_capacity: 2 * N,
        // The warm tier: one factorization serves all 2·STEPS sweeps.
        factor_cache: Some(Arc::new(SharedFactorCache::new(4))),
        ..ServiceConfig::default()
    });
    let pi = std::f64::consts::PI;

    // Eigenmode initial condition.
    let mut u: Grid = (0..N)
        .map(|row| {
            (0..N)
                .map(|col| {
                    let x = (col as f64 + 1.0) * h();
                    let y = (row as f64 + 1.0) * h();
                    ((pi * x).sin() * (pi * y).sin()) as f32
                })
                .collect()
        })
        .collect();

    let g = expected_amplification();
    println!("ADI heat diffusion via the solver service ({N}x{N} grid, dt = {DT})");
    println!("expected per-step eigenmode amplification: {g:.6}\n");
    println!("{:>5} {:>12} {:>12} {:>10}", "step", "amplitude", "predicted", "rel err");

    let amp0 = u[N / 2][N / 2] as f64;
    let mut predicted = amp0;
    let mut worst_rel_err = 0.0f64;
    for step in 1..=STEPS {
        let star = half_step(&service, &u, false); // implicit in x
        u = half_step(&service, &star, true); // implicit in y
        predicted *= g;
        let amp = u[N / 2][N / 2] as f64;
        let rel = ((amp - predicted) / predicted).abs();
        worst_rel_err = worst_rel_err.max(rel);
        if step % 5 == 0 || step == 1 {
            println!("{step:>5} {amp:>12.6} {predicted:>12.6} {rel:>10.2e}");
        }
    }

    assert!(
        worst_rel_err < 1e-3,
        "ADI drifted from the analytic eigen-decay: rel err {worst_rel_err:.2e}"
    );

    let snap = service.shutdown();
    let expected = (2 * STEPS * N) as u64; // two sweeps of N lines per step
    assert_eq!(snap.completed, expected, "lost sweep lines");
    let occupancy = snap.completed as f64 / snap.flushes_total().max(1) as f64;
    println!("\nOK: service-batched ADI matches the analytic eigenmode decay");
    println!("    worst rel err      {worst_rel_err:.2e}");
    println!(
        "    systems served     {} ({} flushes, mean occupancy {occupancy:.1})",
        snap.completed,
        snap.flushes_total()
    );
    println!("    plan cache         {} tune(s), {} hit(s)", snap.plan_tunes, snap.plan_hits);
    println!(
        "    factor cache       {} miss(es), {} hit(s), {} warm flush(es)",
        snap.factor_misses, snap.factor_hits, snap.warm_flushes
    );
    println!("    engines            {:?}", snap.dispatch_systems);
    println!("    repairs            {}", snap.repaired);
    assert!(snap.factor_misses >= 1, "the first sweep must factor the matrix");
    assert!(
        snap.factor_hits > snap.factor_misses,
        "repeat sweeps must be warm: {} hits / {} misses",
        snap.factor_hits,
        snap.factor_misses
    );
}
