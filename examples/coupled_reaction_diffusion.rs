//! Coupled two-species reaction-diffusion, implicit time stepping —
//! a realistic use of the **block-tridiagonal** solver (the paper's
//! future-work generalization).
//!
//! Two fields `(u, v)` on a 1-D line diffuse and react linearly:
//!
//! ```text
//! u_t = Du u_xx + r11 u + r12 v
//! v_t = Dv v_xx + r21 u + r22 v
//! ```
//!
//! Backward-Euler couples the two unknowns at each grid point, producing a
//! block-tridiagonal system with 2x2 blocks per step, solved by block CR
//! on the simulated GPU. Validation: on a Fourier eigenmode the 2x2
//! update matrix is known exactly, so the two amplitudes can be tracked in
//! closed form.
//!
//! ```text
//! cargo run --release --example coupled_reaction_diffusion
//! ```

use gpu_sim::Launcher;
use gpu_solvers::solve_block_batch;
use tridiag_core::block::{zero, Block2, BlockTridiagonalSystem, Vec2};

/// Grid points (power of two; fits the block kernel's shared-memory cap).
const N: usize = 128;
const DU: f64 = 1.0e-3;
const DV: f64 = 0.5e-3;
/// Linear reaction matrix (damped rotation: species convert into each
/// other while decaying).
const R: [[f64; 2]; 2] = [[-0.4, 0.8], [-0.8, -0.4]];
const DT: f64 = 0.01;
const STEPS: usize = 10;

fn h() -> f64 {
    1.0 / (N as f64 + 1.0)
}

/// Builds the backward-Euler block system `(I - dt L) w^{n+1} = w^n`.
fn implicit_system(w: &[Vec2<f32>]) -> BlockTridiagonalSystem<f32> {
    let h2 = h() * h();
    let diag = |du: f64, r: f64| 1.0 + DT * (2.0 * du / h2) - DT * r;
    let b_block: Block2<f32> = [
        [diag(DU, R[0][0]) as f32, (-DT * R[0][1]) as f32],
        [(-DT * R[1][0]) as f32, diag(DV, R[1][1]) as f32],
    ];
    let off = |d: f64| (-DT * d / h2) as f32;
    let off_block: Block2<f32> = [[off(DU), 0.0], [0.0, off(DV)]];

    let mut a = vec![off_block; N];
    let mut c = vec![off_block; N];
    a[0] = zero();
    c[N - 1] = zero();
    BlockTridiagonalSystem { a, b: vec![b_block; N], c, d: w.to_vec() }
}

fn main() {
    let launcher = Launcher::gtx280();
    let pi = std::f64::consts::PI;

    // Eigenmode IC: both species proportional to sin(pi x).
    let mut w: Vec<Vec2<f32>> = (0..N)
        .map(|i| {
            let x = (i as f64 + 1.0) * h();
            let s = (pi * x).sin();
            [s as f32, (0.5 * s) as f32]
        })
        .collect();

    // Closed-form per-step update of the mode amplitudes: on the sin(pi x)
    // eigenvector the discrete Laplacian acts as -lambda with
    // lambda = 4 sin^2(pi h / 2) / h^2, so
    // amp^{n+1} = M^{-1} amp^n with M = I + dt (lambda D - R).
    let lambda = 4.0 * (pi * h() / 2.0).sin().powi(2) / (h() * h());
    let m = [
        [1.0 + DT * (lambda * DU - R[0][0]), -DT * R[0][1]],
        [-DT * R[1][0], 1.0 + DT * (lambda * DV - R[1][1])],
    ];
    let det = m[0][0] * m[1][1] - m[0][1] * m[1][0];
    let minv = [[m[1][1] / det, -m[0][1] / det], [-m[1][0] / det, m[0][0] / det]];

    let probe = N / 2;
    let scale = (pi * (probe as f64 + 1.0) * h()).sin();
    let mut predicted = [w[probe][0] as f64 / scale, w[probe][1] as f64 / scale];

    println!("coupled reaction-diffusion, {N} points, 2x2 blocks, block-CR on the simulated GPU");
    let mut worst = 0.0f64;
    for step in 1..=STEPS {
        let sys = implicit_system(&w);
        let report = solve_block_batch(&launcher, &[sys]).expect("block solve");
        w = report.solutions[0].clone();
        predicted = [
            minv[0][0] * predicted[0] + minv[0][1] * predicted[1],
            minv[1][0] * predicted[0] + minv[1][1] * predicted[1],
        ];
        for comp in 0..2 {
            let got = w[probe][comp] as f64 / scale;
            let rel = ((got - predicted[comp]) / predicted[comp].abs().max(1e-9)).abs();
            worst = worst.max(rel);
        }
        if step % 2 == 0 {
            println!(
                "step {step:>3}: u,v at midpoint = {:+.5}, {:+.5} (predicted {:+.5}, {:+.5})",
                w[probe][0],
                w[probe][1],
                predicted[0] * scale,
                predicted[1] * scale
            );
        }
    }
    assert!(worst < 1e-3, "block ADI drifted from the closed form: {worst:.2e}");
    println!("OK: block-CR time stepping matches the closed-form 2x2 mode update (worst rel err {worst:.2e})");
}
