//! Batched natural cubic-spline fitting — "cubic spline approximations" is
//! one of the applications the paper's introduction motivates.
//!
//! Fitting a natural cubic spline through `n+2` knots requires solving a
//! tridiagonal system for the `n` interior second derivatives (the classic
//! `[h/6, 2(h+h)/3, h/6]` system). Fitting many curves at once — here a
//! family of phase-shifted test functions — is a batch of small tridiagonal
//! systems, solved on the simulated GPU in one launch.
//!
//! ```text
//! cargo run --release --example cubic_spline
//! ```

use gpu_sim::Launcher;
use gpu_solvers::{solve_batch, GpuAlgorithm};
use tridiag_core::{SystemBatch, TridiagonalSystem};

/// Interior knots per spline (power of two for the GPU kernels).
const N: usize = 256;
/// Number of splines fitted in one batch.
const CURVES: usize = 64;

/// The family of functions to fit: smooth, phase-shifted.
fn f(curve: usize, x: f64) -> f64 {
    let phase = curve as f64 * 0.1;
    (2.0 * std::f64::consts::PI * x + phase).sin() + 0.3 * (5.0 * x + phase).cos()
}

fn main() {
    let launcher = Launcher::gtx280();
    // Knots 0..N+1 uniformly on [0, 1]; unknowns are the second
    // derivatives M_1..M_N at interior knots (M_0 = M_{N+1} = 0, natural).
    let h = 1.0 / (N as f64 + 1.0);
    let knot = |i: usize| i as f64 * h;

    let systems: Vec<TridiagonalSystem<f32>> = (0..CURVES)
        .map(|curve| {
            let mut a = vec![(h / 6.0) as f32; N];
            let mut c = vec![(h / 6.0) as f32; N];
            a[0] = 0.0;
            c[N - 1] = 0.0;
            let b = vec![(2.0 * h / 3.0) as f32; N];
            let d = (1..=N)
                .map(|i| {
                    let divided = (f(curve, knot(i + 1)) - f(curve, knot(i))) / h
                        - (f(curve, knot(i)) - f(curve, knot(i - 1))) / h;
                    divided as f32
                })
                .collect();
            TridiagonalSystem { a, b, c, d }
        })
        .collect();
    let batch = SystemBatch::from_systems(&systems).expect("batch");

    let report = solve_batch(&launcher, GpuAlgorithm::CrPcr { m: N / 2 }, &batch).expect("solve");
    println!(
        "fitted {CURVES} natural cubic splines ({N} interior knots each) in {:.3} ms simulated GPU time",
        report.timing.kernel_ms
    );

    // Validate: evaluate each spline at off-knot points and compare to the
    // original function; a cubic spline of a smooth function on this grid
    // should be accurate to O(h^4) ~ 1e-9, limited here by f32 solves.
    let mut worst = 0.0f64;
    for curve in 0..CURVES {
        let m = report.solutions.system(curve);
        let m_at = |i: usize| -> f64 {
            // i indexes knots 0..=N+1; M_0 = M_{N+1} = 0.
            if i == 0 || i == N + 1 {
                0.0
            } else {
                m[i - 1] as f64
            }
        };
        for sample in 0..200 {
            let x = (sample as f64 + 0.5) / 200.0;
            let seg = ((x / h) as usize).min(N); // between knot seg and seg+1
            let (x0, x1) = (knot(seg), knot(seg + 1));
            let (t0, t1) = (x1 - x, x - x0);
            let (y0, y1) = (f(curve, x0), f(curve, x1));
            let spline = m_at(seg) * t0.powi(3) / (6.0 * h)
                + m_at(seg + 1) * t1.powi(3) / (6.0 * h)
                + (y0 / h - m_at(seg) * h / 6.0) * t0
                + (y1 / h - m_at(seg + 1) * h / 6.0) * t1;
            worst = worst.max((spline - f(curve, x)).abs());
        }
    }
    println!("worst interpolation error over {} samples: {worst:.3e}", CURVES * 200);
    assert!(worst < 5e-5, "spline interpolation error too large: {worst:.3e}");
    println!("OK: splines reproduce the source functions to f32 accuracy");
}
