//! Tour of the performance tooling: per-phase breakdowns, the automatic
//! advisor (the paper's future-work analysis tool), and Chrome-trace
//! export of a kernel's superstep timeline.
//!
//! ```text
//! cargo run --release --example performance_tour
//! # then open target/trace_cr.json in chrome://tracing or Perfetto
//! ```

use gpu_sim::{analyze, trace, Launcher};
use gpu_solvers::{solve_batch, GpuAlgorithm, RdMode};
use tridiag_core::dominant_batch;

fn main() {
    let launcher = Launcher::gtx280();
    let batch = dominant_batch::<f32>(7, 512, 512);

    for alg in [
        GpuAlgorithm::Cr,
        GpuAlgorithm::Pcr,
        GpuAlgorithm::Rd(RdMode::Plain),
        GpuAlgorithm::CrPcr { m: 256 },
    ] {
        let report = solve_batch(&launcher, alg, &batch).expect("solve");
        println!("=== {} — {:.3} ms simulated", alg.name(), report.timing.kernel_ms);
        println!(
            "    global {:.3} ms | shared {:.3} ms ({:.0} GB/s) | compute {:.3} ms ({:.0} GFLOPS)",
            report.timing.global_ms,
            report.timing.shared_ms,
            report.timing.achieved_shared_gbps,
            report.timing.compute_ms,
            report.timing.gflops,
        );
        let advice = analyze(&launcher.device, &launcher.cost, &report.stats, &report.timing)
            .expect("analyze");
        match advice.top() {
            Some(f) => println!(
                "    advisor: #1 {} — save ~{:.3} ms ({:.0}%)\n             -> {}",
                f.category.label(),
                f.estimated_saving_ms,
                100.0 * f.saving_fraction,
                f.suggestion
            ),
            None => println!("    advisor: balanced kernel, no dominant factor"),
        }
        println!();
    }

    // Export CR's timeline for chrome://tracing.
    let report = solve_batch(&launcher, GpuAlgorithm::Cr, &batch).expect("solve");
    let json = trace::to_chrome_trace(&report.timing, "CR");
    let path = "target/trace_cr.json";
    std::fs::create_dir_all("target").ok();
    std::fs::write(path, &json).expect("write trace");
    println!("wrote {} ({} bytes) — open it in chrome://tracing", path, json.len());
    assert!(json.contains("CR: forward reduction"));
}
