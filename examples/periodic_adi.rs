//! ADI heat diffusion on a cylinder: periodic in x, Dirichlet walls in y.
//!
//! Periodic boundaries turn each x-line solve into a **cyclic** tridiagonal
//! system — solved on the simulated GPU via the Sherman–Morrison doubled
//! batch (`gpu_solvers::solve_periodic_batch`), while the y-line solves
//! remain ordinary batches. Validation: the initial condition
//! `cos(2 pi k x) sin(pi y)` is an exact eigenmode of both discrete
//! operators, so the per-step amplification is known in closed form.
//!
//! ```text
//! cargo run --release --example periodic_adi
//! ```

use gpu_sim::Launcher;
use gpu_solvers::{solve_batch, solve_periodic_batch, GpuAlgorithm};
use tridiag_core::{PeriodicTridiagonalSystem, SystemBatch, TridiagonalSystem};

/// Periodic points in x (power of two).
const NX: usize = 64;
/// Interior points in y (power of two).
const NY: usize = 64;
/// Wavenumber of the x-mode.
const K: usize = 3;
const ALPHA: f64 = 1.0;
const DT: f64 = 2e-5;
const STEPS: usize = 12;

fn hx() -> f64 {
    1.0 / NX as f64 // periodic: N points cover [0, 1)
}
fn hy() -> f64 {
    1.0 / (NY as f64 + 1.0)
}

/// Implicit sweep along x (periodic lines), explicit in y.
fn sweep_x(launcher: &Launcher, u: &[Vec<f32>]) -> Vec<Vec<f32>> {
    let rx = (ALPHA * DT / (hx() * hx())) as f32;
    let ry = (ALPHA * DT / (hy() * hy())) as f32;
    let systems: Vec<PeriodicTridiagonalSystem<f32>> = (0..NY)
        .map(|row| {
            let a = vec![-rx / 2.0; NX];
            let b = vec![1.0 + rx; NX];
            let c = vec![-rx / 2.0; NX];
            let d = (0..NX)
                .map(|j| {
                    let up = if row > 0 { u[row - 1][j] } else { 0.0 };
                    let down = if row + 1 < NY { u[row + 1][j] } else { 0.0 };
                    (1.0 - ry) * u[row][j] + ry / 2.0 * (up + down)
                })
                .collect();
            PeriodicTridiagonalSystem::new(a, b, c, d).expect("periodic line")
        })
        .collect();
    let report = solve_periodic_batch(launcher, GpuAlgorithm::CrPcr { m: NX / 2 }, &systems)
        .expect("x sweep");
    (0..NY).map(|row| report.solutions.system(row).to_vec()).collect()
}

/// Implicit sweep along y (ordinary Dirichlet lines), explicit in x
/// (periodic neighbours).
fn sweep_y(launcher: &Launcher, u: &[Vec<f32>]) -> Vec<Vec<f32>> {
    let rx = (ALPHA * DT / (hx() * hx())) as f32;
    let ry = (ALPHA * DT / (hy() * hy())) as f32;
    let systems: Vec<TridiagonalSystem<f32>> = (0..NX)
        .map(|col| {
            let mut a = vec![-ry / 2.0; NY];
            let mut c = vec![-ry / 2.0; NY];
            a[0] = 0.0;
            c[NY - 1] = 0.0;
            let b = vec![1.0 + ry; NY];
            let d = (0..NY)
                .map(|row| {
                    let left = u[row][(col + NX - 1) % NX];
                    let right = u[row][(col + 1) % NX];
                    (1.0 - rx) * u[row][col] + rx / 2.0 * (left + right)
                })
                .collect();
            TridiagonalSystem { a, b, c, d }
        })
        .collect();
    let batch = SystemBatch::from_systems(&systems).expect("batch");
    let report = solve_batch(launcher, GpuAlgorithm::CrPcr { m: NY / 2 }, &batch).expect("y sweep");
    let mut out = vec![vec![0.0f32; NX]; NY];
    for col in 0..NX {
        let x = report.solutions.system(col);
        for row in 0..NY {
            out[row][col] = x[row];
        }
    }
    out
}

fn main() {
    let launcher = Launcher::gtx280();
    let pi = std::f64::consts::PI;

    // Eigenmode IC: cos(2 pi K x) sin(pi y).
    let mut u: Vec<Vec<f32>> = (0..NY)
        .map(|row| {
            let y = (row as f64 + 1.0) * hy();
            (0..NX)
                .map(|col| {
                    let x = col as f64 * hx();
                    ((2.0 * pi * K as f64 * x).cos() * (pi * y).sin()) as f32
                })
                .collect()
        })
        .collect();

    // Closed-form per-full-step amplification (Peaceman-Rachford).
    let rx = ALPHA * DT / (hx() * hx());
    let ry = ALPHA * DT / (hy() * hy());
    let lx = 4.0 * (pi * K as f64 / NX as f64).sin().powi(2); // hx^2-scaled
    let ly = 4.0 * (pi * hy() / 2.0).sin().powi(2); // hy^2-scaled
    let g = ((1.0 - rx * lx / 2.0) / (1.0 + rx * lx / 2.0))
        * ((1.0 - ry * ly / 2.0) / (1.0 + ry * ly / 2.0));

    println!("periodic-x ADI on {NX}x{NY}; mode k={K}; predicted amplification {g:.6}/step");
    let probe = (NY / 2, 0usize);
    let mut predicted = u[probe.0][probe.1] as f64;
    let mut worst = 0.0f64;
    for step in 1..=STEPS {
        let star = sweep_x(&launcher, &u);
        u = sweep_y(&launcher, &star);
        predicted *= g;
        let amp = u[probe.0][probe.1] as f64;
        let rel = ((amp - predicted) / predicted).abs();
        worst = worst.max(rel);
        if step % 4 == 0 {
            println!(
                "step {step:>3}: amplitude {amp:.6}, predicted {predicted:.6}, rel err {rel:.2e}"
            );
        }
    }
    assert!(worst < 5e-3, "periodic ADI drifted: {worst:.2e}");
    println!("OK: periodic ADI follows the analytic eigen-decay (worst rel err {worst:.2e})");
}
