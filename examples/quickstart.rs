//! Quickstart: solve a batch of tridiagonal systems with every solver and
//! compare simulated GPU timings and accuracy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpu_sim::Launcher;
use gpu_solvers::{solve_batch, GpuAlgorithm, RdMode};
use tridiag_core::residual::batch_residual;
use tridiag_core::{dominant_batch, SystemBatch};

fn main() {
    // 512 diagonally dominant systems of 512 unknowns — the paper's
    // headline problem size.
    let batch: SystemBatch<f32> = dominant_batch(42, 512, 512);
    let launcher = Launcher::gtx280();

    println!(
        "solving {} systems of {} unknowns on {}\n",
        batch.count(),
        batch.n(),
        launcher.device.name
    );
    println!(
        "{:<28} {:>10} {:>12} {:>14} {:>12}",
        "solver", "kernel ms", "w/ transfer", "mean residual", "steps"
    );

    for alg in [
        GpuAlgorithm::Cr,
        GpuAlgorithm::Pcr,
        GpuAlgorithm::Rd(RdMode::Plain),
        GpuAlgorithm::CrPcr { m: 256 },
        GpuAlgorithm::CrRd { m: 128, mode: RdMode::Plain },
        GpuAlgorithm::CrEvenOdd,
        GpuAlgorithm::CrGlobalOnly,
    ] {
        let report = solve_batch(&launcher, alg, &batch).expect("solve");
        let res = batch_residual(&batch, &report.solutions).expect("residual");
        let accuracy = if res.has_overflow() {
            "overflow".to_string()
        } else {
            format!("{:.2e}", res.mean_l2)
        };
        println!(
            "{:<28} {:>10.3} {:>12.3} {:>14} {:>12}",
            alg.name(),
            report.timing.kernel_ms,
            report.timing.total_ms(),
            accuracy,
            report.stats.num_steps(),
        );
    }

    println!(
        "\nhint: run `cargo run --release -p bench --bin repro` for the full\n\
         reproduction of the paper's tables and figures"
    );
}
