//! Spectral-style Poisson solves — "spectral Poisson solvers" (Hockney's
//! original cyclic-reduction application) from the paper's introduction —
//! served through [`SolverService::solve_many_rhs`].
//!
//! Solves a batch of 1-D Poisson problems `-u'' = g` with homogeneous
//! Dirichlet boundaries, discretized with the `[-1, 2, -1]` stencil
//! (right-hand sides scaled by `h^2`). Each right-hand side is a single
//! Fourier mode, for which the discrete solution is known in closed form
//! — a sharp end-to-end correctness check of the whole serving pipeline.
//!
//! This is the multi-RHS tier's canonical workload: **one** Poisson
//! matrix, many spectral right-hand sides. The service hashes the matrix
//! once, the first flush factors it (a factor miss), and every later
//! flush is back-substitution against the cached coefficients. Note the
//! width/size combination: f64 at n = 512 exceeds the GT200's shared
//! memory, so the *cold* flush must take a global-memory algorithm — but
//! the warm kernel uses no shared memory at all, so the cached flushes
//! dodge that limit entirely.
//!
//! ```text
//! cargo run --release --example spectral_poisson
//! ```

use factor_cache::SharedFactorCache;
use solver_service::{ServiceConfig, SolverService};
use std::sync::Arc;
use std::time::Duration;

/// Interior points (power of two for the GPU kernels).
const N: usize = 512;
/// Number of Fourier modes solved at once (one RHS per mode).
const MODES: usize = 64;
/// Flush size: < MODES so the run shows warm flushes within one call.
const BATCH: usize = 16;

fn main() {
    let h = 1.0 / (N as f64 + 1.0);
    let pi = std::f64::consts::PI;

    let service: SolverService<f64> = SolverService::start(ServiceConfig {
        target_batch: BATCH,
        max_linger: Duration::from_millis(1),
        queue_capacity: 2 * MODES,
        // The warm tier: flush 1 factors the Poisson matrix, flushes
        // 2..4 are served by back-substitution alone.
        factor_cache: Some(Arc::new(SharedFactorCache::new(4))),
        ..ServiceConfig::default()
    });

    // The one shared matrix: `[-1, 2, -1]` with zeroed Dirichlet corners.
    let mut a = vec![-1.0f64; N];
    let mut c = vec![-1.0f64; N];
    a[0] = 0.0;
    c[N - 1] = 0.0;
    let b = vec![2.0f64; N];

    // Mode k: -u'' = sin((k+1) pi x), discrete eigen-solution
    // u_j = sin((k+1) pi x_j) / lambda_k with
    // lambda_k = (4 / h^2) sin^2((k+1) pi h / 2). With the unscaled
    // stencil the right-hand side carries the h^2.
    let rhs_list: Vec<Vec<f64>> = (0..MODES)
        .map(|k| (1..=N).map(|j| h * h * ((k + 1) as f64 * pi * (j as f64 * h)).sin()).collect())
        .collect();

    let responses = service.solve_many_rhs(&a, &b, &c, &rhs_list).expect("modes admitted");

    let mut worst = 0.0f64;
    for (k, response) in responses.iter().enumerate() {
        assert!(response.residual.is_finite(), "unverified response escaped the service");
        let lambda = 4.0 / (h * h) * (((k + 1) as f64) * pi * h / 2.0).sin().powi(2);
        for j in 1..=N {
            let exact = ((k + 1) as f64 * pi * (j as f64 * h)).sin() / lambda;
            worst = worst.max((response.x[j - 1] - exact).abs() * lambda); // relative to mode scale
        }
    }
    println!("solved {MODES} Poisson modes of {N} unknowns (f64) through the service");
    println!("worst relative error across all modes: {worst:.3e}");
    assert!(worst < 1e-10, "Poisson eigen-solution mismatch: {worst:.3e}");

    let snap = service.shutdown();
    assert_eq!(snap.completed, MODES as u64, "lost modes");
    println!(
        "factor cache: {} miss(es), {} hit(s), {} warm flush(es); engines {:?}",
        snap.factor_misses, snap.factor_hits, snap.warm_flushes, snap.dispatch_systems
    );
    assert!(snap.factor_misses >= 1, "the first flush must factor the matrix");
    assert!(snap.factor_hits >= 1, "later flushes must hit the cached factorization");
    assert!(snap.warm_flushes >= 1, "later flushes must be served warm");
    println!("OK: every mode matches the discrete eigen-solution");
}
