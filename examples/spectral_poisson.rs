//! Spectral-style Poisson solves — "spectral Poisson solvers" (Hockney's
//! original cyclic-reduction application) from the paper's introduction.
//!
//! Solves a batch of 1-D Poisson problems `-u'' = g` with homogeneous
//! Dirichlet boundaries, discretized with the `[-1, 2, -1]/h^2` stencil.
//! Each right-hand side is a single Fourier mode, for which the discrete
//! solution is known in closed form — a sharp end-to-end correctness check
//! of the whole GPU pipeline.
//!
//! ```text
//! cargo run --release --example spectral_poisson
//! ```

use gpu_sim::Launcher;
use gpu_solvers::{solve_batch, GpuAlgorithm};
use tridiag_core::{SystemBatch, TridiagonalSystem};

/// Interior points (power of two for the GPU kernels).
const N: usize = 512;
/// Number of Fourier modes solved at once (one system per mode).
const MODES: usize = 64;

fn main() {
    let launcher = Launcher::gtx280();
    let h = 1.0 / (N as f64 + 1.0);
    let pi = std::f64::consts::PI;

    // System k: -u'' = sin((k+1) pi x), discrete eigen-solution
    // u_j = sin((k+1) pi x_j) / lambda_k with
    // lambda_k = (4 / h^2) sin^2((k+1) pi h / 2).
    let systems: Vec<TridiagonalSystem<f64>> = (0..MODES)
        .map(|k| {
            let mut a = vec![-1.0 / (h * h); N];
            let mut c = vec![-1.0 / (h * h); N];
            a[0] = 0.0;
            c[N - 1] = 0.0;
            let b = vec![2.0 / (h * h); N];
            let d = (1..=N).map(|j| ((k + 1) as f64 * pi * (j as f64 * h)).sin()).collect();
            TridiagonalSystem { a, b, c, d }
        })
        .collect();
    let batch = SystemBatch::from_systems(&systems).expect("batch");

    // f64 at n = 512 exceeds the GT200's shared memory, so this example
    // exercises the global-memory fallback path — the case §4 describes.
    let report = solve_batch(&launcher, GpuAlgorithm::CrGlobalOnly, &batch).expect("solve");
    println!(
        "solved {MODES} Poisson systems of {N} unknowns (f64, global-memory path) \
         in {:.3} ms simulated GPU time",
        report.timing.kernel_ms
    );

    let mut worst = 0.0f64;
    for k in 0..MODES {
        let lambda = 4.0 / (h * h) * (((k + 1) as f64) * pi * h / 2.0).sin().powi(2);
        let x = report.solutions.system(k);
        for j in 1..=N {
            let exact = ((k + 1) as f64 * pi * (j as f64 * h)).sin() / lambda;
            worst = worst.max((x[j - 1] - exact).abs() * lambda); // relative to mode scale
        }
    }
    println!("worst relative error across all modes: {worst:.3e}");
    assert!(worst < 1e-10, "Poisson eigen-solution mismatch: {worst:.3e}");
    println!("OK: every mode matches the discrete eigen-solution");
}
