//! Offline stand-in for `criterion` (API subset).
//!
//! Provides just enough of criterion's surface to compile and *run* the
//! workspace's benches without network access: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`Throughput`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a warmup pass followed by
//! `sample_size` timed iterations, reporting the mean per-iteration time
//! (and derived element throughput when declared). There is no statistical
//! analysis, outlier rejection, or HTML report.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Throughput declaration attached to a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { full: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup (not timed) so one-time lazy work is excluded.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher { iters: sample_size as u64, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / sample_size as f64;
    let rate = match throughput {
        Some(Throughput::Elements(e)) if per_iter > 0.0 => {
            format!("  ({:.3e} elem/s)", e as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  ({:.3e} B/s)", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("bench {label:<50} {:>12.3} us/iter{rate}", per_iter * 1e6);
}

/// Groups bench target functions, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_exact_iterations() {
        let mut c = Criterion::default().sample_size(7);
        let mut calls = 0u64;
        c.bench_function("count", |b| b.iter(|| calls += 1));
        // warmup + 7 timed
        assert_eq!(calls, 8);
    }

    #[test]
    fn groups_run_with_inputs_and_throughput() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(128));
        let input = vec![1u32, 2, 3];
        let mut sum = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 3), &input, |b, inp| {
            b.iter(|| sum += inp.iter().map(|&v| u64::from(v)).sum::<u64>())
        });
        group.bench_function(format!("owned_{}", 1), |b| b.iter(|| ()));
        group.finish();
        assert_eq!(sum, 6 * 4);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("GE", 64).to_string(), "GE/64");
    }

    criterion_group!(plain_group, noop_target);
    criterion_group! {
        name = configured_group;
        config = Criterion::default().sample_size(2);
        targets = noop_target,
    }

    fn noop_target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| ()));
    }

    #[test]
    fn group_macros_expand_to_callables() {
        plain_group();
        configured_group();
    }
}
