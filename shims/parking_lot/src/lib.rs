//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! subset used in this workspace: [`Mutex::lock`], [`RwLock::read`],
//! [`RwLock::write`]. Poisoning is handled by taking the inner guard
//! regardless — matching parking_lot semantics, where a panicking holder
//! does not poison the lock.

#![warn(missing_docs)]

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual exclusion primitive (no poisoning, like parking_lot).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock (no poisoning, like parking_lot).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = RwLock::new(7);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
        drop((r1, r2));
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
