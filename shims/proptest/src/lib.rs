//! Offline stand-in for `proptest` (API subset).
//!
//! Implements the slice of proptest this workspace uses so the
//! property-based test suites run without network access:
//!
//! * [`Strategy`] with `prop_map` / `prop_flat_map`;
//! * range strategies (`0u32..7`, `-1.0f64..1.0`, `1u32..=8`, ...);
//! * [`collection::vec`], [`sample::select`], tuple strategies, [`any`];
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`] and
//!   [`TestCaseError`].
//!
//! Differences from the real crate: cases are drawn from a fixed
//! deterministic seed sequence (reproducible run-to-run), and there is **no
//! shrinking** — a failing case reports its case index and message instead
//! of a minimized input.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Re-exports matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Namespace mirror of `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Runner configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — draw another input.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failing case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected case with a message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// A generator of random values (proptest's core abstraction, minus
/// shrinking).
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + Clone,
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + Clone,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u16, u32, u64, usize, i32, i64, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait ArbitraryValue {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl ArbitraryValue for usize {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>() as usize
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(core::marker::PhantomData)
    }
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (subset: [`vec`]).

    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Inclusive-lo / exclusive-hi element-count range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector of `element` draws.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod sample {
    //! Sampling strategies (subset: [`select`]).

    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy choosing uniformly among fixed options.
    #[derive(Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }

    /// `proptest::sample::select`: pick one of `options` per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }
}

#[doc(hidden)]
pub mod runner {
    //! Support machinery for the [`proptest!`] macro expansion.

    use super::*;

    /// Deterministic per-(test, case) RNG.
    pub fn case_rng(test_name: &str, case: u64) -> StdRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Drives one property test to `cases` accepted cases.
    pub fn run<F>(test_name: &str, config: &ProptestConfig, mut one_case: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let mut accepted = 0u32;
        let mut attempts = 0u64;
        let max_attempts = u64::from(config.cases) * 16 + 64;
        while accepted < config.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "{test_name}: gave up after {attempts} attempts \
                 ({accepted}/{} accepted) — too many prop_assume! rejects",
                config.cases
            );
            let mut rng = case_rng(test_name, attempts);
            match one_case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{test_name}: case {attempts} failed: {msg}")
                }
            }
        }
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strategy) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run [$cfg] $($rest)*);
    };
    (@run [$cfg:expr]
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::runner::run(
                concat!(module_path!(), "::", stringify!($name)),
                &config,
                |proptest_case_rng| {
                    $(let $arg =
                        $crate::Strategy::generate(&($strat), proptest_case_rng);)*
                    #[allow(unreachable_code)]
                    let run_case = move ||
                        -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    run_case()
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run [$crate::ProptestConfig::default()] $($rest)*);
    };
}

/// Asserts within a proptest case; failure fails the case with its message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality within a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Rejects the current case (draw another input) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::Strategy;

    fn shifted(n: usize) -> impl Strategy<Value = usize> {
        (0usize..10).prop_map(move |v| v + n)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x), "x={x}");
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn flat_map_composes(v in (1usize..5).prop_flat_map(shifted)) {
            prop_assert!((1..15).contains(&v), "v={v}");
        }

        #[test]
        fn vec_and_select_work(
            values in prop::collection::vec(-5.0f64..5.0, 1..9),
            pick in prop::sample::select(vec![2usize, 4, 8]),
        ) {
            prop_assert!(!values.is_empty() && values.len() < 9);
            prop_assert!(values.iter().all(|v| (-5.0..5.0).contains(v)));
            prop_assert!(pick == 2 || pick == 4 || pick == 8);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn early_ok_return_is_accepted(n in 0u32..100) {
            if n > 50 {
                return Ok(());
            }
            prop_assert!(n <= 50);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::runner::case_rng("t", 1);
        let mut b = crate::runner::case_rng("t", 1);
        let s = (0u32..1000, -1.0f64..1.0);
        assert_eq!(s.generate(&mut a).0, s.generate(&mut b).0);
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failures_panic_with_message() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(dead_code)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
