//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment is fully offline, so the workspace replaces its
//! external dependencies with small in-tree shims. This one provides the
//! surface the repo actually uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (`SeedableRng::seed_from_u64`);
//! * [`Rng::gen_range`] for float and integer ranges, [`Rng::gen_bool`];
//! * [`distributions::Uniform`] + [`distributions::Distribution`].
//!
//! It is **not** a drop-in statistical replacement for the real crate: the
//! stream of values differs, but every consumer in this workspace only needs
//! determinism and rough uniformity, both of which hold.

#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// The element type is a trait *parameter* (as in real rand) so that
    /// untyped float literals like `-1.0..1.0` unify with the call site's
    /// expected type (`f32` or `f64`) instead of defaulting to `f64`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<G: RngCore> Rng for G {}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard {
    /// Draws one value from `rng`.
    fn from_rng<G: RngCore>(rng: &mut G) -> Self;
}

impl Standard for u64 {
    fn from_rng<G: RngCore>(rng: &mut G) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<G: RngCore>(rng: &mut G) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<G: RngCore>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<G: RngCore>(rng: &mut G) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn from_rng<G: RngCore>(rng: &mut G) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Maps 64 random bits to a double in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample a `T` from.
pub trait SampleRange<T> {
    /// Draws one uniformly distributed element.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! float_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                debug_assert!(self.start < self.end, "empty range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                debug_assert!(lo <= hi, "empty range");
                // Inclusive endpoints matter little for floats; nudge the
                // unit sample so `hi` is reachable.
                let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + (u as $t) * (hi - lo)
            }
        }
    };
}

float_range!(f32);
float_range!(f64);

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = bounded_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = bounded_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    };
}

int_range!(usize);
int_range!(u64);
int_range!(u32);
int_range!(u16);
int_range!(i64);
int_range!(i32);

/// Uniform draw in `[0, span)` by rejection to avoid modulo bias.
fn bounded_u128<G: RngCore>(rng: &mut G, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    let zone = u128::from(u64::MAX) - (u128::from(u64::MAX) + 1) % span;
    loop {
        let v = u128::from(rng.next_u64());
        if v <= zone {
            return v % span;
        }
    }
}

pub mod rngs {
    //! Concrete generators (only [`StdRng`]).

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator — the shim's `StdRng`.
    ///
    /// Not cryptographic (neither is it in this workspace's usage), but
    /// fast, seedable, and with a long period.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Distribution types (only [`Uniform`]).

    use super::{RngCore, SampleRange};
    use core::ops::Range;

    /// A distribution that can be sampled repeatedly.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<G: RngCore>(&self, rng: &mut G) -> T;
    }

    /// Uniform distribution over a fixed interval.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<X> {
        lo: X,
        hi: X,
        inclusive: bool,
    }

    impl<X: Copy> Uniform<X> {
        /// Uniform over the half-open interval `[lo, hi)`.
        pub fn new(lo: X, hi: X) -> Self {
            Self { lo, hi, inclusive: false }
        }

        /// Uniform over the closed interval `[lo, hi]`.
        pub fn new_inclusive(lo: X, hi: X) -> Self {
            Self { lo, hi, inclusive: true }
        }
    }

    macro_rules! uniform_impl {
        ($t:ty) => {
            impl Distribution<$t> for Uniform<$t> {
                fn sample<G: RngCore>(&self, rng: &mut G) -> $t {
                    if self.inclusive {
                        (self.lo..=self.hi).sample_from(rng)
                    } else {
                        Range { start: self.lo, end: self.hi }.sample_from(rng)
                    }
                }
            }
        };
    }

    uniform_impl!(f32);
    uniform_impl!(f64);
    uniform_impl!(usize);
    uniform_impl!(u64);
    uniform_impl!(u32);
    uniform_impl!(i32);
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let differs = (0..64).any(|_| a.gen_range(0u64..u64::MAX) != c.gen_range(0u64..u64::MAX));
        assert!(differs);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&v), "{v}");
            let w: f32 = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&w), "{w}");
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        let mut seen_inc = [false; 4];
        for _ in 0..500 {
            seen_inc[rng.gen_range(2usize..=5) - 2] = true;
        }
        assert!(seen_inc.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "{frac}");
    }

    #[test]
    fn uniform_distribution_matches_ranges() {
        let mut rng = StdRng::seed_from_u64(4);
        let u = Uniform::new_inclusive(-0.5f64, 0.5);
        for _ in 0..1000 {
            let v = u.sample(&mut rng);
            assert!((-0.5..=0.5).contains(&v));
        }
        let half_open = Uniform::new(0u32, 3);
        let mut seen = [false; 3];
        for _ in 0..300 {
            seen[half_open.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_cover_zero_to_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "lo={lo} hi={hi}");
    }
}
