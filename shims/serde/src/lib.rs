//! Offline stand-in for `serde`.
//!
//! The workspace only uses serde for `#[derive(Serialize)]` annotations on
//! report types; nothing actually drives a `Serializer` (JSON output, where
//! needed, is rendered by hand — see `gpu_sim::trace` and
//! `solver_service::metrics`). The traits here are therefore markers with
//! blanket implementations, and the derives expand to nothing.

#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize` (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    // Import both the trait and the derive under the same name, exactly as
    // `use serde::Serialize;` resolves for downstream crates.
    use super::Serialize;

    #[derive(Serialize)]
    struct Plain {
        #[allow(dead_code)]
        x: u32,
    }

    #[derive(Serialize)]
    enum WithVariants {
        #[allow(dead_code)]
        A,
        #[allow(dead_code)]
        B(f64),
    }

    fn assert_serialize<T: Serialize>() {}

    #[test]
    fn derive_and_blanket_impl_coexist() {
        assert_serialize::<Plain>();
        assert_serialize::<WithVariants>();
        assert_serialize::<Vec<String>>();
    }
}
