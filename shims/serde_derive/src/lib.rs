//! Offline stand-in for `serde_derive`.
//!
//! The shimmed `serde::Serialize` trait is blanket-implemented for every
//! type, so the derive macros legitimately expand to nothing — they exist
//! only so `#[derive(Serialize)]` keeps compiling unchanged.

use proc_macro::TokenStream;

/// No-op `Serialize` derive (the shimmed trait has a blanket impl).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive (the shimmed trait has a blanket impl).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
