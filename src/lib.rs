//! # tridiag-suite
//!
//! A complete reproduction of **"Fast Tridiagonal Solvers on the GPU"**
//! (Yao Zhang, Jonathan Cohen, John D. Owens — PPoPP 2010) in pure Rust:
//! the five solver kernels (CR, PCR, RD, CR+PCR, CR+RD), the CPU baselines,
//! the evaluation workloads, and a calibrated SIMT GPU simulator standing in
//! for the paper's GTX 280.
//!
//! This crate is the facade: it re-exports the four library crates and
//! hosts the runnable examples and the cross-crate integration tests.
//!
//! | Crate | Role |
//! |---|---|
//! | [`tridiag_core`] | systems, batches, workloads, residuals, Table 1 model |
//! | [`gpu_sim`] | SIMT simulator: warps, banks, occupancy, cost model |
//! | [`gpu_solvers`] | the paper's kernels + ablation variants |
//! | [`cpu_solvers`] | Thomas (GE), pivoting GEP, multi-threaded MT |
//!
//! ## Quick start
//!
//! ```
//! use gpu_sim::Launcher;
//! use gpu_solvers::{solve_batch, GpuAlgorithm};
//! use tridiag_core::{dominant_batch, residual::batch_residual};
//!
//! // 64 diagonally dominant systems of 128 unknowns.
//! let batch = dominant_batch::<f32>(7, 128, 64);
//! // The paper's best solver: hybrid CR+PCR, switching at m = n/2.
//! let report = solve_batch(&Launcher::gtx280(), GpuAlgorithm::CrPcr { m: 64 }, &batch).unwrap();
//!
//! let res = batch_residual(&batch, &report.solutions).unwrap();
//! assert!(res.max_l2 < 1e-3);
//! assert!(report.timing.kernel_ms > 0.0); // simulated GTX 280 time
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use cpu_solvers;
pub use gpu_sim;
pub use gpu_solvers;
pub use tridiag_core;
