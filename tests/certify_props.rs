//! Adversarial soundness properties for the static certification analyzer.
//!
//! The whole value of a `NumericCertificate` is that it lets the service
//! *skip* the per-solution residual verify, so an unsound certificate is a
//! wrong answer served silently. These properties attack the analyzer from
//! both sides, over both precisions and sizes up to 4096.
//!
//! A note on "GEP pivots": partial pivoting may *choose* to interchange on
//! a perfectly safe row-dominant matrix (a large sub-diagonal under a
//! modest updated diagonal — the no-interchange theorem belongs to column
//! dominance), so the sound formalization is about *necessity*, not the
//! heuristic's row swaps:
//!
//! * **Certified ⇒ pivoting is never necessary.** The pivot-free Thomas
//!   recurrence must complete with every pivot finite and nonzero (the
//!   machine-checked floor exists), the pivot-free solve must succeed, and
//!   its relative residual must sit below the certificate's a-priori
//!   forward-error bound `κ₁·ε·n`. GEP — the safety net the certificate
//!   retires — must agree to within the same bound.
//! * **Needs-pivoting ⇒ never certified.** On any matrix where the
//!   pivot-free recurrence breaks down (no floor) or GEP outright fails,
//!   the analyzer must return `Uncertified` — including the adversarial
//!   "almost dominant" family built to sit right at the dominance
//!   boundary.

use cpu_solvers::{gep, pivot_bounds::thomas_pivot_floor, thomas};
use proptest::prelude::*;
use tridiag_core::residual::relative_l2_residual;
use tridiag_core::{Generator, Real, TridiagonalSystem, Workload};

/// Sizes the properties sweep (power-of-two and odd, small and large).
const SIZES: [usize; 5] = [8, 33, 257, 1024, 4096];

/// Builds an "almost dominant" adversarial system: every row dominant by a
/// comfortable margin except one, whose diagonal is shrunk so the row sits
/// `break_by` *below* the dominance line. With a large `break_by` the
/// pivot-free recurrence can lose the floor entirely; with a tiny one it
/// probes the analyzer's slack handling.
fn almost_dominant<T: Real>(
    n: usize,
    weak_row: usize,
    break_by: f64,
    seed: u64,
) -> TridiagonalSystem<T> {
    let mut gen = Generator::new(seed);
    let mut sys: TridiagonalSystem<T> = gen.system(Workload::DiagonallyDominant, n);
    let i = weak_row.min(n - 1);
    let off = sys.a[i].to_f64().abs() + sys.c[i].to_f64().abs();
    let sign = if sys.b[i].to_f64() < 0.0 { -1.0 } else { 1.0 };
    // Clamp at zero: a magnitude of `off − break_by` gone *negative* would
    // make the row dominant again (with flipped sign), not weaker.
    sys.b[i] = T::from_f64(sign * (off - break_by).max(0.0));
    sys
}

/// The two soundness checks, shared by every generation strategy below.
fn assert_sound<T: Real>(sys: &TridiagonalSystem<T>, label: &str) -> Result<(), TestCaseError> {
    let analysis = numeric_verify::analyze(sys);
    if !analysis.certificate.is_certified() {
        return Ok(()); // Uncertified is always sound.
    }
    let cert = analysis.certificate.name();
    prop_assert!(
        analysis.forward_error_bound.is_finite(),
        "{label} certified '{cert}' with an infinite error bound"
    );
    // Certified ⇒ the pivot-free recurrence never needs a pivot: the
    // machine-checked floor exists (every pivot finite and nonzero).
    let floor = thomas_pivot_floor(&sys.a, &sys.b, &sys.c);
    prop_assert!(
        floor.is_some_and(|f| f > 0.0),
        "{label} certificate '{cert}' issued but the pivot-free recurrence has no floor"
    );
    // Certified ⇒ the pivot-free Thomas solve lands inside the bound.
    let mut x = vec![T::ZERO; sys.n()];
    let solved = thomas::solve_into(&sys.a, &sys.b, &sys.c, &sys.d, &mut x);
    prop_assert!(solved.is_ok(), "{label} certified '{cert}' but Thomas failed: {solved:?}");
    let rel = relative_l2_residual(sys, &x).expect("residual on certified system");
    prop_assert!(
        rel <= analysis.forward_error_bound,
        "{label} certified residual {rel} escaped the bound {}",
        analysis.forward_error_bound
    );
    // Certified ⇒ the GEP safety net the certificate retires agrees.
    let mut xg = vec![T::ZERO; sys.n()];
    let gep_result = gep::solve_into_counting(&sys.a, &sys.b, &sys.c, &sys.d, &mut xg);
    prop_assert!(gep_result.is_ok(), "{label} certified '{cert}' but GEP failed: {gep_result:?}");
    let rel_gep = relative_l2_residual(sys, &xg).expect("GEP residual on certified system");
    prop_assert!(
        rel_gep <= analysis.forward_error_bound,
        "{label} certified but GEP residual {rel_gep} escaped the bound {}",
        analysis.forward_error_bound
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generator family, both precisions: a certificate is only ever
    /// issued when pivot-free elimination is safe and lands in the bound.
    #[test]
    fn certificates_are_sound_on_generator_families(
        seed in 0u64..1_000_000,
        n in prop::sample::select(SIZES.to_vec()),
        workload in prop::sample::select(Workload::ALL.to_vec()),
    ) {
        let sys32: TridiagonalSystem<f32> = Generator::new(seed).system(workload, n);
        assert_sound(&sys32, "f32")?;
        let sys64: TridiagonalSystem<f64> = Generator::new(seed).system(workload, n);
        assert_sound(&sys64, "f64")?;
    }

    /// The adversarial family: one row pushed to (or past) the dominance
    /// boundary. Whatever the break, the certificate must stay sound; a
    /// clearly broken row must never scan as strictly dominant; and a
    /// matrix whose pivot-free recurrence loses its floor (pivoting
    /// *necessary*) must never be certified at all.
    #[test]
    fn no_certificate_survives_a_broken_dominance_row(
        seed in 0u64..1_000_000,
        n in prop::sample::select(SIZES.to_vec()),
        weak_row in 0usize..4096,
        break_by in prop::sample::select(vec![0.0, 1e-9, 1e-3, 0.5, 2.0, 10.0]),
    ) {
        let sys32: TridiagonalSystem<f32> = almost_dominant(n, weak_row, break_by, seed);
        assert_sound(&sys32, "f32-adversarial")?;
        let sys64: TridiagonalSystem<f64> = almost_dominant(n, weak_row, break_by, seed);
        assert_sound(&sys64, "f64-adversarial")?;

        let analysis = numeric_verify::analyze(&sys64);
        // A row sitting measurably below the dominance line must never
        // pass the strict-dominance scan (whatever the slack does near
        // the boundary, 1e-3 is far outside it for O(1) rows).
        if break_by >= 1e-3 {
            prop_assert!(
                analysis.certificate.name() != "strictly-dominant",
                "row broken by {break_by} still scanned as strictly dominant"
            );
        }
        // Direct necessity claim: if the pivot-free recurrence breaks
        // down or the safety net itself fails, no certificate.
        let floor = thomas_pivot_floor(&sys64.a, &sys64.b, &sys64.c);
        let mut xg = vec![0.0f64; sys64.n()];
        let gep_ok = gep::solve_into_counting(&sys64.a, &sys64.b, &sys64.c, &sys64.d, &mut xg);
        if floor.is_none() || gep_ok.is_err() {
            prop_assert!(
                !analysis.certificate.is_certified(),
                "certificate '{}' issued for a matrix that needs pivoting",
                analysis.certificate.name()
            );
        }
    }
}

/// Deterministic spot checks at the largest size for both precisions, so
/// the 4096-row contract is exercised even if proptest happens not to draw
/// it: the dominant family certifies, and the certificate is sound.
#[test]
fn dominant_4096_certifies_and_is_sound_in_both_precisions() {
    let sys32: TridiagonalSystem<f32> =
        Generator::new(0xCE27).system(Workload::DiagonallyDominant, 4096);
    let analysis = numeric_verify::analyze(&sys32);
    assert!(analysis.certificate.is_certified(), "dominant f32/4096 must certify");
    assert_sound(&sys32, "f32/4096").expect("sound at 4096");

    let sys64: TridiagonalSystem<f64> =
        Generator::new(0xCE27).system(Workload::DiagonallyDominant, 4096);
    let analysis = numeric_verify::analyze(&sys64);
    assert!(analysis.certificate.is_certified(), "dominant f64/4096 must certify");
    assert_sound(&sys64, "f64/4096").expect("sound at 4096");
}
