//! Chaos tests: the serving layer on a fault-injected device.
//!
//! The contract under test — the whole point of the resilience layer — is
//! that injected device misbehaviour (transient launch failures, memory
//! bit-flips) costs *latency and engine choice*, never *correctness or
//! completeness*:
//!
//! * a 1000-request open-loop stream at 5% launch faults + 1% bit flips
//!   loses no ticket and returns no wrong answer;
//! * a burst of launch faults trips the per-engine circuit breaker
//!   Closed→Open, and a clean half-open probe closes it again — the full
//!   round trip, observable in the metrics;
//! * injected bit-flips are *always* caught by residual verification and
//!   repaired by the GEP safety net (property-tested over random seeds);
//! * the fault schedule is a pure function of the seed: two identical runs
//!   produce identical answers, identical injected-fault statistics, and
//!   identical service counters;
//! * a quiet fault plan (all rates zero) is counter-neutral: byte-identical
//!   solutions and identical counters to running with no plan at all.

use factor_cache::SharedFactorCache;
use gpu_sim::{Clock, FaultConfig, FaultPlan, Launcher};
use gpu_solvers::GpuAlgorithm;
use numeric_verify::CertifiedCatalog;
use proptest::prelude::*;
use solver_service::{
    make_request, make_request_keyed, serve_flush, CircuitBreakers, CpuEngine, DeviceCtx,
    DispatchConfig, Engine, FlushReason, FlushedBatch, MetricsSnapshot, PlanCache, ServiceConfig,
    ServiceError, ServiceMetrics, SolveResponse, SolverService, Ticket,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use tridiag_core::residual::l2_residual;
use tridiag_core::{Generator, MatrixKey, TridiagonalSystem, Workload};

/// The acceptance bound the service property tests hold f32 responses to.
const RESIDUAL_BOUND: f64 = 1e-2;

fn faulty_launcher(cfg: FaultConfig) -> (Launcher, Arc<FaultPlan>) {
    let plan = Arc::new(FaultPlan::new(cfg));
    (Launcher::gtx280().with_fault_plan(Arc::clone(&plan)), plan)
}

/// Open-loop submit with backpressure retries honoring the drain hint.
///
/// The retry pause goes through the *service's* clock: on a sim clock the
/// hint advances virtual time (so linger deadlines the workers are parked
/// on expire immediately) and we only yield the real thread so those
/// workers get scheduled; on a real clock this is the old wall sleep.
fn submit_retrying<T: tridiag_core::Real>(
    service: &SolverService<T>,
    system: &TridiagonalSystem<T>,
) -> Ticket<T> {
    loop {
        match service.submit(system.clone()) {
            Ok(ticket) => return ticket,
            Err(ServiceError::QueueFull { retry_after: Some(hint), .. }) => {
                service.clock().sleep(hint);
                if service.clock().is_sim() {
                    std::thread::yield_now();
                }
            }
            Err(ServiceError::QueueFull { .. }) => std::thread::yield_now(),
            Err(e) => panic!("service refused a valid request: {e}"),
        }
    }
}

/// Waits on a ticket while pumping the service's virtual clock.
///
/// Under a sim clock nobody advances time on its own, and submission is
/// asynchronous: a batcher insert can land *after* the submitter returns,
/// setting a linger deadline in the virtual future. Advancing once up
/// front would race that insert and deadlock the tail flush, so the waiter
/// funds time in small steps until its ticket resolves — each step expires
/// any deadline set so far, and the short real sleep lets the worker
/// threads actually run. On a real clock this is plain `Ticket::wait`.
fn wait_pumping<T: tridiag_core::Real>(
    service: &SolverService<T>,
    ticket: Ticket<T>,
) -> SolveResponse<T> {
    if !service.clock().is_sim() {
        return ticket.wait();
    }
    loop {
        if let Some(response) = ticket.try_take() {
            return response;
        }
        service.clock().advance(Duration::from_millis(1));
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// The ISSUE's headline chaos scenario: 1000 mixed-size requests at 5%
/// transient launch faults + 1% bit flips. Zero lost tickets, zero wrong
/// answers, and every caught corruption accounted for in the metrics.
#[test]
fn chaos_stream_no_lost_tickets_no_wrong_answers() {
    const TOTAL: usize = 1000;
    const SIZES: [usize; 3] = [64, 128, 256];

    let (launcher, plan) = faulty_launcher(FaultConfig::chaos(0xCA05_2026, 0.05, 0.01));
    let config = ServiceConfig {
        // Small batches multiply kernel launches, and a pinned GPU engine
        // keeps every flush on the device — otherwise the autotuner routes
        // these small batches to the CPU and the 5%/1% rates have almost
        // no launches to bite (the planner is its own fault-avoidance
        // layer; here we want maximum fault exposure).
        target_batch: 8,
        min_gpu_batch: 1,
        max_linger: Duration::from_millis(1),
        launcher,
        pin_engine: Some(Engine::Gpu(GpuAlgorithm::CrPcr { m: 32 })),
        // Sim clock: linger and backpressure pauses are virtual, so the
        // test's duration is solver work, not a thousand waits on wall
        // timers — the de-flaking half of the virtual-clock story.
        clock: Clock::sim(),
        ..ServiceConfig::default()
    };
    let service: SolverService<f32> = SolverService::start(config);
    let mut generator = Generator::new(0xCA05_2026);

    let mut tickets: Vec<Ticket<f32>> = Vec::with_capacity(TOTAL);
    let mut systems: BTreeMap<u64, TridiagonalSystem<f32>> = BTreeMap::new();
    for i in 0..TOTAL {
        let n = SIZES[i % SIZES.len()];
        let system = generator.system(Workload::DiagonallyDominant, n);
        let ticket = submit_retrying(&service, &system);
        assert!(systems.insert(ticket.id(), system).is_none(), "duplicate ticket id");
        tickets.push(ticket);
    }

    // Every ticket resolves; every answer re-verifies independently.
    let mut seen = 0usize;
    for ticket in tickets {
        let id = ticket.id();
        let response = wait_pumping(&service, ticket);
        assert_eq!(response.id, id, "response delivered to the wrong ticket");
        let system = systems.remove(&id).expect("response for unknown id");
        let recomputed = l2_residual(&system, &response.x).expect("finite solution");
        assert!(
            recomputed < RESIDUAL_BOUND,
            "wrong answer escaped the service: id={id} n={} engine={} residual={recomputed}",
            system.n(),
            response.engine
        );
        seen += 1;
    }
    assert_eq!(seen, TOTAL, "lost tickets");
    assert!(systems.is_empty());

    let snapshot = service.shutdown();
    assert_eq!(snapshot.completed, TOTAL as u64);

    // The device really did misbehave, and the books say so: dispatch saw
    // at most the injected faults (autotune probes absorb the rest), and
    // every flip that landed on served output was caught and repaired.
    let stats = plan.stats();
    assert!(
        stats.launch_failures + stats.bit_flips > 0,
        "chaos rates injected nothing over {TOTAL} requests: {stats:?}"
    );
    let deg = &snapshot.degradation;
    assert!(
        deg.device_faults <= stats.launch_failures,
        "dispatch counted more faults ({}) than were injected ({})",
        deg.device_faults,
        stats.launch_failures
    );
    assert!(
        deg.corruptions_caught <= stats.bit_flips + stats.nan_poisons,
        "caught more corruptions ({}) than were injected",
        deg.corruptions_caught
    );
    assert!(snapshot.repaired >= deg.corruptions_caught.min(1), "corruption caught but no repair");
}

/// Burst faults trip the breaker Closed→Open; once the burst passes, a
/// half-open probe closes it again. The full round trip is visible in the
/// degradation gauges, and no answer is lost or wrong along the way.
#[test]
fn breaker_round_trips_open_and_closed_under_a_fault_burst() {
    // Find a seed whose very first fault event lands within the first few
    // launches — `FaultPlan::schedule` is the deterministic oracle, so the
    // test never depends on luck.
    let cfg_for = |seed: u64| FaultConfig {
        seed,
        launch_failure_rate: 0.02,
        launch_fault_burst: 6,
        ..FaultConfig::default()
    };
    let seed = (0..5000u64)
        .find(|&s| {
            let schedule = FaultPlan::schedule(&cfg_for(s), 40);
            // A burst starting in the first handful of launches, and a
            // clean tail long enough for the recovery probe.
            schedule[..4].iter().any(|d| d.fail.is_some())
                && schedule[12..].iter().all(|d| d.fail.is_none())
        })
        .expect("no seed with an early burst in 5000 tries");

    let (launcher, plan) = faulty_launcher(cfg_for(seed));
    let service: SolverService<f32> = SolverService::start(ServiceConfig {
        target_batch: 4,
        min_gpu_batch: 1,
        max_linger: Duration::from_micros(200),
        launcher,
        // Pin one engine so every fault lands on a single breaker, and
        // allow enough same-engine attempts that one burst can cross the
        // breaker's failure threshold quickly.
        pin_engine: Some(Engine::Gpu(GpuAlgorithm::CrPcr { m: 32 })),
        max_attempts_per_engine: 4,
        max_total_attempts: 4,
        // Sim clock: the inter-wave pauses that fund breaker cooldown
        // become virtual advances instead of wall sleeps, so the breaker's
        // round trip no longer depends on host timer resolution.
        clock: Clock::sim(),
        ..ServiceConfig::default()
    });

    let mut generator = Generator::new(42);
    // Trickle requests so traffic spans several breaker cooldown windows:
    // the burst opens the breaker early, later flushes fund the half-open
    // probes that eventually succeed and close it.
    for wave in 0..12 {
        let tickets: Vec<Ticket<f32>> = (0..8)
            .map(|_| {
                let system = generator.system(Workload::DiagonallyDominant, 64);
                submit_retrying(&service, &system)
            })
            .collect();
        for ticket in tickets {
            let response = wait_pumping(&service, ticket);
            assert!(response.residual < RESIDUAL_BOUND, "wave {wave}: {}", response.residual);
        }
        service.clock().sleep(Duration::from_millis(4));
    }

    let snapshot = service.shutdown();
    let deg = &snapshot.degradation;
    assert!(plan.stats().launch_failures >= 3, "burst never fired: {:?}", plan.stats());
    assert!(deg.breaker_opened >= 1, "breaker never opened: {deg:?}");
    assert!(deg.breaker_closed >= 1, "breaker never recovered: {deg:?}");
    // (Open-breaker flush demotion is pinned deterministically by the
    // dispatch unit tests; here concurrent workers may absorb the whole
    // burst with same-engine retries, so we don't assert it.)
    assert_eq!(snapshot.completed, 96);
    // After recovery every breaker rests closed.
    assert!(deg.breaker_states.values().all(|s| s == "closed"), "{:?}", deg.breaker_states);
}

/// Serves one batch of `count` systems of size `n` through the synchronous
/// pipeline and returns (solutions, snapshot) — deterministic by design.
fn serve_once(
    launcher: &Launcher,
    seed: u64,
    n: usize,
    count: usize,
) -> (Vec<Vec<f32>>, MetricsSnapshot) {
    let plans = PlanCache::new();
    let metrics = ServiceMetrics::new();
    let breakers = CircuitBreakers::default();
    let cfg = DispatchConfig {
        min_gpu_batch: 1,
        pin_engine: Some(Engine::Gpu(GpuAlgorithm::CrPcr { m: 16 })),
        sanitize_first_flush: false,
        ..DispatchConfig::default()
    };
    let mut generator = Generator::new(seed);
    let mut requests = Vec::new();
    let mut tickets = Vec::new();
    for i in 0..count {
        let (req, ticket) =
            make_request(i as u64, generator.system(Workload::DiagonallyDominant, n));
        requests.push(req);
        tickets.push(ticket);
    }
    serve_flush(
        DeviceCtx::solo(launcher),
        &plans,
        &breakers,
        &metrics,
        &cfg,
        FlushedBatch { n, requests, reason: FlushReason::Full },
    );
    let solutions = tickets
        .into_iter()
        .map(|t| {
            let response = t.try_take().expect("synchronous serve");
            assert!(response.residual < RESIDUAL_BOUND, "residual {}", response.residual);
            response.x
        })
        .collect();
    (solutions, metrics.snapshot(0, plans.tunes(), plans.hits()))
}

/// Same fault seed ⇒ identical schedule, identical answers, identical
/// counters. The whole fault layer is replayable.
#[test]
fn same_fault_seed_replays_identically() {
    let cfg = FaultConfig::chaos(77, 0.3, 0.3);
    assert_eq!(FaultPlan::schedule(&cfg, 64), FaultPlan::schedule(&cfg, 64));

    let run = || {
        let (launcher, plan) = faulty_launcher(cfg);
        let (solutions, snapshot) = serve_once(&launcher, 9, 64, 6);
        (solutions, snapshot, plan.stats())
    };
    let (x1, snap1, stats1) = run();
    let (x2, snap2, stats2) = run();

    assert_eq!(stats1, stats2, "injected-fault statistics diverged");
    assert!(stats1.launch_failures + stats1.bit_flips > 0, "nothing injected: {stats1:?}");
    assert_eq!(x1, x2, "answers diverged across identical runs");
    let d1 = &snap1.degradation;
    let d2 = &snap2.degradation;
    assert_eq!(
        (d1.retries, d1.device_faults, d1.corruptions_caught, d1.degraded_flushes),
        (d2.retries, d2.device_faults, d2.corruptions_caught, d2.degraded_flushes),
        "degradation counters diverged"
    );
    assert_eq!(snap1.repaired, snap2.repaired);
    assert_eq!(snap1.dispatch_systems, snap2.dispatch_systems);
}

/// A quiet plan (every rate zero) must be indistinguishable from no plan:
/// byte-identical solutions, identical counters, quiet degradation state.
#[test]
fn quiet_fault_plan_is_counter_neutral() {
    let bare = Launcher::gtx280();
    let (quiet, plan) = faulty_launcher(FaultConfig::quiet(123));

    let (x_bare, snap_bare) = serve_once(&bare, 5, 128, 5);
    let (x_quiet, snap_quiet) = serve_once(&quiet, 5, 128, 5);

    assert_eq!(x_bare, x_quiet, "a quiet plan changed the answers");
    let stats = plan.stats();
    assert_eq!(stats.launch_failures + stats.bit_flips + stats.nan_poisons + stats.stalls, 0);
    assert!(snap_bare.degradation.is_quiet() && snap_quiet.degradation.is_quiet());
    assert_eq!(snap_bare.repaired, snap_quiet.repaired);
    assert_eq!(snap_bare.dispatch_systems, snap_quiet.dispatch_systems);
    assert_eq!(snap_bare.engine_ms, snap_quiet.engine_ms, "simulated device time diverged");
}

/// The multi-device failover scenario: a 4-device pool where one device
/// dies sticky (`DeviceLost`) a few launches into the stream. The pool
/// must absorb the loss — the dead device drains and its queue re-routes
/// to survivors — with zero lost tickets, zero wrong answers, only the
/// dead device's breaker open, and the three survivors still dispatching.
#[test]
fn pool_survives_one_device_dying_mid_stream() {
    const TOTAL: usize = 300;
    const SIZES: [usize; 3] = [64, 128, 256];
    const DEAD: usize = 2;

    let mut pool_cfg = device_pool::PoolConfig::new(4);
    // Device 2 is lost for good on its 4th launch; everyone else is quiet.
    pool_cfg.fault_overrides =
        vec![(DEAD, FaultConfig { device_lost_after: Some(3), ..FaultConfig::quiet(0) })];
    let config = ServiceConfig {
        target_batch: 8,
        min_gpu_batch: 1,
        max_linger: Duration::from_millis(1),
        pin_engine: Some(Engine::Gpu(GpuAlgorithm::CrPcr { m: 32 })),
        pool: Some(pool_cfg),
        // Sim clock: the pacing loop below still condition-polls ("has
        // device 2 tripped yet?") with short *real* sleeps so worker
        // threads get scheduler time, but every linger deadline and
        // backpressure hint is funded by virtual advances — the test's
        // duration is solver work, not wall timers, and the flush
        // schedule replays identically across hosts.
        clock: Clock::sim(),
        ..ServiceConfig::default()
    };
    let service: SolverService<f32> = SolverService::start(config);
    let mut generator = Generator::new(0x0DEA_D0DE);

    let mut tickets: Vec<Ticket<f32>> = Vec::with_capacity(TOTAL);
    let mut systems: BTreeMap<u64, TridiagonalSystem<f32>> = BTreeMap::new();
    let mut submit_one =
        |i: usize,
         tickets: &mut Vec<Ticket<f32>>,
         systems: &mut BTreeMap<u64, TridiagonalSystem<f32>>| {
            let n = SIZES[i % SIZES.len()];
            let system = generator.system(Workload::DiagonallyDominant, n);
            let ticket = submit_retrying(&service, &system);
            assert!(systems.insert(ticket.id(), system).is_none(), "duplicate ticket id");
            tickets.push(ticket);
        };
    // Pace the stream in small waves until device 2 has actually tripped,
    // so survivors can't steal every flush routed to it before its worker
    // launches a kernel; then pour in the remainder in one burst.
    let mut submitted = 0usize;
    while submitted < TOTAL {
        for _ in 0..8.min(TOTAL - submitted) {
            submit_one(submitted, &mut tickets, &mut systems);
            submitted += 1;
        }
        if service.metrics().devices.iter().any(|d| d.id == DEAD && d.lost) {
            break;
        }
        // Fund any pending linger deadline virtually, then yield real
        // scheduler time so the parked workers actually serve the flush.
        service.clock().advance(Duration::from_millis(1));
        std::thread::sleep(Duration::from_micros(200));
    }
    for i in submitted..TOTAL {
        submit_one(i, &mut tickets, &mut systems);
    }

    // Zero lost tickets, zero wrong answers — the loss is invisible to
    // callers except as latency.
    for ticket in tickets {
        let id = ticket.id();
        let response = wait_pumping(&service, ticket);
        let system = systems.remove(&id).expect("response for unknown id");
        let recomputed = l2_residual(&system, &response.x).expect("finite solution");
        assert!(
            recomputed < RESIDUAL_BOUND,
            "wrong answer after device loss: id={id} engine={} residual={recomputed}",
            response.engine
        );
    }
    assert!(systems.is_empty(), "lost tickets");

    let snapshot = service.shutdown();
    assert_eq!(snapshot.completed, TOTAL as u64);
    assert_eq!(snapshot.devices.len(), 4);

    // Only the dead device is lost, and only its breaker is open.
    for dev in &snapshot.devices {
        if dev.id == DEAD {
            assert!(dev.lost, "device {DEAD} must be marked lost: {dev:?}");
            assert_eq!(dev.breaker, "open", "dead device's breaker must be open: {dev:?}");
        } else {
            assert!(!dev.lost, "survivor {} wrongly marked lost", dev.id);
            assert_eq!(dev.breaker, "closed", "survivor {} breaker: {dev:?}", dev.id);
        }
    }
    // The survivors carried the stream.
    let survivor_work: u64 =
        snapshot.devices.iter().filter(|d| d.id != DEAD).map(|d| d.dispatched).sum();
    assert!(survivor_work > 0, "survivors dispatched nothing: {:?}", snapshot.devices);
    // The loss is on the books: the lost launch surfaced as a device fault
    // and the breaker tripped open exactly once for the dead device.
    let deg = &snapshot.degradation;
    assert!(deg.breaker_opened >= 1, "loss never tripped a breaker: {deg:?}");
    assert!(
        deg.breaker_states.iter().all(|(k, s)| k.starts_with("dev2:") || s == "closed"),
        "a survivor's breaker left closed state: {:?}",
        deg.breaker_states
    );
}

/// The warm-tier chaos cell: a certain bit flip lands on the warm GPU
/// back-substitution flush. The residual verify must catch it, the GEP
/// safety net must repair it, and the poisoned cache entry must be
/// invalidated (visible as a factor eviction) — then the next flush of
/// the same matrix refactors from scratch. Zero wrong answers throughout.
#[test]
fn poisoned_warm_flush_is_repaired_and_the_entry_invalidated() {
    let (launcher, plan) = faulty_launcher(FaultConfig {
        seed: 0xFAC7,
        bit_flip_rate: 1.0,
        flips_per_event: 4,
        ..FaultConfig::default()
    });
    let plans = PlanCache::new();
    let metrics = ServiceMetrics::new();
    let breakers = CircuitBreakers::default();
    let cache = Arc::new(SharedFactorCache::new(4));
    let cfg = DispatchConfig {
        min_gpu_batch: 1,
        pin_engine: Some(Engine::Gpu(GpuAlgorithm::CrPcr { m: 16 })),
        sanitize_first_flush: false,
        factor_cache: Some(Arc::clone(&cache)),
        ..DispatchConfig::default()
    };
    let mut generator = Generator::new(0xFAC7);
    let system: TridiagonalSystem<f32> = generator.system(Workload::DiagonallyDominant, 64);
    let key = MatrixKey::of_system(&system);

    let serve = |seed: u64| -> Vec<String> {
        let mut requests = Vec::new();
        let mut tickets = Vec::new();
        for i in 0..4u64 {
            let mut sys = system.clone();
            for (j, v) in sys.d.iter_mut().enumerate() {
                *v = ((j as u64 * 31 + i * 7 + seed) % 17) as f32 - 8.0;
            }
            let (req, ticket) = make_request_keyed(i, sys, 0, None, Some(key));
            requests.push(req);
            tickets.push(ticket);
        }
        serve_flush(
            DeviceCtx::solo(&launcher),
            &plans,
            &breakers,
            &metrics,
            &cfg,
            FlushedBatch { n: 64, requests, reason: FlushReason::Full },
        );
        tickets
            .into_iter()
            .map(|t| {
                let r = t.try_take().expect("synchronous serve");
                assert!(
                    r.residual < RESIDUAL_BOUND,
                    "wrong answer escaped: {} on {}",
                    r.residual,
                    r.engine
                );
                r.engine
            })
            .collect()
    };

    // Flush 1: miss → factored → served cold (the flip on the cold launch
    // is the cold robust path's business).
    let engines = serve(1);
    assert!(engines.iter().all(|e| !e.contains("warm")), "first flush must be cold: {engines:?}");
    assert_eq!(cache.stats().entries, 1);

    // Flush 2: hit → warm GPU back-substitution, output poisoned by the
    // certain flip. Verify catches it, GEP repairs, the entry dies.
    let engines = serve(2);
    assert!(engines.iter().all(|e| e == "warm-gpu"), "second flush must be warm: {engines:?}");
    let snap = metrics.snapshot(0, plans.tunes(), plans.hits());
    assert_eq!(snap.factor_hits, 1);
    assert_eq!(snap.factor_misses, 1);
    assert_eq!(snap.warm_flushes, 1);
    assert!(plan.stats().bit_flips >= 2, "flip rate 1.0 injected nothing: {:?}", plan.stats());
    assert!(
        snap.degradation.corruptions_caught >= 1,
        "poisoned warm output never caught: {:?}",
        snap.degradation
    );
    assert!(snap.repaired >= 1, "corruption caught but nothing repaired");
    assert!(snap.factor_evictions >= 1, "poisoned entry never invalidated");
    assert_eq!(cache.stats().entries, 0, "poisoned entry still resident");

    // Flush 3: the entry is gone, so the same matrix misses and refactors
    // from scratch — the invalidation round-trips.
    let engines = serve(3);
    assert!(engines.iter().all(|e| !e.contains("warm")), "post-eviction flush must refactor");
    let snap = metrics.snapshot(0, plans.tunes(), plans.hits());
    assert_eq!(snap.factor_misses, 2);
    assert_eq!(cache.stats().entries, 1, "refactorization must repopulate the cache");
}

/// The certified-tier chaos cell: a certified matrix rides the sampled
/// verification fast path (1-in-K residual checks) while a certain bit
/// flip poisons every warm GPU flush. The contract: the corruption is
/// caught — by a sampled verify or the always-on NaN guard — within K
/// flushes of the first skip, the certificate is revoked, and from then
/// on that key pays full verification forever (no re-certification, no
/// further skips).
#[test]
fn certified_bit_flip_is_caught_within_the_sampling_window_and_revokes() {
    const K: usize = 4;
    let (launcher, plan) = faulty_launcher(FaultConfig {
        seed: 0xCE27,
        bit_flip_rate: 1.0,
        flips_per_event: 4,
        ..FaultConfig::default()
    });
    let plans = PlanCache::new();
    let metrics = ServiceMetrics::new();
    let breakers = CircuitBreakers::default();
    let cache = Arc::new(SharedFactorCache::new(4));
    let catalog = Arc::new(CertifiedCatalog::with_sample_period(K));
    // Cold flushes are pinned to the (fault-immune) CPU so the only
    // poisoned path is the warm GPU back-substitution the certificate is
    // gating; min_gpu_batch: 1 keeps warm flushes on the device.
    let cfg = DispatchConfig {
        min_gpu_batch: 1,
        pin_engine: Some(Engine::Cpu(CpuEngine::Thomas)),
        sanitize_first_flush: false,
        factor_cache: Some(Arc::clone(&cache)),
        certified: Some(Arc::clone(&catalog)),
        ..DispatchConfig::default()
    };
    let mut generator = Generator::new(0xCE27);
    let system: TridiagonalSystem<f32> = generator.system(Workload::DiagonallyDominant, 64);
    let key = MatrixKey::of_system(&system);

    let serve = |seed: u64| {
        let mut requests = Vec::new();
        let mut tickets = Vec::new();
        for i in 0..4u64 {
            let mut sys = system.clone();
            for (j, v) in sys.d.iter_mut().enumerate() {
                *v = ((j as u64 * 31 + i * 7 + seed) % 17) as f32 - 8.0;
            }
            let (req, ticket) = make_request_keyed(i, sys, 0, None, Some(key));
            requests.push(req);
            tickets.push(ticket);
        }
        serve_flush(
            DeviceCtx::solo(&launcher),
            &plans,
            &breakers,
            &metrics,
            &cfg,
            FlushedBatch { n: 64, requests, reason: FlushReason::Full },
        );
        for t in tickets {
            let r = t.try_take().expect("synchronous serve");
            assert!(
                r.residual < RESIDUAL_BOUND,
                "reported residual escaped the bound: {} on {}",
                r.residual,
                r.engine
            );
        }
    };

    // Flush 1: cold miss — the analyzer certifies the dominant matrix and
    // the first flush is always sampled (full residual check).
    serve(1);
    let snap = metrics.snapshot(0, plans.tunes(), plans.hits());
    assert_eq!(snap.certs_issued, 1, "dominant matrix must certify: {snap:?}");
    assert_eq!(snap.cert_sampled_verifies, 1, "first certified flush must be sampled");
    assert_eq!(snap.certs_revoked, 0, "fault-free cold flush must not revoke");
    assert_eq!(cache.stats().entries, 1);

    // Warm flushes now ride the skip window with every GPU launch
    // poisoned. Count how many it takes until the corruption is caught
    // and the certificate revoked — the contract caps that at K.
    let mut warm_flushes = 0usize;
    while metrics.snapshot(0, plans.tunes(), plans.hits()).certs_revoked == 0 {
        warm_flushes += 1;
        assert!(
            warm_flushes <= K,
            "bit flip survived the whole sampling window (K = {K}) without revocation"
        );
        serve(1 + warm_flushes as u64);
    }
    let snap = metrics.snapshot(0, plans.tunes(), plans.hits());
    assert!(plan.stats().bit_flips >= 1, "flip rate 1.0 injected nothing: {:?}", plan.stats());
    assert_eq!(snap.certs_revoked, 1, "exactly one revocation for the poisoned key");
    assert!(
        snap.degradation.corruptions_caught >= 1,
        "revoked without a caught corruption: {:?}",
        snap.degradation
    );
    assert!(snap.repaired >= 1, "corruption caught but the answers never repaired");
    let skips_at_revocation = snap.cert_skipped_verifies;
    let sampled_at_revocation = snap.cert_sampled_verifies;

    // Post-revocation the key pays full verification forever: another
    // 2K flushes move neither the skip nor the sample counter, no second
    // certificate is ever issued, revocation stays idempotent — and every
    // answer keeps clearing the residual bound under the same fault rate.
    for round in 0..(2 * K as u64) {
        serve(100 + round);
    }
    let snap = metrics.snapshot(0, plans.tunes(), plans.hits());
    assert_eq!(snap.cert_skipped_verifies, skips_at_revocation, "a revoked key skipped a verify");
    assert_eq!(
        snap.cert_sampled_verifies, sampled_at_revocation,
        "a revoked key was sampled instead of fully verified"
    );
    assert_eq!(snap.certs_issued, 1, "a revoked key was re-certified");
    assert_eq!(snap.certs_revoked, 1, "revocation must be idempotent");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Injected bit-flips are *always* caught by residual verification and
    /// repaired — whatever the seed, size, or batch shape. (`serve_once`
    /// asserts every response's residual internally.)
    #[test]
    fn bit_flips_are_always_caught_and_repaired(
        seed in 0u64..1_000_000,
        n in prop::sample::select(vec![32usize, 64, 128]),
        count in 2usize..8,
    ) {
        let (launcher, plan) = faulty_launcher(FaultConfig {
            seed,
            bit_flip_rate: 1.0,
            flips_per_event: 1,
            ..FaultConfig::default()
        });
        let (solutions, snapshot) = serve_once(&launcher, seed ^ 1, n, count);
        prop_assert_eq!(solutions.len(), count);
        let stats = plan.stats();
        prop_assert!(stats.bit_flips >= 1, "rate 1.0 but no flip injected");
        let deg = &snapshot.degradation;
        prop_assert!(
            deg.corruptions_caught >= 1,
            "flip injected but never caught: {:?}",
            stats
        );
        prop_assert!(
            snapshot.repaired >= 1,
            "corruption caught but nothing repaired"
        );
    }
}
