//! Property-based tests for the factorization cache (PR 9): a cached
//! warm solve must agree with a fresh cold solve to residual tolerance
//! for every warm engine and both element widths; LRU eviction must
//! round-trip through refactorization; and matrix identity must never
//! unify two different matrices, however a structured one is perturbed.

use cpu_solvers::ThomasFactors;
use factor_cache::{CrReductionTree, FactorCache};
use gpu_sim::Launcher;
use proptest::prelude::*;
use tridiag_core::residual::l2_residual;
use tridiag_core::{MatrixKey, Real, TridiagonalSystem};

/// Strategy: a strictly diagonally dominant system of size `n` (f64;
/// tests downcast to f32 where needed).
fn dominant_system(n: usize) -> impl Strategy<Value = TridiagonalSystem<f64>> {
    let off = prop::collection::vec(-1.0f64..1.0, n);
    let margins = prop::collection::vec(0.2f64..2.0, n);
    let rhs = prop::collection::vec(-10.0f64..10.0, n);
    (off.clone(), off, margins, rhs).prop_map(move |(mut a, mut c, m, d)| {
        a[0] = 0.0;
        c[n - 1] = 0.0;
        let b: Vec<f64> = (0..n).map(|i| (a[i].abs() + c[i].abs() + m[i]).copysign(1.0)).collect();
        TridiagonalSystem { a, b, c, d }
    })
}

/// The sizes the issue pins: the warm ≡ fresh equivalence must hold
/// across n ∈ {8 .. 4096}, power-of-two so the CR tree engine is
/// exercised too.
fn issue_size() -> impl Strategy<Value = usize> {
    (3u32..=12).prop_map(|e| 1usize << e)
}

fn narrow(sys: &TridiagonalSystem<f64>) -> TridiagonalSystem<f32> {
    TridiagonalSystem {
        a: sys.a.iter().map(|&v| v as f32).collect(),
        b: sys.b.iter().map(|&v| v as f32).collect(),
        c: sys.c.iter().map(|&v| v as f32).collect(),
        d: sys.d.iter().map(|&v| v as f32).collect(),
    }
}

/// Residual bound for a warm solve of size `n`: generous multiples of
/// the width's epsilon (the warm path multiplies by reciprocals where
/// the fresh path divides, so answers agree to rounding, not bitwise).
fn warm_bound<T: Real>(n: usize) -> f64 {
    1e3 * T::EPSILON.to_f64() * n as f64
}

fn assert_warm_engines_match_fresh<T: Real>(sys: &TridiagonalSystem<T>) -> Result<(), String> {
    let n = sys.n();
    let bound = warm_bound::<T>(n);

    // Engine 1: cached Thomas back-substitution.
    let factors = ThomasFactors::factor(&sys.a, &sys.b, &sys.c).map_err(|e| e.to_string())?;
    let x_warm = factors.solve(&sys.d);
    let r = l2_residual(sys, &x_warm).map_err(|e| e.to_string())?;
    if r >= bound {
        return Err(format!("thomas-warm residual {r} >= {bound} at n={n}"));
    }

    // Engine 2: cached CR reduction tree.
    let tree = CrReductionTree::build(&sys.a, &sys.b, &sys.c).map_err(|e| e.to_string())?;
    let x_tree = tree.solve(&sys.d);
    let r = l2_residual(sys, &x_tree).map_err(|e| e.to_string())?;
    if r >= bound {
        return Err(format!("cr-tree-warm residual {r} >= {bound} at n={n}"));
    }

    // Engine 3: the GPU warm back-substitution kernel, multi-RHS.
    let launcher = Launcher::gtx280();
    let rhs: Vec<&[T]> = vec![&sys.d, &sys.d];
    let report =
        gpu_solvers::solve_batch_warm(&launcher, &factors, &rhs).map_err(|e| e.to_string())?;
    for i in 0..rhs.len() {
        let r = l2_residual(sys, report.solutions.system(i)).map_err(|e| e.to_string())?;
        if r >= bound {
            return Err(format!("warm-gpu residual {r} >= {bound} at n={n} rhs {i}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn warm_solve_matches_fresh_for_every_engine_f64(
        sys in issue_size().prop_flat_map(dominant_system),
    ) {
        // Fresh reference: the cold Thomas solve must itself be good...
        let x_fresh = cpu_solvers::thomas::solve(&sys).unwrap();
        let r = l2_residual(&sys, &x_fresh).unwrap();
        prop_assert!(r < warm_bound::<f64>(sys.n()), "fresh residual {r}");
        // ...and every warm engine must match it to tolerance.
        if let Err(msg) = assert_warm_engines_match_fresh(&sys) {
            prop_assert!(false, "{msg}");
        }
    }

    #[test]
    fn warm_solve_matches_fresh_for_every_engine_f32(
        sys in issue_size().prop_flat_map(dominant_system),
    ) {
        let sys = narrow(&sys);
        if let Err(msg) = assert_warm_engines_match_fresh(&sys) {
            prop_assert!(false, "{msg}");
        }
    }

    #[test]
    fn lru_eviction_round_trips_through_refactorization(
        systems in prop::collection::vec(dominant_system(32), 5),
        capacity in 1usize..4,
    ) {
        let cache: FactorCache<f64> = FactorCache::new(capacity);
        let keys: Vec<MatrixKey> =
            systems.iter().map(MatrixKey::of_system).collect();
        let mut first_answers = Vec::new();
        for (sys, key) in systems.iter().zip(&keys) {
            let (entry, _) = cache.factor_and_insert(*key, &sys.a, &sys.b, &sys.c).unwrap();
            first_answers.push(entry.thomas.solve(&sys.d));
        }
        // The cache never exceeds its bound, and insertions beyond it
        // evicted something.
        prop_assert!(cache.len() <= capacity);
        prop_assert!(cache.stats().evictions >= (systems.len() - capacity) as u64);
        // Every matrix — evicted or resident — refactors to the same
        // answer it gave the first time (eviction loses time, never
        // correctness).
        for ((sys, key), first) in systems.iter().zip(&keys).zip(&first_answers) {
            let entry = match cache.lookup(key) {
                Some(entry) => entry,
                None => cache.factor_and_insert(*key, &sys.a, &sys.b, &sys.c).unwrap().0,
            };
            let again = entry.thomas.solve(&sys.d);
            prop_assert_eq!(first, &again);
        }
    }

    #[test]
    fn perturbing_any_matrix_element_changes_the_key(
        n in 8usize..128,
        seed in any::<u64>(),
        which in 0usize..3,
        at in any::<usize>(),
        toeplitz in any::<bool>(),
    ) {
        // Start from either a structured (Toeplitz) or a random general
        // matrix — the structured tags take hash shortcuts, and no
        // shortcut may unify two matrices that differ in any element the
        // operator reads.
        let mut gen = tridiag_core::Generator::new(seed);
        let sys: TridiagonalSystem<f64> = if toeplitz {
            TridiagonalSystem::toeplitz(n, -1.0, 4.0, -2.0, 1.0).unwrap()
        } else {
            gen.system(tridiag_core::Workload::DiagonallyDominant, n)
        };
        let before = MatrixKey::of_system(&sys);
        let mut perturbed = sys.clone();
        // Pick an element the operator actually reads: a[1..], b[..],
        // or c[..n-1] (the a[0]/c[n-1] corners are padding for
        // non-periodic systems).
        let (diag, idx) = match which {
            0 => (&mut perturbed.a, 1 + at % (n - 1)),
            1 => (&mut perturbed.b, at % n),
            _ => (&mut perturbed.c, at % (n - 1)),
        };
        diag[idx] += 0.5;
        let after = MatrixKey::of_system(&perturbed);
        prop_assert!(
            before.fingerprint() != after.fingerprint(),
            "perturbed {}[{}] of a {:?}-tagged matrix kept the same key",
            ["a", "b", "c"][which],
            idx,
            before.tag
        );
    }
}
