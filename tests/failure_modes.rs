//! Failure injection across the public API: invalid shapes, resource
//! exhaustion, numerical breakdowns — everything must fail loudly and
//! specifically, never silently.

use cpu_solvers::{solve_batch_seq, MtSolver, Thomas};
use gpu_sim::{occupancy, DeviceConfig, Launcher};
use gpu_solvers::{solve_batch, GpuAlgorithm, RdMode};
use tridiag_core::{
    dominant_batch, Generator, SystemBatch, TridiagError, TridiagonalSystem, Workload,
};

#[test]
fn non_power_of_two_sizes_rejected_by_every_gpu_solver() {
    let launcher = Launcher::gtx280();
    let batch: SystemBatch<f32> =
        Generator::new(1).batch(Workload::DiagonallyDominant, 48, 2).unwrap();
    for alg in [
        GpuAlgorithm::Cr,
        GpuAlgorithm::Pcr,
        GpuAlgorithm::Rd(RdMode::Plain),
        GpuAlgorithm::CrPcr { m: 16 },
        GpuAlgorithm::CrRd { m: 16, mode: RdMode::Plain },
        GpuAlgorithm::CrEvenOdd,
        GpuAlgorithm::CrGlobalOnly,
    ] {
        let err = solve_batch(&launcher, alg, &batch).unwrap_err();
        assert!(matches!(err, TridiagError::NotPowerOfTwo { n: 48 }), "{}: {err:?}", alg.name());
    }
}

#[test]
fn invalid_switch_points_rejected() {
    let launcher = Launcher::gtx280();
    let batch = dominant_batch::<f32>(1, 64, 2);
    for m in [0usize, 1, 3, 100, 128] {
        for alg in [GpuAlgorithm::CrPcr { m }, GpuAlgorithm::CrRd { m, mode: RdMode::Plain }] {
            let err = solve_batch(&launcher, alg, &batch).unwrap_err();
            assert!(
                matches!(err, TridiagError::InvalidIntermediateSize { n: 64, .. }),
                "{}: m={m} gave {err:?}",
                alg.name()
            );
        }
    }
}

#[test]
fn oversized_systems_exceed_shared_memory_except_global_path() {
    let launcher = Launcher::gtx280();
    let batch = dominant_batch::<f32>(1, 2048, 2);
    for alg in [GpuAlgorithm::Pcr, GpuAlgorithm::Rd(RdMode::Plain)] {
        let err = solve_batch(&launcher, alg, &batch).unwrap_err();
        // n = 2048 needs 2048 threads for PCR/RD (over the 512 cap) or
        // 40 KB of shared memory — either limit is a valid refusal.
        assert!(
            matches!(
                err,
                TridiagError::SharedMemExceeded { .. } | TridiagError::InvalidConfig { .. }
            ),
            "{}: {err:?}",
            alg.name()
        );
    }
    // CR at n=2048: 1024 threads also exceeds the block cap.
    assert!(solve_batch(&launcher, GpuAlgorithm::Cr, &batch).is_err());
    // The global-memory path handles it.
    let r = solve_batch(&launcher, GpuAlgorithm::CrGlobalOnly, &batch).unwrap();
    assert_eq!(r.solutions.first_non_finite(), None);
}

#[test]
fn f64_doubles_the_footprint_and_halves_the_max_size() {
    let launcher = Launcher::gtx280();
    // f32 at 512 fits...
    let b32 = dominant_batch::<f32>(1, 512, 1);
    assert!(solve_batch(&launcher, GpuAlgorithm::Cr, &b32).is_ok());
    // ...f64 at 512 does not (20 KB > 16 KB)...
    let b64 = dominant_batch::<f64>(1, 512, 1);
    let err = solve_batch(&launcher, GpuAlgorithm::Cr, &b64).unwrap_err();
    assert!(matches!(err, TridiagError::SharedMemExceeded { .. }));
    // ...but 256 does.
    let b64 = dominant_batch::<f64>(1, 256, 1);
    assert!(solve_batch(&launcher, GpuAlgorithm::Cr, &b64).is_ok());
}

#[test]
fn rd_overflow_is_detectable_not_silent() {
    let launcher = Launcher::gtx280();
    let batch = dominant_batch::<f32>(5, 512, 4);
    let r = solve_batch(&launcher, GpuAlgorithm::Rd(RdMode::Plain), &batch).unwrap();
    let bad = r.solutions.first_non_finite();
    assert!(bad.is_some(), "RD must overflow on this input");
    // The residual summary reports the same condition.
    let res = tridiag_core::residual::batch_residual(&batch, &r.solutions).unwrap();
    assert!(res.has_overflow());
    assert!(res.overflowed_systems > 0);
}

#[test]
fn zero_pivot_reported_with_row_index() {
    let sys = TridiagonalSystem::<f64>::new(
        vec![0.0, 1.0, 1.0, 0.0],
        vec![1.0, 1.0, 0.0, 1.0],
        vec![1.0, 1.0, 1.0, 0.0],
        vec![1.0; 4],
    )
    .unwrap();
    // Thomas breaks at row 1 (b[1] - c'[0] a[1] = 1 - 1 = 0).
    match cpu_solvers::thomas::solve(&sys) {
        Err(TridiagError::ZeroPivot { row }) => assert_eq!(row, 1),
        other => panic!("expected zero pivot, got {other:?}"),
    }
}

#[test]
fn mt_solver_surfaces_worker_errors() {
    let mut systems: Vec<TridiagonalSystem<f32>> =
        (0..8).map(|_| TridiagonalSystem::toeplitz(8, -1.0, 4.0, -1.0, 1.0).unwrap()).collect();
    systems[5].b[0] = 0.0;
    systems[5].c[0] = 0.0;
    let batch = SystemBatch::from_systems(&systems).unwrap();
    let err = MtSolver::new(4).solve_batch(&Thomas, &batch).unwrap_err();
    assert!(matches!(err, TridiagError::ZeroPivot { .. }));
    // Sequential path reports the same error.
    assert!(solve_batch_seq(&Thomas, &batch).is_err());
}

#[test]
fn occupancy_validates_device_limits() {
    let d = DeviceConfig::gtx280();
    assert!(occupancy(&d, 64, 513).is_err());
    assert!(occupancy(&d, 17 * 1024, 64).is_err());
    let ok = occupancy(&d, 1024, 64).unwrap();
    assert!(ok.blocks_per_sm >= 1);
}

#[test]
fn empty_and_degenerate_inputs() {
    assert!(SystemBatch::<f32>::from_systems(&[]).is_err());
    assert!(TridiagonalSystem::<f32>::new(vec![], vec![], vec![], vec![]).is_err());
    let launcher = Launcher::gtx280();
    // n = 1 is not a power-of-two >= 2 for the kernels.
    let one = TridiagonalSystem::<f32>::new(vec![0.0], vec![2.0], vec![0.0], vec![4.0]).unwrap();
    let batch = SystemBatch::from_systems(&[one]).unwrap();
    assert!(solve_batch(&launcher, GpuAlgorithm::Cr, &batch).is_err());
}

#[test]
fn mismatched_solution_shapes_panic_loudly() {
    let batch = dominant_batch::<f32>(1, 8, 2);
    let sol = tridiag_core::SolutionBatch::zeros_like(&batch);
    // Out-of-range system index panics (programming error, not a silent
    // wrong answer).
    let result = std::panic::catch_unwind(|| sol.system(2));
    assert!(result.is_err());
}

// ---------------------------------------------------------------------------
// Device-fault and service-rejection failure modes (the resilience layer).
// ---------------------------------------------------------------------------

#[test]
fn injected_device_faults_surface_as_typed_errors() {
    use gpu_sim::{FaultConfig, FaultPlan};
    use std::sync::Arc;

    // Every launch fails: the raw solver path must report DeviceFault with
    // the launch index, classified as retryable.
    let always = FaultConfig { seed: 1, launch_failure_rate: 1.0, ..FaultConfig::default() };
    let launcher = Launcher::gtx280().with_fault_plan(Arc::new(FaultPlan::new(always)));
    let batch = dominant_batch::<f32>(1, 64, 4);
    let err = solve_batch(&launcher, GpuAlgorithm::CrPcr { m: 16 }, &batch).unwrap_err();
    assert!(matches!(err, TridiagError::DeviceFault { .. }), "{err:?}");
    assert!(err.is_device_fault());
    assert!(err.to_string().contains("launch"), "{err}");

    // Device loss is sticky: every launch after the threshold fails, and
    // the error says so in so many words.
    let lost = FaultConfig { seed: 1, device_lost_after: Some(0), ..FaultConfig::default() };
    let launcher = Launcher::gtx280().with_fault_plan(Arc::new(FaultPlan::new(lost)));
    for _ in 0..2 {
        let err = solve_batch(&launcher, GpuAlgorithm::CrPcr { m: 16 }, &batch).unwrap_err();
        assert!(matches!(err, TridiagError::DeviceLost), "{err:?}");
        assert!(err.is_device_fault());
        assert!(err.to_string().contains("device lost"), "{err}");
    }

    // Non-device errors are not retryable device faults.
    assert!(!TridiagError::NotPowerOfTwo { n: 48 }.is_device_fault());
}

#[test]
fn past_deadlines_rejected_at_admission_with_a_specific_error() {
    use solver_service::{ServiceConfig, ServiceError, SolverService};

    let service: SolverService<f32> = SolverService::start(ServiceConfig::default());
    let system = Generator::new(3).system(Workload::DiagonallyDominant, 64);
    // Tick 0 is the clock epoch — always in the past by submission time.
    let err = service.submit_with_deadline(system, Some(0)).unwrap_err();
    assert!(matches!(err, ServiceError::DeadlineExceeded { .. }), "{err:?}");
    assert!(err.to_string().contains("unmeetable"), "{err}");
    drop(service.shutdown());
}

#[test]
fn queue_full_display_round_trips_the_drain_hint() {
    use solver_service::ServiceError;
    use std::time::Duration;

    // With a hint: the message carries the back-off in microseconds, the
    // analogue of HTTP 429's Retry-After.
    let hinted =
        ServiceError::QueueFull { capacity: 16, retry_after: Some(Duration::from_micros(750)) };
    let text = hinted.to_string();
    assert!(text.contains("capacity 16"), "{text}");
    assert!(text.contains("750 us"), "{text}");

    // Cold start (nothing completed yet): no hint, generic advice.
    let cold = ServiceError::QueueFull { capacity: 16, retry_after: None };
    assert!(cold.to_string().contains("retry later"), "{cold}");

    // Variants compare structurally — clients can match on them.
    assert_ne!(hinted, cold);
}
