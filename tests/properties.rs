//! Property-based tests (proptest) on the core invariants: random systems,
//! random shapes, random switch points.

use cpu_solvers::{solve_batch_seq, Gep, Thomas};
use gpu_sim::Launcher;
use gpu_solvers::{solve_batch, GpuAlgorithm};
use proptest::prelude::*;
use tridiag_core::residual::{l2_residual, max_abs_diff};
use tridiag_core::{SolutionBatch, SystemBatch, TridiagonalSystem};

/// Strategy: a random strictly diagonally dominant system of size `n`.
fn dominant_system(n: usize) -> impl Strategy<Value = TridiagonalSystem<f64>> {
    let off = prop::collection::vec(-1.0f64..1.0, n);
    let margins = prop::collection::vec(0.2f64..2.0, n);
    let rhs = prop::collection::vec(-10.0f64..10.0, n);
    (off.clone(), off, margins, rhs).prop_map(move |(mut a, mut c, m, d)| {
        a[0] = 0.0;
        c[n - 1] = 0.0;
        let b: Vec<f64> = (0..n).map(|i| (a[i].abs() + c[i].abs() + m[i]).copysign(1.0)).collect();
        TridiagonalSystem { a, b, c, d }
    })
}

/// Strategy: a power-of-two size in [2, 256].
fn pow2_size() -> impl Strategy<Value = usize> {
    (1u32..=8).prop_map(|e| 1usize << e)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn thomas_residual_is_tiny_on_dominant(sys in pow2_size().prop_flat_map(dominant_system)) {
        let n = sys.n();
        let x = cpu_solvers::thomas::solve(&sys).unwrap();
        let r = l2_residual(&sys, &x).unwrap();
        prop_assert!(r < 1e-9 * (n as f64), "residual {r}");
    }

    #[test]
    fn gep_matches_thomas_on_dominant(sys in pow2_size().prop_flat_map(dominant_system)) {
        let xt = cpu_solvers::thomas::solve(&sys).unwrap();
        let xg = cpu_solvers::gep::solve(&sys).unwrap();
        prop_assert!(max_abs_diff(&xt, &xg) < 1e-9);
    }

    #[test]
    fn gpu_cr_and_pcr_match_thomas(sys in pow2_size().prop_flat_map(dominant_system)) {
        let n = sys.n();
        let batch = SystemBatch::from_systems(&[sys]).unwrap();
        let reference = solve_batch_seq(&Thomas, &batch).unwrap();
        let launcher = Launcher::gtx280();
        for alg in [GpuAlgorithm::Cr, GpuAlgorithm::Pcr] {
            let r = solve_batch(&launcher, alg, &batch).unwrap();
            let diff = max_abs_diff(&r.solutions.x, &reference.x);
            prop_assert!(diff < 1e-9, "{} n={n}: {diff}", alg.name());
        }
    }

    #[test]
    fn hybrid_matches_for_every_valid_switch_point(
        sys in prop::sample::select(vec![8usize, 32, 64]).prop_flat_map(dominant_system),
        m_exp in 1u32..=5,
    ) {
        let n = sys.n();
        let m = (1usize << m_exp).min(n);
        let batch = SystemBatch::from_systems(&[sys]).unwrap();
        let reference = solve_batch_seq(&Thomas, &batch).unwrap();
        let launcher = Launcher::gtx280();
        let r = solve_batch(&launcher, GpuAlgorithm::CrPcr { m }, &batch).unwrap();
        let diff = max_abs_diff(&r.solutions.x, &reference.x);
        prop_assert!(diff < 1e-9, "n={n} m={m}: {diff}");
    }

    #[test]
    fn pivoting_solver_handles_scrambled_rows(
        n in prop::sample::select(vec![3usize, 5, 8, 13, 32]),
        seed in any::<u64>(),
    ) {
        // Random permutation-ish systems with occasional zero diagonals
        // that force interchanges; GEP must keep the residual tiny.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut a: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mut c: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b: Vec<f64> = (0..n)
            .map(|_| if rng.gen_bool(0.25) { 0.0 } else { rng.gen_range(-2.0..2.0) })
            .collect();
        let d: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        a[0] = 0.0;
        c[n - 1] = 0.0;
        let sys = TridiagonalSystem { a, b, c, d };
        match cpu_solvers::gep::solve(&sys) {
            Ok(x) => {
                let r = l2_residual(&sys, &x).unwrap();
                // Pivoted elimination keeps the scaled residual small on
                // any nonsingular input.
                prop_assert!(r < 1e-6, "residual {r}");
            }
            // Exactly singular draws are legitimately rejected.
            Err(tridiag_core::TridiagError::ZeroPivot { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }

    #[test]
    fn batch_layout_round_trips(
        n in prop::sample::select(vec![2usize, 4, 16]),
        count in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut gen = tridiag_core::Generator::new(seed);
        let systems: Vec<TridiagonalSystem<f64>> =
            (0..count).map(|_| gen.system(tridiag_core::Workload::DiagonallyDominant, n)).collect();
        let batch = SystemBatch::from_systems(&systems).unwrap();
        for (i, sys) in systems.iter().enumerate() {
            prop_assert_eq!(&batch.system(i), sys);
        }
        let sol = SolutionBatch::zeros_like(&batch);
        prop_assert_eq!(sol.x.len(), n * count);
    }

    #[test]
    fn manufactured_solutions_are_recovered(
        sys in prop::sample::select(vec![4usize, 16, 64]).prop_flat_map(dominant_system),
        scale in 0.1f64..10.0,
    ) {
        let n = sys.n();
        let x_exact: Vec<f64> = (0..n).map(|i| scale * ((i as f64) * 0.7).cos()).collect();
        let sys = sys.with_exact_solution(&x_exact).unwrap();
        let batch = SystemBatch::from_systems(&[sys]).unwrap();
        let launcher = Launcher::gtx280();
        let r = solve_batch(&launcher, GpuAlgorithm::Pcr, &batch).unwrap();
        let diff = max_abs_diff(r.solutions.system(0), &x_exact);
        prop_assert!(diff < 1e-8 * scale.max(1.0), "diff {diff}");
    }

    #[test]
    fn gep_equals_dense_gaussian_elimination(n in 2usize..9, seed in any::<u64>()) {
        // Cross-validate GEP against a dense partial-pivoting solve on
        // small matrices.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut a: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mut c: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..2.0)).collect();
        let d: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        a[0] = 0.0;
        c[n - 1] = 0.0;
        let sys = TridiagonalSystem { a, b, c, d };

        let mut dense = sys.to_dense();
        let mut rhs = sys.d.clone();
        // Dense Gaussian elimination with partial pivoting.
        for col in 0..n {
            let piv = (col..n).max_by(|&i, &j| {
                dense[i][col].abs().partial_cmp(&dense[j][col].abs()).unwrap()
            }).unwrap();
            dense.swap(col, piv);
            rhs.swap(col, piv);
            prop_assume!(dense[col][col].abs() > 1e-12);
            for row in col + 1..n {
                let f = dense[row][col] / dense[col][col];
                for k in col..n {
                    dense[row][k] -= f * dense[col][k];
                }
                rhs[row] -= f * rhs[col];
            }
        }
        let mut x_dense = vec![0.0f64; n];
        for row in (0..n).rev() {
            let mut v = rhs[row];
            for k in row + 1..n {
                v -= dense[row][k] * x_dense[k];
            }
            x_dense[row] = v / dense[row][row];
        }

        let x_gep = cpu_solvers::gep::solve(&sys).unwrap();
        prop_assert!(max_abs_diff(&x_gep, &x_dense) < 1e-8);
    }

    #[test]
    fn sequential_batch_matches_per_system_solves(
        count in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut gen = tridiag_core::Generator::new(seed);
        let batch: SystemBatch<f64> =
            gen.batch(tridiag_core::Workload::DiagonallyDominant, 16, count).unwrap();
        let all = solve_batch_seq(&Gep, &batch).unwrap();
        for i in 0..count {
            let sys = batch.system(i);
            let x = cpu_solvers::gep::solve(&sys).unwrap();
            prop_assert!(max_abs_diff(all.system(i), &x) == 0.0);
        }
    }
}

// ---------------------------------------------------------------------------
// Extension solvers: periodic and block systems.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn periodic_gpu_solutions_satisfy_the_cyclic_system(
        n_exp in 2u32..7,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let n = 1usize << n_exp;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut c: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> =
            (0..n).map(|i| a[i].abs() + c[i].abs() + rng.gen_range(0.5..1.5)).collect();
        let d: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        a[0] = rng.gen_range(-0.5..0.5);
        c[n - 1] = rng.gen_range(-0.5..0.5);
        let sys = tridiag_core::PeriodicTridiagonalSystem::new(a, b, c, d).unwrap();

        let launcher = Launcher::gtx280();
        let report = gpu_solvers::solve_periodic_batch(
            &launcher,
            GpuAlgorithm::Pcr,
            std::slice::from_ref(&sys),
        )
        .unwrap();
        let r = sys.l2_residual(report.solutions.system(0)).unwrap();
        prop_assert!(r < 1e-9, "residual {r}");
        // And it matches the CPU cyclic solver.
        let x_cpu = cpu_solvers::cyclic::solve(&sys).unwrap();
        prop_assert!(max_abs_diff(report.solutions.system(0), &x_cpu) < 1e-9);
    }

    #[test]
    fn block_cr_matches_block_thomas_on_random_dominant(
        n_exp in 1u32..7,
        seed in any::<u64>(),
    ) {
        let n = 1usize << n_exp;
        let sys = tridiag_core::BlockTridiagonalSystem::<f64>::random_dominant(seed, n);
        let launcher = Launcher::gtx280();
        let report =
            gpu_solvers::solve_block_batch(&launcher, std::slice::from_ref(&sys)).unwrap();
        let x_ref = cpu_solvers::block_thomas::solve(&sys).unwrap();
        for i in 0..n {
            for comp in 0..2 {
                prop_assert!(
                    (report.solutions[0][i][comp] - x_ref[i][comp]).abs() < 1e-8,
                    "row {i}.{comp}"
                );
            }
        }
    }

    #[test]
    fn partition_method_matches_thomas(
        n in 8usize..600,
        p in 1usize..9,
        seed in any::<u64>(),
    ) {
        let mut gen = tridiag_core::Generator::new(seed);
        let sys: TridiagonalSystem<f64> =
            gen.system(tridiag_core::Workload::DiagonallyDominant, n);
        let x_ref = cpu_solvers::thomas::solve(&sys).unwrap();
        let x = cpu_solvers::partition::solve(&sys, p).unwrap();
        prop_assert!(max_abs_diff(&x, &x_ref) < 1e-9);
    }

    #[test]
    fn condition_estimate_never_exceeds_dense_truth(
        n in 3usize..20,
        seed in any::<u64>(),
    ) {
        let mut gen = tridiag_core::Generator::new(seed);
        let sys: TridiagonalSystem<f64> =
            gen.system(tridiag_core::Workload::DiagonallyDominant, n);
        let est = cpu_solvers::inverse_norm1_estimate(&sys).unwrap();
        // Exact by column solves.
        let mut exact = 0.0f64;
        for j in 0..n {
            let mut probe = sys.clone();
            probe.d = vec![0.0; n];
            probe.d[j] = 1.0;
            let col = cpu_solvers::gep::solve(&probe).unwrap();
            exact = exact.max(col.iter().map(|v| v.abs()).sum());
        }
        prop_assert!(est <= exact * (1.0 + 1e-9), "est {est} > exact {exact}");
        prop_assert!(est >= exact / 10.0, "est {est} too far below exact {exact}");
    }
}
