//! Property test: every production solver is sanitizer-clean.
//!
//! Enforce-mode launches panic on any `Error`-severity diagnostic (races,
//! hazards, OOB, uninitialized reads), so simply solving under an enforce
//! launcher is the assertion. Warnings (bank conflicts, RD's non-finite
//! overflow) are *expected* for some algorithms and must not trip enforce.

use gpu_sim::{Launcher, SanitizeOptions};
use gpu_solvers::{solve_batch, GpuAlgorithm, RdMode};
use proptest::prelude::*;
use tridiag_core::{SystemBatch, TridiagonalSystem};

/// Strategy: a random strictly diagonally dominant system of size `n`.
fn dominant_system(n: usize) -> impl Strategy<Value = TridiagonalSystem<f64>> {
    let off = prop::collection::vec(-1.0f64..1.0, n);
    let margins = prop::collection::vec(0.2f64..2.0, n);
    let rhs = prop::collection::vec(-10.0f64..10.0, n);
    (off.clone(), off, margins, rhs).prop_map(move |(mut a, mut c, m, d)| {
        a[0] = 0.0;
        c[n - 1] = 0.0;
        let b: Vec<f64> = (0..n).map(|i| (a[i].abs() + c[i].abs() + m[i]).copysign(1.0)).collect();
        TridiagonalSystem { a, b, c, d }
    })
}

/// Power-of-two size in [4, 256] (256 is the largest f64 system whose five
/// shared arrays fit the GTX 280's 16 KB of shared memory).
fn pow2_size() -> impl Strategy<Value = usize> {
    (2u32..=8).prop_map(|e| 1usize << e)
}

fn production_algorithms(n: usize) -> Vec<GpuAlgorithm> {
    let m = (n / 2).max(2);
    vec![
        GpuAlgorithm::Cr,
        GpuAlgorithm::Pcr,
        GpuAlgorithm::Rd(RdMode::Plain),
        GpuAlgorithm::Rd(RdMode::Rescaled),
        GpuAlgorithm::CrPcr { m },
        GpuAlgorithm::CrRd { m, mode: RdMode::Plain },
        GpuAlgorithm::CrGlobalOnly,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn production_solvers_report_zero_errors_under_enforce(
        sys in pow2_size().prop_flat_map(dominant_system)
    ) {
        let n = sys.n();
        // Two identical systems -> two blocks, so cross-block sanitation is
        // exercised too.
        let batch = SystemBatch::from_systems(&[sys.clone(), sys]).unwrap();
        let launcher = Launcher::gtx280().with_sanitize(SanitizeOptions::enforce());
        for alg in production_algorithms(n) {
            // Enforce mode panics on any Error diagnostic — reaching the
            // assert below already proves cleanliness; the count makes the
            // property explicit.
            let report = match solve_batch(&launcher, alg, &batch) {
                Ok(r) => r,
                // Some f64 configurations legitimately exceed the GTX 280's
                // 16 KB of shared memory (e.g. rescaled RD at n = 256) —
                // that is a config error, not a sanitizer finding.
                Err(tridiag_core::TridiagError::SharedMemExceeded { .. }) => continue,
                Err(e) => return Err(TestCaseError::fail(format!("{}: {e:?}", alg.name()))),
            };
            prop_assert!(
                report.sanitizer_error_count() == 0,
                "{} n={}: {:?}",
                alg.name(),
                n,
                report.diagnostics
            );
        }
    }
}

#[test]
fn paper_five_clean_at_full_block_size_f32() {
    // The paper's headline configuration: 512-unknown f32 systems.
    let batch = tridiag_core::dominant_batch::<f32>(5, 512, 4);
    let launcher = Launcher::gtx280().with_sanitize(SanitizeOptions::enforce());
    for alg in [
        GpuAlgorithm::Cr,
        GpuAlgorithm::Pcr,
        GpuAlgorithm::Rd(RdMode::Plain),
        GpuAlgorithm::CrPcr { m: 64 },
        GpuAlgorithm::CrRd { m: 64, mode: RdMode::Plain },
        GpuAlgorithm::CrGlobalOnly,
    ] {
        let report = solve_batch(&launcher, alg, &batch).unwrap();
        assert_eq!(report.sanitizer_error_count(), 0, "{}: {:?}", alg.name(), report.diagnostics);
    }
}
