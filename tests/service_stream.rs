//! End-to-end integration test for the serving layer: a large open-loop
//! stream of mixed-size, mixed-workload requests through [`SolverService`].
//!
//! What this certifies (the ISSUE's acceptance bar for the service):
//! * **No request is lost or duplicated** — every ticket resolves exactly
//!   once and the response ids are a permutation of the submitted ids.
//! * **Every answer is verified** — the reported residual agrees with an
//!   independent recomputation and is within the service's acceptance
//!   threshold for the well-conditioned workloads.
//! * **The metrics books balance** — dispatch counts and the occupancy
//!   histogram each sum to exactly the number of completed requests, and
//!   admission arithmetic (`submitted = completed`, `rejected` counted
//!   separately) holds under backpressure retries.

use solver_service::{ServiceConfig, ServiceError, SolverService, Ticket};
use std::collections::{BTreeMap, HashSet};
use std::time::Duration;
use tridiag_core::residual::l2_residual;
use tridiag_core::{Generator, TridiagonalSystem, Workload};

/// Mixed sizes: pow2 (GPU-eligible) plus one non-pow2 size the planner
/// must route to the CPU path.
const SIZES: [usize; 5] = [32, 64, 128, 256, 48];

/// Mixed conditioning: two workloads the kernels handle natively plus the
/// close-values set that exercises the verify-and-repair safety net.
const WORKLOADS: [Workload; 3] =
    [Workload::DiagonallyDominant, Workload::Poisson, Workload::CloseValues];

const TOTAL: usize = 1200;

#[test]
fn open_loop_stream_serves_every_request_exactly_once() {
    let config = ServiceConfig {
        queue_capacity: 256,
        target_batch: 32,
        max_linger: Duration::from_millis(2),
        ..ServiceConfig::default()
    };
    let service: SolverService<f32> = SolverService::start(config);
    let mut generator = Generator::new(0xD15_0A7C4);

    // Submit open-loop, retrying the *same* request on backpressure so a
    // reject never loses work. Keep each system keyed by its ticket id for
    // independent verification later.
    let mut tickets: Vec<Ticket<f32>> = Vec::with_capacity(TOTAL);
    let mut submitted: BTreeMap<u64, (TridiagonalSystem<f32>, Workload)> = BTreeMap::new();
    for i in 0..TOTAL {
        let n = SIZES[i % SIZES.len()];
        let workload = WORKLOADS[i % WORKLOADS.len()];
        let system = generator.system(workload, n);
        let ticket = loop {
            match service.submit(system.clone()) {
                Ok(ticket) => break ticket,
                // Back off by the service's own drain-rate hint when it
                // offers one; yield otherwise (cold start, nothing done yet).
                Err(ServiceError::QueueFull { retry_after: Some(hint), .. }) => {
                    std::thread::sleep(hint)
                }
                Err(ServiceError::QueueFull { .. }) => std::thread::yield_now(),
                Err(e) => panic!("service refused a valid request: {e}"),
            }
        };
        assert!(
            submitted.insert(ticket.id(), (system, workload)).is_none(),
            "service issued a duplicate ticket id"
        );
        tickets.push(ticket);
    }

    // Collect every response. `Ticket::wait` consumes the ticket, so each
    // response can be taken at most once; the id-set equality below proves
    // none were lost and none cross-delivered.
    let mut seen: HashSet<u64> = HashSet::with_capacity(TOTAL);
    for ticket in tickets {
        let id = ticket.id();
        let response = ticket.wait();
        assert_eq!(response.id, id, "response delivered to the wrong ticket");
        assert!(seen.insert(response.id), "duplicate response for id {id}");

        let (system, workload) = &submitted[&id];
        let n = system.n();
        assert_eq!(response.x.len(), n, "solution length mismatch at n={n}");
        assert!(response.batch_occupancy >= 1);
        assert!(!response.engine.is_empty());

        // The reported residual must agree with an independent recompute.
        let recomputed = l2_residual(system, &response.x).unwrap();
        assert!(
            (recomputed - response.residual).abs() <= 1e-6 * (1.0 + recomputed),
            "reported residual {} != recomputed {recomputed} (id {id})",
            response.residual
        );

        // Well-conditioned workloads must meet the service's acceptance
        // threshold outright; close-values may lean on GEP repair but must
        // still come back with a small relative residual.
        let d_norm: f64 = system.d.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt();
        let threshold = 100.0 * d_norm.max(1.0) * (f32::EPSILON as f64) * n as f64;
        match workload {
            Workload::CloseValues => assert!(
                recomputed <= 1e-2 * d_norm.max(1.0),
                "close-values residual {recomputed} too large (id {id}, n={n})"
            ),
            _ => assert!(
                recomputed <= threshold,
                "residual {recomputed} > threshold {threshold} (id {id}, n={n}, {workload:?})"
            ),
        }
    }
    assert_eq!(seen.len(), TOTAL, "lost responses");
    assert_eq!(
        seen,
        submitted.keys().copied().collect::<HashSet<u64>>(),
        "response ids are not a permutation of submitted ids"
    );

    // The metrics books must balance exactly.
    let snap = service.shutdown();
    assert_eq!(snap.completed, TOTAL as u64);
    assert_eq!(snap.submitted, TOTAL as u64, "retries must not inflate admissions");
    assert_eq!(snap.queue_depth, 0);
    assert_eq!(
        snap.dispatched_total(),
        TOTAL as u64,
        "dispatch counts must sum to the request count: {:?}",
        snap.dispatch_systems
    );
    assert_eq!(
        snap.occupancy_total(),
        TOTAL as u64,
        "occupancy histogram must sum to the request count: {:?}",
        snap.occupancy_systems
    );
    assert!(snap.flushes_total() >= 1);
    assert!(snap.latency_p50_us > 0 && snap.latency_p50_us <= snap.latency_p99_us);

    // The non-pow2 size class can never run on a shared-memory GPU kernel;
    // its systems must show up under a CPU engine spelling.
    let cpu_systems: u64 = snap
        .dispatch_systems
        .iter()
        .filter(|(engine, _)| engine.starts_with("cpu-"))
        .map(|(_, count)| count)
        .sum();
    assert!(
        cpu_systems >= (TOTAL / SIZES.len()) as u64,
        "expected at least the n=48 size class on CPU engines: {:?}",
        snap.dispatch_systems
    );

    // The snapshot serialises; spot-check the schema keys documented in
    // DESIGN.md.
    let json = snap.to_json();
    for key in
        ["\"completed\":", "\"dispatch_systems\":", "\"occupancy_systems\":", "\"latency_p99_us\":"]
    {
        assert!(json.contains(key), "snapshot JSON missing {key}: {json}");
    }
}
