//! Exhaustive small-size cross-validation: every solver in the workspace
//! against a dense partial-pivoting reference, over many random systems.

use cpu_solvers::{partition, solve_batch_seq, Gep, MtSolver, Thomas};
use gpu_sim::Launcher;
use gpu_solvers::{solve_batch, solve_batch_coarse, GpuAlgorithm, RdMode};
use rand::{Rng, SeedableRng};
use tridiag_core::{SystemBatch, TridiagonalSystem};

/// Dense Gaussian elimination with partial pivoting — the oracle.
fn dense_solve(sys: &TridiagonalSystem<f64>) -> Vec<f64> {
    let n = sys.n();
    let mut m = sys.to_dense();
    let mut rhs = sys.d.clone();
    for col in 0..n {
        let piv = (col..n)
            .max_by(|&i, &j| m[i][col].abs().partial_cmp(&m[j][col].abs()).unwrap())
            .unwrap();
        m.swap(col, piv);
        rhs.swap(col, piv);
        assert!(m[col][col].abs() > 1e-13, "oracle hit a singular draw");
        for row in col + 1..n {
            let f = m[row][col] / m[col][col];
            for k in col..n {
                m[row][k] -= f * m[col][k];
            }
            rhs[row] -= f * rhs[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut v = rhs[row];
        for k in row + 1..n {
            v -= m[row][k] * x[k];
        }
        x[row] = v / m[row][row];
    }
    x
}

fn random_dominant(rng: &mut rand::rngs::StdRng, n: usize) -> TridiagonalSystem<f64> {
    let mut a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut c: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    a[0] = 0.0;
    c[n - 1] = 0.0;
    let b: Vec<f64> =
        (0..n).map(|i| (a[i].abs() + c[i].abs() + rng.gen_range(0.3..1.5)) * sign(rng)).collect();
    let d: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
    TridiagonalSystem { a, b, c, d }
}

fn sign(rng: &mut rand::rngs::StdRng) -> f64 {
    if rng.gen_bool(0.5) {
        -1.0
    } else {
        1.0
    }
}

fn close(x: &[f64], y: &[f64], tol: f64, label: &str) {
    for (i, (p, q)) in x.iter().zip(y).enumerate() {
        assert!((p - q).abs() < tol, "{label}: index {i}, {p} vs {q}");
    }
}

#[test]
fn every_solver_agrees_with_the_dense_oracle() {
    let launcher = Launcher::gtx280();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xD1A60);
    for n in [2usize, 4, 8, 16] {
        for trial in 0..12 {
            let sys = random_dominant(&mut rng, n);
            let oracle = dense_solve(&sys);
            let label = |s: &str| format!("{s} n={n} trial={trial}");

            // CPU solvers.
            close(&cpu_solvers::thomas::solve(&sys).unwrap(), &oracle, 1e-9, &label("thomas"));
            close(&cpu_solvers::gep::solve(&sys).unwrap(), &oracle, 1e-9, &label("gep"));
            if n >= 4 {
                close(&partition::solve(&sys, 2).unwrap(), &oracle, 1e-9, &label("partition"));
            }
            // Sequential references of the parallel algorithms.
            let mut x = vec![0.0; n];
            cpu_solvers::reference::cr::solve_into(&sys.a, &sys.b, &sys.c, &sys.d, &mut x).unwrap();
            close(&x, &oracle, 1e-8, &label("cr-ref"));
            cpu_solvers::reference::pcr::solve_into(&sys.a, &sys.b, &sys.c, &sys.d, &mut x)
                .unwrap();
            close(&x, &oracle, 1e-8, &label("pcr-ref"));

            // GPU solvers (f64 for a strict comparison).
            let batch = SystemBatch::from_systems(std::slice::from_ref(&sys)).unwrap();
            let mut algs = vec![GpuAlgorithm::Cr, GpuAlgorithm::Pcr, GpuAlgorithm::CrGlobalOnly];
            if n >= 4 {
                algs.push(GpuAlgorithm::CrPcr { m: n / 2 });
                algs.push(GpuAlgorithm::CrEvenOdd);
            }
            for alg in algs {
                let r = solve_batch(&launcher, alg, &batch).unwrap();
                close(r.solutions.system(0), &oracle, 1e-8, &label(alg.name()));
            }
            let r = solve_batch_coarse(&launcher, &batch).unwrap();
            close(r.solutions.system(0), &oracle, 1e-9, &label("coarse"));
        }
    }
}

#[test]
fn rd_agrees_on_gentle_systems() {
    // RD needs nonzero super-diagonals and bounded chain growth; use rows
    // with comparable magnitudes.
    let launcher = Launcher::gtx280();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xF00D);
    for n in [2usize, 4, 8, 16] {
        for trial in 0..8 {
            let base: Vec<f64> = (0..n).map(|_| rng.gen_range(0.8..1.2)).collect();
            let mut a: Vec<f64> = base.iter().map(|&v| v * rng.gen_range(0.9..1.1)).collect();
            let mut c: Vec<f64> = base.iter().map(|&v| v * rng.gen_range(0.9..1.1)).collect();
            a[0] = 0.0;
            c[n - 1] = 0.0;
            let b: Vec<f64> = base.iter().map(|&v| 3.0 * v).collect();
            let d: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let sys = TridiagonalSystem { a, b, c, d };
            let oracle = dense_solve(&sys);
            let batch = SystemBatch::from_systems(std::slice::from_ref(&sys)).unwrap();
            for alg in [GpuAlgorithm::Rd(RdMode::Plain), GpuAlgorithm::Rd(RdMode::Rescaled)] {
                let r = solve_batch(&launcher, alg, &batch).unwrap();
                for (i, (p, q)) in r.solutions.system(0).iter().zip(&oracle).enumerate() {
                    assert!(
                        (p - q).abs() < 1e-7,
                        "{} n={n} trial={trial} i={i}: {p} vs {q}",
                        alg.name()
                    );
                }
            }
        }
    }
}

#[test]
fn batch_drivers_agree_with_single_solves() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
    let systems: Vec<TridiagonalSystem<f64>> =
        (0..9).map(|_| random_dominant(&mut rng, 16)).collect();
    let batch = SystemBatch::from_systems(&systems).unwrap();
    let seq = solve_batch_seq(&Thomas, &batch).unwrap();
    let gep_seq = solve_batch_seq(&Gep, &batch).unwrap();
    let mt = MtSolver::new(3).solve_batch(&Thomas, &batch).unwrap();
    for (k, sys) in systems.iter().enumerate() {
        let oracle = dense_solve(sys);
        close(seq.system(k), &oracle, 1e-9, "seq batch");
        close(gep_seq.system(k), &oracle, 1e-9, "gep batch");
        close(mt.system(k), &oracle, 1e-9, "mt batch");
    }
}
