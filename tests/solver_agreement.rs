//! Cross-crate integration: every GPU solver agrees with the direct CPU
//! solvers on workloads where it is numerically applicable.

use cpu_solvers::{solve_batch_seq, Gep, MtSolver, Thomas};
use gpu_sim::Launcher;
use gpu_solvers::{solve_batch, GpuAlgorithm, RdMode};
use tridiag_core::residual::max_abs_diff;
use tridiag_core::{Generator, Real, SystemBatch, Workload};

fn batch<T: Real>(seed: u64, workload: Workload, n: usize, count: usize) -> SystemBatch<T> {
    Generator::new(seed).batch(workload, n, count).expect("gen")
}

/// Solvers that are stable on diagonally dominant systems (paper §5.4).
fn dominant_safe(n: usize) -> Vec<GpuAlgorithm> {
    let mut algs = vec![GpuAlgorithm::Cr, GpuAlgorithm::Pcr, GpuAlgorithm::CrGlobalOnly];
    if n >= 4 {
        algs.push(GpuAlgorithm::CrPcr { m: n / 2 });
        algs.push(GpuAlgorithm::CrPcr { m: 2 });
        algs.push(GpuAlgorithm::CrEvenOdd);
    }
    if n >= 16 {
        algs.push(GpuAlgorithm::CrPcr { m: n / 4 });
    }
    algs
}

#[test]
fn gpu_solvers_match_thomas_on_dominant_f32() {
    let launcher = Launcher::gtx280();
    for n in [2usize, 4, 8, 32, 128, 512] {
        let b: SystemBatch<f32> = batch(11, Workload::DiagonallyDominant, n, 6);
        let reference = solve_batch_seq(&Thomas, &b).expect("thomas");
        for alg in dominant_safe(n) {
            if matches!(alg, GpuAlgorithm::CrEvenOdd) && n < 4 {
                continue;
            }
            let r = solve_batch(&launcher, alg, &b).expect("gpu solve");
            let diff = max_abs_diff(&r.solutions.x, &reference.x);
            assert!(diff < 5e-4, "{} at n={n}: diff {diff}", alg.name());
        }
    }
}

#[test]
fn gpu_solvers_match_thomas_on_dominant_f64() {
    let launcher = Launcher::gtx280();
    // n = 256 is the largest f64 size fitting shared memory on GT200.
    for n in [8usize, 64, 256] {
        let b: SystemBatch<f64> = batch(13, Workload::DiagonallyDominant, n, 4);
        let reference = solve_batch_seq(&Thomas, &b).expect("thomas");
        for alg in dominant_safe(n) {
            let r = solve_batch(&launcher, alg, &b).expect("gpu solve");
            let diff = max_abs_diff(&r.solutions.x, &reference.x);
            assert!(diff < 1e-10, "{} at n={n}: diff {diff}", alg.name());
        }
    }
}

#[test]
fn rd_family_matches_on_close_values_f64() {
    let launcher = Launcher::gtx280();
    for n in [4usize, 32, 128] {
        let b: SystemBatch<f64> = batch(17, Workload::CloseValues, n, 4);
        let reference = solve_batch_seq(&Gep, &b).expect("gep");
        for alg in [
            GpuAlgorithm::Rd(RdMode::Plain),
            GpuAlgorithm::Rd(RdMode::Rescaled),
            GpuAlgorithm::CrRd { m: (n / 2).max(2), mode: RdMode::Plain },
        ] {
            if n < 4 && matches!(alg, GpuAlgorithm::CrRd { .. }) {
                continue;
            }
            let r = solve_batch(&launcher, alg, &b).expect("gpu solve");
            let diff = max_abs_diff(&r.solutions.x, &reference.x);
            assert!(diff < 1e-6, "{} at n={n}: diff {diff}", alg.name());
        }
    }
}

#[test]
fn poisson_stencil_solved_by_everyone_f64() {
    // SPD: "the cyclic reduction algorithm is stable without pivoting for
    // ... symmetric and positive definite matrices".
    let launcher = Launcher::gtx280();
    let n = 128usize;
    let b: SystemBatch<f64> = batch(19, Workload::Poisson, n, 2);
    let reference = solve_batch_seq(&Thomas, &b).expect("thomas");
    for alg in [
        GpuAlgorithm::Cr,
        GpuAlgorithm::Pcr,
        GpuAlgorithm::CrPcr { m: 32 },
        GpuAlgorithm::Rd(RdMode::Plain),
        GpuAlgorithm::CrRd { m: 32, mode: RdMode::Plain },
        GpuAlgorithm::CrEvenOdd,
        GpuAlgorithm::CrGlobalOnly,
    ] {
        let r = solve_batch(&launcher, alg, &b).expect("gpu solve");
        let diff = max_abs_diff(&r.solutions.x, &reference.x);
        assert!(diff < 1e-8, "{}: diff {diff}", alg.name());
    }
}

#[test]
fn mt_solver_bitwise_matches_sequential() {
    let b: SystemBatch<f32> = batch(23, Workload::DiagonallyDominant, 64, 33);
    let seq = solve_batch_seq(&Thomas, &b).expect("seq");
    for threads in [1usize, 2, 4, 7] {
        let mt = MtSolver::new(threads).solve_batch(&Thomas, &b).expect("mt");
        assert_eq!(seq.x, mt.x, "threads={threads}");
    }
}

#[test]
fn hybrid_sweep_is_numerically_stable_across_switch_points() {
    let launcher = Launcher::gtx280();
    let n = 256usize;
    let b: SystemBatch<f64> = batch(29, Workload::DiagonallyDominant, n, 2);
    let reference = solve_batch_seq(&Thomas, &b).expect("thomas");
    let mut m = 2usize;
    while m <= n {
        let r = solve_batch(&launcher, GpuAlgorithm::CrPcr { m }, &b).expect("solve");
        let diff = max_abs_diff(&r.solutions.x, &reference.x);
        assert!(diff < 1e-10, "m={m}: diff {diff}");
        m *= 2;
    }
}

#[test]
fn every_solver_reports_consistent_batch_shapes() {
    let launcher = Launcher::gtx280();
    let b: SystemBatch<f32> = batch(31, Workload::DiagonallyDominant, 64, 5);
    for alg in [GpuAlgorithm::Cr, GpuAlgorithm::Pcr, GpuAlgorithm::Rd(RdMode::Plain)] {
        let r = solve_batch(&launcher, alg, &b).expect("solve");
        assert_eq!(r.solutions.n(), 64);
        assert_eq!(r.solutions.count(), 5);
        assert_eq!(r.solutions.x.len(), 320);
        assert_eq!(r.timing.blocks, 5);
        assert!(r.timing.kernel_ms > 0.0);
        assert!(r.timing.transfer_ms > 0.0);
    }
}
