//! Validates the simulator's measured counters against the paper's Table 1
//! complexity model across system sizes — the strongest evidence the
//! kernels implement the algorithms the paper describes.

use gpu_sim::Launcher;
use gpu_solvers::{solve_batch, GpuAlgorithm, RdMode};
use tridiag_core::{dominant_batch, table1, ComplexityRow};

fn measure(alg: GpuAlgorithm, n: usize) -> gpu_sim::KernelStats {
    let launcher = Launcher::gtx280();
    let batch = dominant_batch::<f32>(3, n, 1);
    solve_batch(&launcher, alg, &batch).expect("solve").stats
}

fn analytic(alg: GpuAlgorithm, n: usize) -> ComplexityRow {
    table1(alg.paper_algorithm().expect("paper algorithm"), n).expect("table1")
}

fn algo_steps(stats: &gpu_sim::KernelStats) -> u64 {
    stats.steps.iter().filter(|s| !s.phase.is_straight_line()).count() as u64
}

#[test]
fn cr_step_counts_exact() {
    for n in [4usize, 16, 64, 256, 512] {
        let stats = measure(GpuAlgorithm::Cr, n);
        assert_eq!(algo_steps(&stats), analytic(GpuAlgorithm::Cr, n).steps, "n={n}");
    }
}

#[test]
fn pcr_step_counts_exact() {
    for n in [4usize, 16, 64, 256, 512] {
        let stats = measure(GpuAlgorithm::Pcr, n);
        assert_eq!(algo_steps(&stats), analytic(GpuAlgorithm::Pcr, n).steps, "n={n}");
    }
}

#[test]
fn rd_step_counts_exact() {
    for n in [4usize, 16, 64, 256, 512] {
        let stats = measure(GpuAlgorithm::Rd(RdMode::Plain), n);
        assert_eq!(algo_steps(&stats), analytic(GpuAlgorithm::Rd(RdMode::Plain), n).steps, "n={n}");
    }
}

#[test]
fn hybrid_step_counts_within_one_of_paper_formula() {
    // The paper's hybrid step formulas carry a +-1 bookkeeping offset (its
    // own CR/PCR counts are inconsistent at the endpoints), so allow 1.
    for (n, m) in [(64usize, 16usize), (256, 64), (512, 256)] {
        let stats = measure(GpuAlgorithm::CrPcr { m }, n);
        let expect = analytic(GpuAlgorithm::CrPcr { m }, n).steps;
        let got = algo_steps(&stats);
        assert!(got.abs_diff(expect) <= 1, "CR+PCR n={n} m={m}: {got} vs {expect}");
    }
    for (n, m) in [(64usize, 16usize), (256, 64), (512, 128)] {
        let stats = measure(GpuAlgorithm::CrRd { m, mode: RdMode::Plain }, n);
        let expect = analytic(GpuAlgorithm::CrRd { m, mode: RdMode::Plain }, n).steps;
        let got = algo_steps(&stats);
        assert!(got.abs_diff(expect) <= 1, "CR+RD n={n} m={m}: {got} vs {expect}");
    }
}

#[test]
fn global_accesses_exactly_5n() {
    // "For all solvers, the global memory communication happens only twice
    // for reading input data and writing output results" — 4n in + n out.
    for n in [4usize, 64, 512] {
        for alg in [
            GpuAlgorithm::Cr,
            GpuAlgorithm::Pcr,
            GpuAlgorithm::Rd(RdMode::Plain),
            GpuAlgorithm::CrPcr { m: (n / 2).max(2) },
        ] {
            let stats = measure(alg, n);
            assert_eq!(stats.global_accesses, 5 * n as u64, "{} n={n}", alg.name());
        }
    }
}

#[test]
fn work_scaling_matches_asymptotics() {
    // CR is O(n): ops(4x n) ~ 4x. PCR/RD are O(n log n): ops(4x n) ~ 4x *
    // (log 4n / log n).
    let cr_small = measure(GpuAlgorithm::Cr, 128).total_ops() as f64;
    let cr_large = measure(GpuAlgorithm::Cr, 512).total_ops() as f64;
    let r = cr_large / cr_small;
    assert!((3.5..4.6).contains(&r), "CR scaling {r}");

    let pcr_small = measure(GpuAlgorithm::Pcr, 128).total_ops() as f64;
    let pcr_large = measure(GpuAlgorithm::Pcr, 512).total_ops() as f64;
    let r = pcr_large / pcr_small;
    let expect = 4.0 * 9.0 / 7.0;
    assert!((r / expect - 1.0).abs() < 0.25, "PCR scaling {r} vs {expect}");
}

#[test]
fn op_counts_within_constant_of_table1() {
    for n in [64usize, 256, 512] {
        for alg in [
            GpuAlgorithm::Cr,
            GpuAlgorithm::Pcr,
            GpuAlgorithm::Rd(RdMode::Plain),
            GpuAlgorithm::CrPcr { m: n / 2 },
        ] {
            let stats = measure(alg, n);
            let a = analytic(alg, n);
            let ratio = stats.total_ops() as f64 / a.arithmetic_ops as f64;
            assert!((0.6..1.6).contains(&ratio), "{} n={n}: ops ratio {ratio}", alg.name());
            let ratio = stats.total_shared_accesses() as f64 / a.shared_accesses as f64;
            assert!((0.4..1.6).contains(&ratio), "{} n={n}: shared ratio {ratio}", alg.name());
        }
    }
}

#[test]
fn division_counts_track_table1() {
    // CR: 3n divisions; PCR: 2n log2 n; RD: none in the scan (only setup
    // and evaluation, which are O(n)).
    let n = 256usize;
    let cr = measure(GpuAlgorithm::Cr, n).total_divs() as f64;
    assert!((cr / (3.0 * n as f64) - 1.0).abs() < 0.25, "CR divs {cr}");
    let pcr = measure(GpuAlgorithm::Pcr, n).total_divs() as f64;
    assert!((pcr / (2.0 * n as f64 * 8.0) - 1.0).abs() < 0.25, "PCR divs {pcr}");
    let rd_stats = measure(GpuAlgorithm::Rd(RdMode::Plain), n);
    for step in rd_stats.steps_in_phase(gpu_sim::Phase::Scan) {
        assert_eq!(step.divs, 0, "RD scan must be division-free");
    }
    assert!(rd_stats.total_divs() <= 2 * n as u64);
}

#[test]
fn conflict_profile_by_algorithm() {
    let n = 512usize;
    assert_eq!(measure(GpuAlgorithm::Cr, n).max_conflict_degree(), 16);
    assert_eq!(measure(GpuAlgorithm::Pcr, n).max_conflict_degree(), 1);
    assert_eq!(measure(GpuAlgorithm::Rd(RdMode::Plain), n).max_conflict_degree(), 1);
    assert!(measure(GpuAlgorithm::CrPcr { m: 256 }, n).max_conflict_degree() <= 2);
}
